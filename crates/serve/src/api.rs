//! The prediction API: JSON bodies in, JSON bodies out.
//!
//! Request bodies use the project-wide strict JSON dialect
//! ([`predsim_lint::json`]); anything that dialect rejects — floats,
//! trailing garbage, duplicate keys the parser refuses — never reaches
//! the engine. Parsing is equally strict at the schema level: unknown
//! fields are errors, not ignored, so a typoed option can never silently
//! fall back to a default.
//!
//! A job object accepts:
//!
//! ```json
//! {
//!   "source": "ge:960,32,diagonal,8",   // generator spec, OR
//!   "trace": "program procs=2\n...",    // an inline text-format trace
//!   "machine": "meiko",                 // preset name (default "meiko")
//!   "label": "my job",                  // echoed in the result
//!   "worst_case": true,                 // §4.2 step algorithm
//!   "barrier": false, "overlap": false, "classic_gap": false,
//!   "faults": "drop:0.1", "seed": 7,    // seeded fault plan
//!   "deadline_ms": 2000                 // answer in 2s or 429 now
//! }
//! ```
//!
//! `POST /v1/predict` takes one job object; `POST /v1/batch` takes
//! `{"jobs": [job, ...]}`. Before anything is enqueued the job is
//! pre-validated with the engine's pre-run gate (see [`lint_spec`]) —
//! error-severity diagnostics turn into a `422` whose body is the same
//! `{"version":1,"sources":[...]}` document `predsim check --json`
//! prints.

use loggp::presets;
use predsim_core::{textfmt, SimOptions};
use predsim_engine::{JobResult, JobSource, JobSpec};
use predsim_faults::{FaultPlan, FaultSpec};
use predsim_lint::json::{self, Value};
use predsim_lint::Report;
use std::sync::Arc;

/// An API failure: the status code to send and the JSON body to send it
/// with.
#[derive(Clone, Debug)]
pub struct ApiError {
    /// HTTP status (400 for malformed requests, 422 for jobs the
    /// analyzer rejected).
    pub status: u16,
    /// The response body, already rendered as JSON.
    pub body: String,
}

impl ApiError {
    /// A `400 Bad Request` with an `{"error": ...}` body.
    pub fn bad(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            body: error_body(&message.into()),
        }
    }

    /// A `422 Unprocessable Entity` whose body is the full diagnostics
    /// document.
    pub fn invalid(doc: Value) -> ApiError {
        ApiError {
            status: 422,
            body: doc.to_compact(),
        }
    }
}

/// Render an `{"error": ...}` body.
pub fn error_body(message: &str) -> String {
    Value::Object(vec![("error".into(), Value::Str(message.to_string()))]).to_compact()
}

const JOB_FIELDS: [&str; 11] = [
    "source",
    "trace",
    "machine",
    "label",
    "worst_case",
    "barrier",
    "overlap",
    "classic_gap",
    "faults",
    "seed",
    "deadline_ms",
];

fn field_bool(v: &Value, name: &str) -> Result<bool, String> {
    match v.get(name) {
        None => Ok(false),
        Some(b) => b
            .as_bool()
            .ok_or_else(|| format!("field '{name}' must be a boolean")),
    }
}

fn field_str<'a>(v: &'a Value, name: &str) -> Result<Option<&'a str>, String> {
    match v.get(name) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field '{name}' must be a string")),
    }
}

fn field_deadline_ms(v: &Value) -> Result<Option<u64>, String> {
    match v.get("deadline_ms") {
        None => Ok(None),
        Some(n) => {
            let ms = n.as_int().ok_or("field 'deadline_ms' must be an integer")?;
            if ms <= 0 {
                return Err("field 'deadline_ms' must be positive".into());
            }
            Ok(Some(ms as u64))
        }
    }
}

/// Parse one job object into a [`JobSpec`] (plus the name used in
/// diagnostics documents).
fn job_from_value(v: &Value) -> Result<(String, JobSpec), String> {
    let Value::Object(fields) = v else {
        return Err("job must be a JSON object".into());
    };
    for (key, _) in fields {
        if !JOB_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field '{key}'"));
        }
    }

    let (name, source) = match (field_str(v, "source")?, field_str(v, "trace")?) {
        (Some(_), Some(_)) => {
            return Err("'source' and 'trace' are mutually exclusive".into());
        }
        (Some(raw), None) => match JobSource::parse_spec(raw)? {
            Some(source) => (raw.to_string(), source),
            None => {
                return Err(format!(
                    "source '{raw}' has no known generator prefix (the server \
                     reads no files; send an inline 'trace' instead)"
                ));
            }
        },
        (None, Some(text)) => {
            let program = textfmt::parse(text).map_err(|e| format!("trace: {e}"))?;
            ("trace".to_string(), JobSource::Program(Arc::new(program)))
        }
        (None, None) => return Err("job needs a 'source' spec or an inline 'trace'".into()),
    };

    let machine = field_str(v, "machine")?.unwrap_or("meiko");
    let params = presets::by_name(machine, source.procs())
        .ok_or_else(|| format!("unknown machine '{machine}'"))?;
    let mut opts = SimOptions::new(commsim::SimConfig::new(params));
    if field_bool(v, "worst_case")? {
        opts = opts.worst_case();
    }
    if field_bool(v, "barrier")? {
        opts = opts.with_barrier();
    }
    if field_bool(v, "overlap")? {
        opts = opts.with_overlap();
    }
    if field_bool(v, "classic_gap")? {
        opts.cfg = opts.cfg.with_classic_gap_rule();
    }

    let faults = match field_str(v, "faults")? {
        Some(text) => {
            let spec = FaultSpec::parse(text)?;
            let seed = match v.get("seed") {
                None => 0,
                Some(s) => u64::try_from(s.as_int().ok_or("field 'seed' must be an integer")?)
                    .map_err(|_| "field 'seed' must be non-negative".to_string())?,
            };
            Some(FaultPlan::new(spec, seed))
        }
        None => {
            if v.get("seed").is_some() {
                return Err("'seed' only makes sense together with 'faults'".into());
            }
            None
        }
    };

    let label = field_str(v, "label")?
        .map(str::to_string)
        .unwrap_or_else(|| format!("{machine}: {name}"));
    let mut spec = JobSpec::new(label, source, opts);
    if let Some(plan) = faults {
        spec = spec.with_faults(plan);
    }
    Ok((name, spec))
}

/// One parsed `POST /v1/predict` request.
#[derive(Debug)]
pub struct PredictRequest {
    /// The name used in diagnostics documents (the source spec, or
    /// `"trace"` for inline traces).
    pub name: String,
    /// The job itself.
    pub spec: JobSpec,
    /// Client deadline: answer within this many milliseconds or tell me
    /// now (`429`). `None` means the client will wait.
    pub deadline_ms: Option<u64>,
}

/// Parse a `POST /v1/predict` body: one job object, optionally carrying
/// a `deadline_ms`.
pub fn parse_predict(body: &str) -> Result<PredictRequest, ApiError> {
    let v = json::parse(body).map_err(|e| ApiError::bad(format!("body: {e}")))?;
    let deadline_ms = field_deadline_ms(&v).map_err(ApiError::bad)?;
    let (name, spec) = job_from_value(&v).map_err(ApiError::bad)?;
    Ok(PredictRequest {
        name,
        spec,
        deadline_ms,
    })
}

/// Parse a `POST /v1/batch` body: `{"jobs": [job, ...]}`. Batch jobs may
/// not carry `deadline_ms` — a batch is admitted all-or-nothing and runs
/// to completion, so per-job deadlines have no meaning there.
pub fn parse_batch(body: &str) -> Result<Vec<(String, JobSpec)>, ApiError> {
    let v = json::parse(body).map_err(|e| ApiError::bad(format!("body: {e}")))?;
    let Value::Object(fields) = &v else {
        return Err(ApiError::bad("body must be a JSON object"));
    };
    for (key, _) in fields {
        if key != "jobs" {
            return Err(ApiError::bad(format!("unknown field '{key}'")));
        }
    }
    let jobs = v
        .get("jobs")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::bad("body needs a 'jobs' array"))?;
    if jobs.is_empty() {
        return Err(ApiError::bad("'jobs' must not be empty"));
    }
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            if job.get("deadline_ms").is_some() {
                return Err(ApiError::bad(format!(
                    "jobs[{i}]: 'deadline_ms' is not supported in batch jobs"
                )));
            }
            job_from_value(job).map_err(|e| ApiError::bad(format!("jobs[{i}]: {e}")))
        })
        .collect()
}

const CALIBRATE_FIELDS: [&str; 8] = [
    "source",
    "machine",
    "runs",
    "holdout",
    "max_rounds",
    "faults",
    "seed",
    "register",
];

/// Largest number of emulated runs one calibrate request may ask for —
/// each run is a full emulation of the source program.
pub const MAX_CALIBRATE_RUNS: usize = 64;
/// Largest descent-round budget one calibrate request may ask for.
pub const MAX_CALIBRATE_ROUNDS: usize = 64;

/// One parsed `POST /v1/calibrate` request: everything a worker needs to
/// measure the source on the emulator and fit a preset to it. `Clone` so
/// the supervisor can re-enqueue a copy if the worker holding it dies.
#[derive(Clone)]
pub struct CalibrateRequest {
    /// The generator source (the server reads no files, so only specs).
    pub source: String,
    /// The program the source builds.
    pub program: Arc<predsim_core::Program>,
    /// Its computation loads, for the emulator.
    pub loads: Vec<predsim_core::StepLoad>,
    /// The machine preset: both the emulated hardware and the fit's
    /// starting point.
    pub machine: String,
    /// How the emulator collects the measured runs.
    pub measure: predsim_calib::MeasureConfig,
    /// How the fit searches.
    pub fit: predsim_calib::FitConfig,
    /// Register the fitted preset under this name on success.
    pub register: Option<String>,
}

fn field_usize(v: &Value, name: &str) -> Result<Option<usize>, String> {
    match v.get(name) {
        None => Ok(None),
        Some(s) => {
            let n = s
                .as_int()
                .ok_or_else(|| format!("field '{name}' must be an integer"))?;
            usize::try_from(n).map_err(|_| format!("field '{name}' must be non-negative"))
        }
        .map(Some),
    }
}

/// Parse a `POST /v1/calibrate` body.
pub fn parse_calibrate(body: &str) -> Result<CalibrateRequest, ApiError> {
    calibrate_from_value(&json::parse(body).map_err(|e| ApiError::bad(format!("body: {e}")))?)
        .map_err(ApiError::bad)
}

fn calibrate_from_value(v: &Value) -> Result<CalibrateRequest, String> {
    let Value::Object(fields) = v else {
        return Err("body must be a JSON object".into());
    };
    for (key, _) in fields {
        if !CALIBRATE_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field '{key}'"));
        }
    }
    let raw = field_str(v, "source")?.ok_or("calibration needs a 'source' spec")?;
    let source = JobSource::parse_spec(raw)?
        .ok_or_else(|| format!("source '{raw}' has no known generator prefix"))?;
    source.validate().map_err(|why| format!("source: {why}"))?;
    let (program, loads) = source.build_loaded();

    let machine = field_str(v, "machine")?.unwrap_or("meiko").to_string();
    let params = presets::by_name(&machine, program.procs())
        .ok_or_else(|| format!("unknown machine '{machine}'"))?;

    let runs = field_usize(v, "runs")?.unwrap_or(6);
    if !(1..=MAX_CALIBRATE_RUNS).contains(&runs) {
        return Err(format!("'runs' must be within 1..={MAX_CALIBRATE_RUNS}"));
    }
    let holdout = field_usize(v, "holdout")?.unwrap_or(0);
    if holdout >= runs {
        return Err(format!("'holdout' {holdout} would leave no training runs"));
    }

    let faults = match field_str(v, "faults")? {
        Some(text) => {
            let spec = FaultSpec::parse(text)?;
            let seed = match v.get("seed") {
                None => 0,
                Some(s) => u64::try_from(s.as_int().ok_or("field 'seed' must be an integer")?)
                    .map_err(|_| "field 'seed' must be non-negative".to_string())?,
            };
            Some(FaultPlan::new(spec, seed))
        }
        None => {
            if v.get("seed").is_some() {
                return Err("'seed' only makes sense together with 'faults'".into());
            }
            None
        }
    };

    let mut fit = predsim_calib::FitConfig::new(params);
    fit.holdout = holdout;
    if let Some(rounds) = field_usize(v, "max_rounds")? {
        if rounds > MAX_CALIBRATE_ROUNDS {
            return Err(format!(
                "'max_rounds' must be at most {MAX_CALIBRATE_ROUNDS}"
            ));
        }
        fit.max_rounds = rounds;
    }

    let register = match field_str(v, "register")? {
        Some(name) => {
            loggp::registry::check_name(name).map_err(|e| format!("field 'register': {e}"))?;
            Some(name.to_string())
        }
        None => None,
    };

    Ok(CalibrateRequest {
        source: raw.to_string(),
        program,
        loads,
        machine,
        measure: predsim_calib::MeasureConfig {
            ecfg: machine::EmulatorConfig::meiko_like(commsim::SimConfig::new(params)),
            base_seed: 0,
            runs,
            faults,
        },
        fit,
        register,
    })
}

/// Render a `POST /v1/calibrate` success body. `registered` reports what
/// happened to a requested registration (`None` when none was asked
/// for).
pub fn render_calibrate(
    report: &predsim_calib::FitReport,
    registered: Option<&Result<String, String>>,
) -> String {
    let p = report.params;
    let int = |t: loggp::Time| Value::Int(t.as_ps() as i64);
    let mut fields = vec![
        ("version".into(), Value::Int(1)),
        ("latency_ps".into(), int(p.latency)),
        ("overhead_ps".into(), int(p.overhead)),
        ("gap_ps".into(), int(p.gap)),
        ("gap_per_byte_ps".into(), int(p.gap_per_byte)),
        ("procs".into(), Value::Int(p.procs as i64)),
        ("rmse_ps".into(), int(report.rmse)),
        ("objective_ps".into(), int(report.objective)),
        ("converged".into(), Value::Bool(report.converged)),
        ("rounds".into(), Value::Int(report.rounds as i64)),
        ("evaluations".into(), Value::Int(report.evaluations as i64)),
        (
            "bracket".into(),
            Value::Object(vec![
                ("hits".into(), Value::Int(report.bracket.hits as i64)),
                ("total".into(), Value::Int(report.bracket.total as i64)),
                (
                    "hit_permille".into(),
                    Value::Int(report.bracket.hit_permille() as i64),
                ),
                ("std_total_ps".into(), int(report.bracket.std_total)),
                ("wc_total_ps".into(), int(report.bracket.wc_total)),
            ]),
        ),
        ("train_runs".into(), Value::Int(report.train_runs as i64)),
        (
            "holdout_runs".into(),
            Value::Int(report.holdout_runs as i64),
        ),
    ];
    match registered {
        None => {}
        Some(Ok(name)) => fields.push(("registered".into(), Value::Str(name.clone()))),
        Some(Err(why)) => fields.push(("register_error".into(), Value::Str(why.clone()))),
    }
    Value::Object(fields).to_compact()
}

const SPEEDUP_FIELDS: [&str; 4] = ["dag", "scheduler", "machine", "procs"];

/// Largest processor count one speedup sweep may simulate (the same
/// ceiling `predsim dag-sweep` enforces).
pub const MAX_SWEEP_PROCS: usize = 64;
/// Largest task count one speedup request may carry — every swept point
/// schedules, lowers, and simulates the whole DAG.
pub const MAX_SWEEP_TASKS: usize = 4096;

/// One parsed `POST /v1/speedup` request: a task DAG plus the scheduler,
/// machine, and processor range to sweep. `Clone` so the supervisor can
/// re-enqueue a copy if the worker holding it dies.
#[derive(Clone, Debug)]
pub struct SpeedupRequest {
    /// The DAG to sweep (sent inline; the server reads no files).
    pub dag: Arc<predsim_dag::TaskDag>,
    /// Scheduling policy applied at every point.
    pub scheduler: predsim_dag::SchedulerKind,
    /// Machine name, echoed in the report.
    pub machine: String,
    /// The resolved (possibly heterogeneous) machine at the largest
    /// swept processor count.
    pub spec: loggp::MachineSpec,
    /// Ascending processor counts to simulate.
    pub procs: Vec<usize>,
}

/// Parse a `POST /v1/speedup` body:
///
/// ```json
/// {
///   "dag": "dag name=x ps_per_flop=500\ntask a 1000\n...",
///   "scheduler": "heft",              // round-robin | min-ready | heft
///   "machine": "meiko",               // preset or registered name
///   "procs": "1..16"                  // or a single integer
/// }
/// ```
pub fn parse_speedup(body: &str) -> Result<SpeedupRequest, ApiError> {
    speedup_from_value(&json::parse(body).map_err(|e| ApiError::bad(format!("body: {e}")))?)
        .map_err(ApiError::bad)
}

fn speedup_from_value(v: &Value) -> Result<SpeedupRequest, String> {
    let Value::Object(fields) = v else {
        return Err("body must be a JSON object".into());
    };
    for (key, _) in fields {
        if !SPEEDUP_FIELDS.contains(&key.as_str()) {
            return Err(format!("unknown field '{key}'"));
        }
    }
    let text = field_str(v, "dag")?
        .ok_or("speedup needs an inline 'dag' in the line format (the server reads no files)")?;
    let dag = predsim_dag::format::parse(text).map_err(|e| format!("dag: {e}"))?;
    dag.validate().map_err(|e| format!("dag: {e}"))?;
    if dag.tasks().len() > MAX_SWEEP_TASKS {
        return Err(format!(
            "dag has {} tasks; the limit is {MAX_SWEEP_TASKS}",
            dag.tasks().len()
        ));
    }
    let scheduler =
        predsim_dag::SchedulerKind::parse(field_str(v, "scheduler")?.unwrap_or("heft"))?;
    let machine = field_str(v, "machine")?.unwrap_or("meiko").to_string();
    let procs = match v.get("procs") {
        None => return Err("speedup needs a 'procs' count or \"A..B\" range".into()),
        Some(Value::Str(s)) => predsim_dag::parse_procs(s, MAX_SWEEP_PROCS)?,
        Some(n) => {
            let n = n
                .as_int()
                .ok_or("field 'procs' must be an integer or an \"A..B\" string")?;
            let n = usize::try_from(n).map_err(|_| "field 'procs' must be positive".to_string())?;
            predsim_dag::parse_procs(&n.to_string(), MAX_SWEEP_PROCS)?
        }
    };
    let max = *procs
        .last()
        .expect("parse_procs never returns an empty range");
    let spec = loggp::hetero::resolve(&machine, max)?;
    Ok(SpeedupRequest {
        dag: Arc::new(dag),
        scheduler,
        machine,
        spec,
        procs,
    })
}

/// Render a `POST /v1/speedup` success body: exactly the document
/// `predsim dag-sweep --json` prints (byte-identical by test).
pub fn render_speedup(report: &predsim_dag::SweepReport) -> String {
    report.to_value().to_compact()
}

/// Lint one parsed job with the engine's own pre-run gate
/// ([`predsim_engine::lint_job`]): the spec's preconditions first (an
/// infeasible spec is a single `PS0501` error), then the built program
/// under the job's machine parameters and fault windows.
///
/// This is deliberately [`Engine::run_checked`]'s notion of validity,
/// not `predsim check --worst-case`'s: deadlock cycles stay warnings,
/// because the worst-case simulator executes cyclic steps by forcing
/// transmissions — that is its defined behaviour, and the server must
/// admit every job the engine can run.
///
/// [`Engine::run_checked`]: predsim_engine::Engine::run_checked
pub fn lint_spec(spec: &JobSpec) -> Report {
    predsim_engine::lint_job(spec)
}

/// Pre-validate a batch of parsed jobs. `Ok(())` means no job has
/// error-severity diagnostics; otherwise the `422` document — the same
/// `{"version":1,"sources":[...]}` shape `predsim check --json` prints,
/// with one entry per rejected job.
pub fn check_jobs(jobs: &[(String, JobSpec)]) -> Result<(), ApiError> {
    let mut rejected = Vec::new();
    for (name, spec) in jobs {
        let report = lint_spec(spec);
        if report.has_errors() {
            rejected.push(Value::Object(vec![
                ("name".into(), Value::Str(name.clone())),
                ("report".into(), report.to_value()),
            ]));
        }
    }
    if rejected.is_empty() {
        Ok(())
    } else {
        Err(ApiError::invalid(Value::Object(vec![
            ("version".into(), Value::Int(1)),
            ("sources".into(), Value::Array(rejected)),
        ])))
    }
}

/// Render one engine result as a JSON object.
pub fn result_value(result: &JobResult) -> Value {
    let mut fields = vec![
        ("label".into(), Value::Str(result.label.clone())),
        (
            "outcome".into(),
            Value::Str(result.outcome.kind().to_string()),
        ),
    ];
    match result.outcome.totals() {
        Some((total, comp, comm, forced)) => {
            fields.push(("total_ps".into(), Value::Int(total.as_ps() as i64)));
            fields.push(("comp_ps".into(), Value::Int(comp.as_ps() as i64)));
            fields.push(("comm_ps".into(), Value::Int(comm.as_ps() as i64)));
            fields.push(("forced_sends".into(), Value::Int(forced as i64)));
        }
        None => {
            if let predsim_engine::JobOutcome::Crashed { message, .. } = &result.outcome {
                fields.push(("message".into(), Value::Str(message.clone())));
            }
        }
    }
    fields.push((
        "attempts".into(),
        Value::Int(i64::from(result.outcome.attempts())),
    ));
    Value::Object(fields)
}

/// Which serving tier produced a `/v1/predict` answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// A fresh full simulation ran on a worker.
    Full,
    /// A cached step recording replayed the prediction — bit-identical
    /// totals, no queue wait.
    Replay,
    /// Only the static `[lo, hi]` interval was computed; no simulation.
    Static,
}

impl Tier {
    /// Wire name of the tier (the `tier` response field).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Replay => "replay",
            Tier::Static => "static",
        }
    }
}

/// Render a `POST /v1/predict` success body. When the job admitted a
/// static analysis (clean spec, no faults), `bounds` carries the
/// pre-computed interval and the result object gains `static_lo_ps` /
/// `static_hi_ps`; faulted or infeasible jobs simply omit the fields.
/// Every response names the serving tier that produced it.
pub fn render_predict(
    result: &JobResult,
    bounds: Option<&predsim_lint::ProgramBounds>,
    tier: Tier,
) -> String {
    let mut value = result_value(result);
    if let Value::Object(fields) = &mut value {
        fields.push(("tier".into(), Value::Str(tier.as_str().into())));
        if let Some(b) = bounds {
            fields.push(("static_lo_ps".into(), Value::Int(b.lo.as_ps() as i64)));
            fields.push(("static_hi_ps".into(), Value::Int(b.hi.as_ps() as i64)));
        }
    }
    Value::Object(vec![
        ("version".into(), Value::Int(1)),
        ("result".into(), value),
    ])
    .to_compact()
}

/// Render a static-tier `/v1/predict` body: the degraded answer served
/// when the queue is past its high watermark or the deadline admits no
/// simulation. No `total_ps` — the truth is only bracketed, and the
/// `outcome` says so explicitly.
pub fn render_predict_static(label: &str, bounds: &predsim_lint::ProgramBounds) -> String {
    Value::Object(vec![
        ("version".into(), Value::Int(1)),
        (
            "result".into(),
            Value::Object(vec![
                ("label".into(), Value::Str(label.to_string())),
                ("outcome".into(), Value::Str("estimated".into())),
                ("tier".into(), Value::Str(Tier::Static.as_str().into())),
                ("static_lo_ps".into(), Value::Int(bounds.lo.as_ps() as i64)),
                ("static_hi_ps".into(), Value::Int(bounds.hi.as_ps() as i64)),
            ]),
        ),
    ])
    .to_compact()
}

/// Render a `POST /v1/estimate` body: the static interval alone, no
/// simulation. The `bounds` object is rendered by the exact same
/// [`predsim_lint::ProgramBounds::to_value`] the CLI's
/// `check --bounds --json` uses, so the two agree byte for byte; when
/// no bounds exist the body carries the same `bounds_unavailable`
/// reason strings the CLI prints.
pub fn render_estimate(name: &str, bounds: Result<&predsim_lint::ProgramBounds, &str>) -> String {
    let mut fields = vec![
        ("version".into(), Value::Int(1)),
        ("name".into(), Value::Str(name.into())),
    ];
    match bounds {
        Ok(b) => fields.push(("bounds".into(), b.to_value())),
        Err(why) => fields.push(("bounds_unavailable".into(), Value::Str(why.into()))),
    }
    Value::Object(fields).to_compact()
}

/// Render a `POST /v1/batch` success body (results in submission order).
pub fn render_batch(results: &[JobResult]) -> String {
    Value::Object(vec![
        ("version".into(), Value::Int(1)),
        (
            "results".into(),
            Value::Array(results.iter().map(result_value).collect()),
        ),
    ])
    .to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use predsim_core::CommAlgo;
    use predsim_lint::Code;

    #[test]
    fn parses_a_full_predict_body() {
        let req = parse_predict(
            r#"{"source":"ge:240,24,diagonal,8","machine":"paragon",
                "worst_case":true,"faults":"drop:0.1","seed":7,"label":"x",
                "deadline_ms":2500}"#,
        )
        .unwrap();
        assert_eq!(req.name, "ge:240,24,diagonal,8");
        assert_eq!(req.spec.label, "x");
        assert_eq!(req.spec.opts.algo, CommAlgo::WorstCase);
        assert_eq!(
            req.spec.opts.cfg.params,
            presets::intel_paragon(8),
            "machine sized to the source's processor count"
        );
        assert_eq!(req.deadline_ms, Some(2500));
        let plan = req.spec.faults.expect("fault plan");
        assert_eq!(plan.seed(), 7);
    }

    #[test]
    fn defaults_are_meiko_standard_no_faults() {
        let req = parse_predict(r#"{"source":"cannon:64,4"}"#).unwrap();
        let spec = &req.spec;
        assert_eq!(spec.opts.algo, CommAlgo::Standard);
        assert_eq!(spec.opts.cfg.params, presets::meiko_cs2(16));
        assert!(spec.faults.is_none());
        assert_eq!(spec.label, "meiko: cannon:64,4");
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn accepts_an_inline_trace() {
        let req = parse_predict(
            r#"{"trace":"program procs=2\nstep label=ring\ncomp 10 10\nmsg 0 1 800\n"}"#,
        )
        .unwrap();
        assert_eq!(req.name, "trace");
        assert_eq!(req.spec.source.procs(), 2);
    }

    #[test]
    fn rejects_schema_violations_with_400() {
        for (body, why) in [
            ("not json", "unparseable"),
            (r#"{"t": 1.5}"#, "floats are outside the dialect"),
            (r#"{"source":"ge:64,16,row,4","bogus":1}"#, "unknown field"),
            (r#"{}"#, "no source"),
            (r#"{"source":"ge:64,16,row,4","trace":"procs 1\n"}"#, "both"),
            (r#"{"source":"traces/ring.trace"}"#, "file paths refused"),
            (r#"{"source":"ge:64,16,spiral,4"}"#, "bad spec body"),
            (r#"{"source":"ge:64,16,row,4","machine":"cray"}"#, "machine"),
            (
                r#"{"source":"ge:64,16,row,4","seed":3}"#,
                "seed sans faults",
            ),
            (r#"{"source":"ge:64,16,row,4","worst_case":1}"#, "bool type"),
            (r#"{"source":"ge:64,16,row,4","faults":"zap:1"}"#, "faults"),
            (
                r#"{"source":"ge:64,16,row,4","deadline_ms":0}"#,
                "zero deadline",
            ),
            (
                r#"{"source":"ge:64,16,row,4","deadline_ms":"soon"}"#,
                "deadline type",
            ),
        ] {
            let err = parse_predict(body).expect_err(why);
            assert_eq!(err.status, 400, "{why}");
            assert!(
                json::parse(&err.body).unwrap().get("error").is_some(),
                "{why}: error body is strict JSON"
            );
        }
    }

    #[test]
    fn batch_needs_a_nonempty_jobs_array() {
        assert_eq!(parse_batch(r#"{"jobs":[]}"#).unwrap_err().status, 400);
        assert_eq!(parse_batch(r#"{"extra":1}"#).unwrap_err().status, 400);
        let jobs =
            parse_batch(r#"{"jobs":[{"source":"cannon:64,4"},{"source":"stencil:64,8,2"}]}"#)
                .unwrap();
        assert_eq!(jobs.len(), 2);
        // A bad job is named by its index.
        let err = parse_batch(r#"{"jobs":[{"source":"cannon:64,4"},{}]}"#).unwrap_err();
        assert!(err.body.contains("jobs[1]"), "{}", err.body);
        // Deadlines are a single-predict concept.
        let err =
            parse_batch(r#"{"jobs":[{"source":"cannon:64,4","deadline_ms":100}]}"#).unwrap_err();
        assert!(err.body.contains("deadline_ms"), "{}", err.body);
    }

    #[test]
    fn infeasible_specs_fail_the_lint_gate_with_the_check_document() {
        // Layout over zero processors: parseable, but the analyzer's
        // PS0501 gate refuses it.
        let jobs = parse_batch(r#"{"jobs":[{"source":"ge:64,16,row,0"}]}"#).unwrap();
        let err = check_jobs(&jobs).unwrap_err();
        assert_eq!(err.status, 422);
        let doc = json::parse(&err.body).unwrap();
        assert_eq!(doc.get("version").and_then(Value::as_int), Some(1));
        let sources = doc.get("sources").and_then(Value::as_array).unwrap();
        assert_eq!(sources.len(), 1);
        let report = Report::from_value(sources[0].get("report").unwrap()).unwrap();
        assert!(report.has_errors());
        assert_eq!(report.diagnostics()[0].code, Code::BadJobSpec);
    }

    const DAG: &str = "dag name=t ps_per_flop=500\ntask a 1000\ntask b 1000\nedge a b 64\n";

    fn speedup_body(extra: &str) -> String {
        format!(
            r#"{{"dag":{},"procs":"1..4"{extra}}}"#,
            Value::Str(DAG.into()).to_compact()
        )
    }

    #[test]
    fn parses_a_speedup_body_with_defaults() {
        let req = parse_speedup(&speedup_body("")).unwrap();
        assert_eq!(req.dag.name(), "t");
        assert_eq!(req.scheduler, predsim_dag::SchedulerKind::Heft);
        assert_eq!(req.machine, "meiko");
        assert!(req.spec.is_uniform());
        assert_eq!(req.spec.base, presets::meiko_cs2(4));
        assert_eq!(req.procs, vec![1, 2, 3, 4]);

        // Explicit fields override the defaults; procs may be one integer.
        let req = parse_speedup(&format!(
            r#"{{"dag":{},"scheduler":"round-robin","machine":"paragon","procs":3}}"#,
            Value::Str(DAG.into()).to_compact()
        ))
        .unwrap();
        assert_eq!(req.scheduler, predsim_dag::SchedulerKind::RoundRobin);
        assert_eq!(req.spec.base, presets::intel_paragon(3));
        assert_eq!(req.procs, vec![3]);
    }

    #[test]
    fn speedup_schema_violations_get_400() {
        let dag = Value::Str(DAG.into()).to_compact();
        for (body, why) in [
            ("not json".to_string(), "unparseable"),
            (speedup_body(r#","bogus":1"#), "unknown field"),
            (format!(r#"{{"dag":{dag}}}"#), "missing procs"),
            (r#"{"procs":"1..4"}"#.to_string(), "missing dag"),
            (format!(r#"{{"dag":{dag},"procs":"0..4"}}"#), "zero procs"),
            (format!(r#"{{"dag":{dag},"procs":"4..1"}}"#), "backwards"),
            (
                format!(r#"{{"dag":{dag},"procs":"1..65"}}"#),
                "over the cap",
            ),
            (format!(r#"{{"dag":{dag},"procs":-2}}"#), "negative procs"),
            (
                format!(r#"{{"dag":{dag},"procs":"1..4","scheduler":"fifo"}}"#),
                "unknown scheduler",
            ),
            (
                format!(r#"{{"dag":{dag},"procs":"1..4","machine":"cray"}}"#),
                "unknown machine",
            ),
            (
                format!(
                    r#"{{"dag":{},"procs":"1..4"}}"#,
                    Value::Str("dag name=t ps_per_flop=500\ntask a 1000\nedge a b 1\n".into())
                        .to_compact()
                ),
                "edge to a missing task",
            ),
        ] {
            let err = parse_speedup(&body).expect_err(why);
            assert_eq!(err.status, 400, "{why}");
            assert!(
                json::parse(&err.body).unwrap().get("error").is_some(),
                "{why}: error body is strict JSON"
            );
        }
    }

    #[test]
    fn speedup_render_matches_the_sweep_report_document() {
        let req = parse_speedup(&speedup_body("")).unwrap();
        let report =
            predsim_dag::sweep(&req.dag, req.scheduler, &req.machine, &req.spec, &req.procs)
                .unwrap();
        let body = render_speedup(&report);
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("version").and_then(Value::as_int), Some(1));
        assert_eq!(doc.get("dag").and_then(Value::as_str), Some("t"));
        let points = doc.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(
            points[0].get("speedup_permille").and_then(Value::as_int),
            Some(1000),
            "the one-processor point is the baseline"
        );
    }
}
