//! predsim-serve — a zero-dependency HTTP prediction service.
//!
//! Turns the batch engine into a long-running server with explicit
//! operational behaviour:
//!
//! - **Admission control**: a bounded queue in front of a fixed worker
//!   pool. When the queue is full, requests are shed immediately with
//!   `429 Too Many Requests` + a *computed* `Retry-After` (from the
//!   calibrated wall-cost model in [`admission`]) instead of piling up.
//! - **Deadline-aware admission**: requests may carry `deadline_ms`; the
//!   server admits them only if the cost model says they can finish in
//!   time, shedding the newest deadline-less work first.
//! - **Tiered degradation**: above configurable queue-depth watermarks
//!   `/v1/predict` degrades from full simulation to a cached recording
//!   replay (bit-identical totals) to the queue-free static `[lo, hi]`
//!   estimate; every response names its `tier`.
//! - **Worker supervision**: a supervisor thread respawns panicked
//!   workers (re-enqueueing the job they held, once) and backfills
//!   stalled ones; `serve_worker_restarts_total` counts interventions.
//! - **Deterministic chaos**: an optional [`predsim_faults::ChaosPlan`]
//!   injects worker panics/stalls, accept hiccups, and connection drops
//!   as pure hashes of (seed, site), for reproducible failure drills.
//! - **Graceful drain**: on shutdown the server stops accepting, lets
//!   every admitted job run to completion, and only then stops the
//!   workers — nothing accepted is ever dropped.
//! - **Live metrics**: the engine and the serve layer publish to one
//!   [`predsim_obs::Registry`], exposed in Prometheus text at
//!   `GET /metrics` and as strict JSON at `GET /metrics.json`.
//!
//! Endpoints:
//!
//! | Method + path      | Purpose                                         |
//! |--------------------|-------------------------------------------------|
//! | `POST /v1/predict` | Predict one job (JSON body, see [`api`])        |
//! | `POST /v1/batch`   | Predict a batch, all-or-nothing admission       |
//! | `POST /v1/calibrate`| Emulate a source and fit a LogGP preset to it  |
//! | `POST /v1/speedup` | Sweep a task DAG across processor counts        |
//! | `GET /healthz`     | Liveness + queue depth + in-flight count        |
//! | `GET /metrics`     | Prometheus text exposition                      |
//! | `GET /metrics.json`| The same snapshot in the strict JSON dialect    |
//! | `POST /admin/drain`| Request a graceful drain                        |
//!
//! Request and response bodies use the project-wide strict JSON wire
//! format ([`predsim_lint::json`]), and every job is pre-validated with
//! the analyzer before admission: jobs with error-severity diagnostics
//! are refused with `422` and the same document `predsim check --json`
//! prints.
//!
//! The crate is dependency-free beyond the workspace's own simulation
//! stack: HTTP parsing, the admission queue, and the thread pool are all
//! hand-rolled on `std` (see [`http`] and [`queue`]).
//!
//! ```no_run
//! use predsim_serve::{Server, ServeConfig};
//! use std::io::{Read, Write};
//!
//! let handle = Server::start(ServeConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(handle.addr()).unwrap();
//! let body = r#"{"source":"ge:240,24,diagonal,8"}"#;
//! write!(
//!     conn,
//!     "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
//!     body.len(),
//!     body
//! )
//! .unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! let report = handle.drain();
//! assert!(report
//!     .metrics
//!     .scalar("serve_requests_total", &[("code", "200")])
//!     .is_some());
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod http;
pub mod queue;
pub mod server;

pub use admission::CostModel;
pub use api::{ApiError, Tier};
pub use http::{HttpReader, Request, RequestError, Response};
pub use predsim_faults::{ChaosPlan, ChaosSpec};
pub use queue::{BoundedQueue, PushError};
pub use server::{DrainReport, ServeConfig, Server, ServerHandle};
