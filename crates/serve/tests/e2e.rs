//! End-to-end tests over a real TCP socket: concurrent clients, load
//! shedding, lint rejection, metrics exposure, and graceful drain.

use predsim_engine::{Engine, EngineConfig};
use predsim_lint::json::{self, Value};
use predsim_lint::Report;
use predsim_serve::{api, ServeConfig, Server, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A prediction heavy enough (~2 s debug) to still be running while the
/// test lines up more requests behind it.
const HEAVY: &str = r#"{"source":"ge:3840,24,diagonal,8"}"#;

fn start(workers: usize, queue_cap: usize) -> ServerHandle {
    Server::start(ServeConfig {
        workers,
        queue_cap,
        request_timeout: Duration::from_secs(10),
        // These tests exercise the full path; park the degradation
        // watermarks out of reach so every predict simulates.
        replay_at: Some(usize::MAX),
        static_at: Some(usize::MAX),
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// One-shot request: send with `Connection: close`, read to EOF.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, Vec<(String, String)>, String) {
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(':').expect("header line");
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn predict(addr: SocketAddr, body: &str) -> (u16, String) {
    let (status, _, body) = request(addr, "POST", "/v1/predict", body);
    (status, body)
}

/// The current `/healthz` numbers.
fn health(addr: SocketAddr) -> (i64, i64) {
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).expect("healthz is strict JSON");
    (
        v.get("queue_depth").and_then(Value::as_int).unwrap(),
        v.get("in_flight").and_then(Value::as_int).unwrap(),
    )
}

fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) {
    for _ in 0..deadline_ms / 10 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("condition not reached within {deadline_ms} ms");
}

#[test]
fn concurrent_predictions_are_byte_identical_to_the_engine() {
    let bodies: Vec<String> = [
        r#"{"source":"ge:240,24,diagonal,8"}"#,
        r#"{"source":"cannon:96,4","machine":"paragon"}"#,
        r#"{"source":"stencil:96,8,3","worst_case":true}"#,
        r#"{"source":"apsp:120,24,row,6","faults":"drop:0.1","seed":9}"#,
    ]
    .iter()
    .cycle()
    .take(8)
    .map(|s| s.to_string())
    .collect();

    // What the engine says in-process, rendered through the same API
    // layer: the wire bytes must match exactly.
    let engine = Engine::new(EngineConfig::default().with_jobs(1));
    let expected: Vec<String> = bodies
        .iter()
        .map(|body| {
            let spec = api::parse_predict(body).expect("body parses").spec;
            let bounds = predsim_engine::static_bounds(&spec);
            api::render_predict(
                &engine.run(std::slice::from_ref(&spec))[0],
                bounds.as_ref(),
                api::Tier::Full,
            )
        })
        .collect();

    let handle = start(4, 32);
    let addr = handle.addr();
    let clients: Vec<_> = bodies
        .iter()
        .map(|body| {
            let body = body.clone();
            std::thread::spawn(move || predict(addr, &body))
        })
        .collect();
    for (client, expected) in clients.into_iter().zip(&expected) {
        let (status, body) = client.join().expect("client thread");
        assert_eq!(status, 200);
        assert_eq!(&body, expected, "server bytes differ from Engine::run");
    }

    // Acceptance (c): after drain, the counted requests match the
    // requests issued — exactly the 8 predicts, all 200.
    let report = handle.drain();
    assert_eq!(
        report
            .metrics
            .scalar("serve_requests_total", &[("code", "200")]),
        Some(8)
    );
    assert_eq!(
        report.metrics.scalar(
            "serve_endpoint_requests_total",
            &[("endpoint", "/v1/predict")]
        ),
        Some(8)
    );
    assert_eq!(
        report.metrics.scalar("serve_queue_depth", &[]),
        Some(0),
        "the queue is empty after drain"
    );
    let (count, _) = report
        .metrics
        .histogram_totals("serve_request_wall_ns")
        .expect("wall histogram exists");
    assert_eq!(count, 8);
}

#[test]
fn queue_overflow_sheds_with_429_without_dropping_admitted_work() {
    let handle = start(1, 1);
    let addr = handle.addr();

    // R1 occupies the single worker...
    let r1 = std::thread::spawn(move || predict(addr, HEAVY));
    wait_until(8000, || health(addr).1 >= 1);
    // ...R2 occupies the single queue slot...
    let r2 = std::thread::spawn(move || predict(addr, HEAVY));
    wait_until(8000, || {
        let (depth, executing) = health(addr);
        depth >= 1 && executing >= 1
    });
    // ...so R3 must be shed, immediately. R3 is a *faulted* job — the
    // static analyzer cannot bracket it, so no degraded tier can answer
    // and the only honest response is a 429. Its lint gate is instant,
    // so the admission decision happens while R1 is still executing.
    let (status, headers, body) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"source":"cannon:64,4","faults":"drop:0.1","seed":7}"#,
    );
    assert_eq!(status, 429);
    let retry: u64 = header(&headers, "retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is a whole number of seconds");
    assert!(retry >= 1, "computed Retry-After has a floor of 1s");
    assert!(json::parse(&body).unwrap().get("error").is_some());

    // The admitted requests complete normally: shedding R3 lost nothing.
    let (s1, b1) = r1.join().unwrap();
    let (s2, b2) = r2.join().unwrap();
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "identical jobs, identical predictions");

    let report = handle.drain();
    assert_eq!(
        report
            .metrics
            .scalar("serve_requests_total", &[("code", "429")]),
        Some(1)
    );
    assert_eq!(
        report.metrics.scalar(
            "serve_endpoint_requests_total",
            &[("endpoint", "/v1/predict")]
        ),
        Some(3),
        "shed requests are counted too"
    );
}

#[test]
fn analyzer_rejections_are_422_with_the_check_document() {
    let handle = start(1, 4);
    let addr = handle.addr();

    // An infeasible spec: the response body is byte-identical to what the
    // API's own lint gate produces (the `predsim check --json` shape).
    let body = r#"{"source":"ge:64,16,row,0"}"#;
    let req = api::parse_predict(body).unwrap();
    let jobs = vec![(req.name, req.spec)];
    let expected = api::check_jobs(&jobs).expect_err("lint must reject");
    assert_eq!(expected.status, 422);
    let (status, response) = predict(addr, body);
    assert_eq!(status, 422);
    assert_eq!(response, expected.body);

    // The 422 document round-trips through the lint crate's own parser
    // and names the infeasible-spec code.
    let doc = json::parse(&expected.body).unwrap();
    assert_eq!(doc.get("version").and_then(Value::as_int), Some(1));
    let sources = doc.get("sources").and_then(Value::as_array).unwrap();
    let report = Report::from_value(sources[0].get("report").unwrap()).unwrap();
    assert!(report.has_errors());
    assert!(expected.body.contains("PS0501"), "{}", expected.body);

    // A cyclic step under the worst-case algorithm is NOT rejected: the
    // gate is the engine's (deadlock cycles are its defined forced-
    // transmission behaviour), so the job runs and reports the forced
    // sends.
    let ring = r#"{"trace":"program procs=2\nstep label=ring\nmsg 0 1 64\nmsg 1 0 64\n",
                   "worst_case":true}"#;
    let (status, response) = predict(addr, ring);
    assert_eq!(status, 200, "{response}");
    let doc = json::parse(&response).unwrap();
    let result = doc.get("result").unwrap();
    assert_eq!(result.get("outcome").and_then(Value::as_str), Some("done"));
    assert!(
        result.get("forced_sends").and_then(Value::as_int).unwrap() > 0,
        "the worst-case algorithm forced the cycle open: {response}"
    );

    // Batch: one bad job poisons admission of the whole batch, naming
    // only the bad one in the document.
    let (status, _, response) = request(
        addr,
        "POST",
        "/v1/batch",
        r#"{"jobs":[{"source":"cannon:64,4"},{"source":"ge:64,16,row,0"}]}"#,
    );
    assert_eq!(status, 422);
    let doc = json::parse(&response).unwrap();
    assert_eq!(
        doc.get("sources")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(1)
    );
    handle.drain();
}

#[test]
fn batch_endpoint_predicts_in_submission_order() {
    let handle = start(2, 8);
    let addr = handle.addr();
    let (status, _, body) = request(
        addr,
        "POST",
        "/v1/batch",
        r#"{"jobs":[{"source":"cannon:96,4","label":"a"},
                    {"source":"stencil:96,8,3","label":"b"}]}"#,
    );
    assert_eq!(status, 200);
    let doc = json::parse(&body).unwrap();
    let results = doc.get("results").and_then(Value::as_array).unwrap();
    let labels: Vec<_> = results
        .iter()
        .map(|r| r.get("label").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(labels, ["a", "b"]);
    for r in results {
        assert_eq!(r.get("outcome").and_then(Value::as_str), Some("done"));
        assert!(r.get("total_ps").and_then(Value::as_int).unwrap() > 0);
    }
    handle.drain();
}

#[test]
fn metrics_are_exposed_in_prometheus_text_and_strict_json() {
    let handle = start(1, 4);
    let addr = handle.addr();
    let (status, _body) = predict(addr, r#"{"source":"cannon:96,4"}"#);
    assert_eq!(status, 200);

    let (status, headers, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type")
        .unwrap()
        .starts_with("text/plain"));
    for needle in [
        "# TYPE serve_requests_total counter",
        "serve_requests_total{code=\"200\"} 1",
        "# TYPE serve_queue_depth gauge",
        "serve_request_wall_ns_bucket",
        "engine_jobs_total",
        "engine_cache_hits",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The JSON flavour must itself be valid under the strict dialect.
    let (status, _, js) = request(addr, "GET", "/metrics.json", "");
    assert_eq!(status, 200);
    let doc = json::parse(&js).expect("metrics.json is strict JSON");
    assert!(doc.get("metrics").and_then(Value::as_array).is_some());
    handle.drain();
}

#[test]
fn routing_rejects_what_the_api_does_not_serve() {
    let handle = start(1, 4);
    let addr = handle.addr();
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "GET", "/v1/predict", "").0, 405);
    assert_eq!(request(addr, "DELETE", "/metrics", "").0, 405);
    let (status, _, body) = request(addr, "POST", "/v1/predict", "{\"pi\": 3.14}");
    assert_eq!(status, 400);
    assert!(
        json::parse(&body).unwrap().get("error").is_some(),
        "400 body is a strict-JSON error object"
    );
    // A declared body over the server's cap is refused from the head
    // alone, before any of it is read.
    let mut conn = TcpStream::connect(addr).unwrap();
    write!(
        conn,
        "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        8 << 20
    )
    .unwrap();
    let mut raw = String::new();
    conn.read_to_string(&mut raw).unwrap();
    assert_eq!(parse_response(&raw).0, 413);
    handle.drain();
}

#[test]
fn keep_alive_serves_back_to_back_requests_on_one_connection() {
    let handle = start(1, 4);
    let addr = handle.addr();
    let conn = TcpStream::connect(addr).unwrap();
    let mut writer = conn.try_clone().unwrap();
    let mut reader = BufReader::new(conn);

    let body = r#"{"source":"cannon:96,4"}"#;
    write!(writer, "GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    write!(
        writer,
        "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let (status, headers, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    let (status, _, body) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"outcome\":\"done\""));
    handle.drain();
}

/// Read one `Content-Length`-framed response off a keep-alive stream.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, String) {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .map(|l| {
            let (k, v) = l.split_once(':').unwrap();
            (k.trim().to_ascii_lowercase(), v.trim().to_string())
        })
        .collect();
    let len: usize = header(&headers, "content-length").unwrap().parse().unwrap();
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    (status, headers, String::from_utf8(body).unwrap())
}

#[test]
fn calibrate_endpoint_fits_registers_and_serves_the_preset() {
    let handle = start(2, 8);
    let addr = handle.addr();

    // Fit a preset to the emulated GE source and register it.
    let (status, _, body) = request(
        addr,
        "POST",
        "/v1/calibrate",
        r#"{"source":"ge:240,24,diagonal,4","runs":4,"holdout":1,
            "register":"e2e-fitted"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).expect("calibrate body is strict JSON");
    assert_eq!(doc.get("version").and_then(Value::as_int), Some(1));
    assert_eq!(doc.get("converged").and_then(Value::as_bool), Some(true));
    assert_eq!(
        doc.get("registered").and_then(Value::as_str),
        Some("e2e-fitted"),
        "{body}"
    );
    assert_eq!(doc.get("procs").and_then(Value::as_int), Some(4));
    assert_eq!(doc.get("holdout_runs").and_then(Value::as_int), Some(1));
    let bracket = doc.get("bracket").expect("bracket report");
    assert_eq!(bracket.get("total").and_then(Value::as_int), Some(1));
    assert!(bracket
        .get("hit_permille")
        .and_then(Value::as_int)
        .is_some());
    for field in ["latency_ps", "overhead_ps", "gap_ps", "gap_per_byte_ps"] {
        assert!(
            doc.get(field).and_then(Value::as_int).is_some(),
            "missing {field}: {body}"
        );
    }

    // The registered preset now resolves in predict requests.
    let (status, body) = predict(
        addr,
        r#"{"source":"ge:240,24,diagonal,4","machine":"e2e-fitted"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"outcome\":\"done\""), "{body}");

    // The fit published its quality metrics on the shared registry.
    let (status, _, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for needle in [
        "calib_fits_total 1",
        "calib_fit_rmse_ps",
        "calib_bracket_hit_permille",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Schema violations: unknown fields and file-path sources are 400s.
    for bad in [
        r#"{"source":"ge:240,24,diagonal,4","bogus":1}"#,
        r#"{"source":"traces/ring.trace"}"#,
        r#"{"source":"ge:240,24,diagonal,4","runs":1000}"#,
        r#"{"source":"ge:240,24,diagonal,4","register":"bad name"}"#,
        r#"{}"#,
    ] {
        let (status, _, body) = request(addr, "POST", "/v1/calibrate", bad);
        assert_eq!(status, 400, "{bad} -> {body}");
    }

    // A zero-round budget cannot converge: the report says so, and the
    // requested registration is refused rather than polluting the
    // registry with an unfitted preset.
    let (status, _, body) = request(
        addr,
        "POST",
        "/v1/calibrate",
        r#"{"source":"ge:240,24,diagonal,4","runs":2,"max_rounds":0,
            "register":"e2e-unfitted"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    assert_eq!(doc.get("converged").and_then(Value::as_bool), Some(false));
    assert!(
        doc.get("register_error").and_then(Value::as_str).is_some(),
        "{body}"
    );
    let (status, body) = predict(
        addr,
        r#"{"source":"ge:240,24,diagonal,4","machine":"e2e-unfitted"}"#,
    );
    assert_eq!(status, 400, "unfitted preset must not resolve: {body}");

    handle.drain();
}

#[test]
fn drain_finishes_in_flight_work_and_counts_every_request() {
    let handle = start(1, 4);
    let addr = handle.addr();

    // A request is mid-execution when the drain arrives.
    let in_flight = std::thread::spawn(move || predict(addr, HEAVY));
    wait_until(8000, || health(addr).1 >= 1);

    let (status, _, body) = request(addr, "POST", "/admin/drain", "");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"draining\":true}");
    assert!(handle.drain_requested());
    handle.wait_for_drain_request();
    let report = handle.drain();

    // The in-flight prediction completed and was delivered.
    let (status, body) = in_flight.join().unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"outcome\":\"done\""), "{body}");

    // Every request this test issued is in the final counters: the
    // predict, the drain, and each healthz poll.
    let m = &report.metrics;
    let scalar = |labels: &[(&str, &str)]| m.scalar("serve_endpoint_requests_total", labels);
    assert_eq!(scalar(&[("endpoint", "/v1/predict")]), Some(1));
    assert_eq!(scalar(&[("endpoint", "/admin/drain")]), Some(1));
    let polls = scalar(&[("endpoint", "/healthz")]).unwrap();
    assert!(polls >= 1);
    let total_200 = m
        .scalar("serve_requests_total", &[("code", "200")])
        .unwrap();
    assert_eq!(total_200, 2 + polls);

    // The listener is gone: new connections are refused (or reset before
    // a response arrives).
    let late = TcpStream::connect(addr);
    if let Ok(mut conn) = late {
        let gone = write!(conn, "GET /healthz HTTP/1.1\r\n\r\n").is_err() || {
            let mut buf = String::new();
            conn.read_to_string(&mut buf)
                .map(|n| n == 0)
                .unwrap_or(true)
        };
        assert!(gone, "a drained server must not answer");
    }
}

#[test]
fn estimate_returns_the_static_interval_without_touching_the_workers() {
    let handle = start(1, 4);
    let addr = handle.addr();

    // A clean job: the bounds object is exactly the in-process
    // analyzer's rendering, and the bracket holds around the simulated
    // total the predict endpoint reports for the same job.
    let body = r#"{"source":"ge:240,24,row,8"}"#;
    let (status, _, est) = request(addr, "POST", "/v1/estimate", body);
    assert_eq!(status, 200, "{est}");
    let spec = api::parse_predict(body).expect("body parses").spec;
    let bounds = predsim_engine::static_bounds(&spec).expect("clean spec has bounds");
    assert_eq!(
        est,
        api::render_estimate("ge:240,24,row,8", Ok(&bounds)),
        "wire bytes differ from the in-process analyzer"
    );
    let est_v = json::parse(&est).expect("estimate is strict JSON");
    let lo = est_v
        .get("bounds")
        .and_then(|b| b.get("static_lo_ps"))
        .and_then(Value::as_int)
        .expect("static_lo_ps");
    let hi = est_v
        .get("bounds")
        .and_then(|b| b.get("static_hi_ps"))
        .and_then(Value::as_int)
        .expect("static_hi_ps");
    assert!(0 < lo && lo <= hi);

    let (status, pred) = predict(addr, body);
    assert_eq!(status, 200, "{pred}");
    let pred_v = json::parse(&pred).expect("predict is strict JSON");
    let result = pred_v.get("result").expect("result object");
    let total = result
        .get("total_ps")
        .and_then(Value::as_int)
        .expect("total_ps");
    assert!(
        lo <= total && total <= hi,
        "bracket [{lo}, {hi}] must contain the simulated total {total}"
    );
    assert_eq!(result.get("static_lo_ps").and_then(Value::as_int), Some(lo));
    assert_eq!(result.get("static_hi_ps").and_then(Value::as_int), Some(hi));

    // A faulted job: no bounds, the same reason string the CLI prints,
    // and the predict response omits the static fields.
    let faulted = r#"{"source":"ge:240,24,row,8","faults":"drop:0.1","seed":3}"#;
    let (status, _, est) = request(addr, "POST", "/v1/estimate", faulted);
    assert_eq!(status, 200, "{est}");
    assert!(
        est.contains("\"bounds_unavailable\":\"fault injection voids the static bounds\""),
        "{est}"
    );
    let (status, pred) = predict(addr, faulted);
    assert_eq!(status, 200, "{pred}");
    assert!(!pred.contains("static_lo_ps"), "{pred}");

    // An infeasible job is still a 200 with a reason — the endpoint
    // never queues, so there is no engine gate to trip.
    let (status, _, est) = request(
        addr,
        "POST",
        "/v1/estimate",
        r#"{"source":"ge:64,16,row,0"}"#,
    );
    assert_eq!(status, 200, "{est}");
    assert!(
        est.contains("\"bounds_unavailable\":\"infeasible spec\""),
        "{est}"
    );

    // Wrong method on the route is a 405, like every other endpoint.
    let (status, _, _) = request(addr, "GET", "/v1/estimate", "");
    assert_eq!(status, 405);

    // The endpoint shows up in the per-endpoint counters under its own
    // label (the 405 lands under "other", like every method mismatch),
    // and none of the estimates consumed an engine job.
    let report = handle.drain();
    let estimates = report
        .metrics
        .scalar(
            "serve_endpoint_requests_total",
            &[("endpoint", "/v1/estimate")],
        )
        .unwrap();
    assert_eq!(estimates, 3);
    assert_eq!(
        report.metrics.scalar(
            "serve_endpoint_requests_total",
            &[("endpoint", "/v1/predict")]
        ),
        Some(2)
    );
}

#[test]
fn speedup_sweeps_are_byte_identical_to_the_library() {
    let handle = start(1, 4);
    let addr = handle.addr();

    let dag_text =
        predsim_dag::format::dump(&predsim_dag::generate::fork_join(8, 1, 100_000, 4096));
    let body = Value::Object(vec![
        ("dag".into(), Value::Str(dag_text)),
        ("scheduler".into(), Value::Str("heft".into())),
        ("machine".into(), Value::Str("meiko".into())),
        ("procs".into(), Value::Str("1..4".into())),
    ])
    .to_compact();

    // What the library computes in-process, rendered through the same
    // API layer: the wire bytes must match exactly.
    let parsed = api::parse_speedup(&body).expect("body parses");
    let report = predsim_dag::sweep(
        &parsed.dag,
        parsed.scheduler,
        &parsed.machine,
        &parsed.spec,
        &parsed.procs,
    )
    .expect("sweep runs");
    let expected = api::render_speedup(&report);

    let (status, _, served) = request(addr, "POST", "/v1/speedup", &body);
    assert_eq!(status, 200, "{served}");
    assert_eq!(served, expected, "served sweep is byte-identical");
    let doc = json::parse(&served).unwrap();
    assert_eq!(doc.get("version").and_then(Value::as_int), Some(1));
    assert!(doc.get("knee_procs").and_then(Value::as_int).is_some());

    // Schema violations get 400, method mismatches 405.
    let (status, _, _) = request(addr, "POST", "/v1/speedup", "{}");
    assert_eq!(status, 400);
    let (status, _, _) = request(addr, "GET", "/v1/speedup", "");
    assert_eq!(status, 405);

    handle.drain();
}
