//! Resilience end-to-end tests: deterministic chaos injection, worker
//! supervision, tiered degradation, and deadline-aware admission — all
//! over a real TCP socket.

use predsim_lint::json::{self, Value};
use predsim_serve::{ChaosPlan, ChaosSpec, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A prediction heavy enough (~2 s debug) to hold a worker while the
/// test lines up more requests behind it. Distinct sizes per index so
/// the engine's memo cache cannot short-circuit repeated submissions.
fn heavy(i: usize) -> String {
    let n = 3840 - 120 * i;
    format!(r#"{{"source":"ge:{n},24,diagonal,8"}}"#)
}

/// A cheap, clean job every tier can serve.
const CHEAP: &str = r#"{"source":"cannon:96,4"}"#;

/// A heavy job no degraded tier can serve (fault injection voids the
/// static analysis, and the fault rate is too small to ever fire): it
/// must take the full path, so it reliably occupies the queue. Sizes
/// grow with the index so later submissions outlive earlier ones and
/// the queue actually builds depth.
fn heavy_opaque(i: usize) -> String {
    let n = 3840 + 480 * i;
    format!(r#"{{"source":"ge:{n},24,diagonal,8","faults":"drop:0.000001","seed":1}}"#)
}

fn config(workers: usize, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_cap,
        request_timeout: Duration::from_secs(10),
        replay_at: Some(usize::MAX),
        static_at: Some(usize::MAX),
        ..ServeConfig::default()
    }
}

/// One-shot request; `None` when the server severed the connection
/// mid-request (the chaos `drop-conn` fault).
fn try_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
    let mut conn = TcpStream::connect(addr).ok()?;
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .ok()?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw).ok()?;
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status: u16 = head.split("\r\n").next()?.split(' ').nth(1)?.parse().ok()?;
    Some((status, body.to_string()))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    try_request(addr, method, path, body).expect("server dropped the connection")
}

fn predict(addr: SocketAddr, body: &str) -> (u16, String) {
    request(addr, "POST", "/v1/predict", body)
}

/// The `tier` field of a 200 predict response.
fn tier_of(body: &str) -> String {
    json::parse(body)
        .expect("predict response is strict JSON")
        .get("result")
        .and_then(|r| r.get("tier"))
        .and_then(Value::as_str)
        .expect("every predict response names its tier")
        .to_string()
}

fn total_of(body: &str) -> i64 {
    json::parse(body)
        .unwrap()
        .get("result")
        .and_then(|r| r.get("total_ps"))
        .and_then(Value::as_int)
        .expect("total_ps")
}

/// The current `/healthz` numbers: (queue_depth, in_flight).
fn health(addr: SocketAddr) -> (i64, i64) {
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let v = json::parse(&body).expect("healthz is strict JSON");
    (
        v.get("queue_depth").and_then(Value::as_int).unwrap(),
        v.get("in_flight").and_then(Value::as_int).unwrap(),
    )
}

fn wait_until(deadline_ms: u64, mut cond: impl FnMut() -> bool) {
    for _ in 0..deadline_ms / 10 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("condition not reached within {deadline_ms} ms");
}

/// A seed whose panic plan fires at pop-site 0 and stays quiet for the
/// next `quiet` sites — found by scanning the same pure hash the server
/// consults, so the test controls exactly which pop dies.
fn seed_panicking_only_at_site_zero(spec: &ChaosSpec, quiet: u64) -> u64 {
    (0..100_000)
        .find(|&seed| {
            let plan = ChaosPlan::new(spec.clone(), seed);
            plan.worker_panic(0) && (1..=quiet).all(|site| !plan.worker_panic(site))
        })
        .expect("a suitable seed exists in the first 100k")
}

#[test]
fn a_worker_panic_mid_batch_is_invisible_to_the_client() {
    // Chaos kills the single worker on its very first pop, and only
    // then. The supervisor must respawn it and re-enqueue the orphaned
    // job; the batch answer must be byte-identical to a fault-free run.
    let spec = ChaosSpec::parse("panic:0.5").unwrap();
    let seed = seed_panicking_only_at_site_zero(&spec, 8);

    let batch = r#"{"jobs":[{"source":"cannon:96,4","label":"a"},
                            {"source":"stencil:96,8,3","label":"b"},
                            {"source":"ge:240,24,diagonal,8","label":"c"}]}"#;

    let clean = Server::start(config(1, 8)).expect("clean server starts");
    let (status, want) = request(clean.addr(), "POST", "/v1/batch", batch);
    assert_eq!(status, 200);
    clean.drain();

    let chaotic = Server::start(ServeConfig {
        chaos: Some(ChaosPlan::new(spec, seed)),
        ..config(1, 8)
    })
    .expect("chaotic server starts");
    let (status, got) = request(chaotic.addr(), "POST", "/v1/batch", batch);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, want, "a respawned worker must not change the answer");

    let report = chaotic.drain();
    assert_eq!(
        report.metrics.scalar("serve_worker_restarts_total", &[]),
        Some(1),
        "exactly the injected panic was supervised away"
    );
    assert_eq!(
        report
            .metrics
            .scalar("serve_chaos_injections_total", &[("kind", "panic")]),
        Some(1)
    );
}

#[test]
fn a_job_whose_worker_dies_twice_is_answered_as_crashed_not_hung() {
    // Panic on every pop: the job's first run dies, the requeued copy
    // dies too, and the supervisor must answer it (`crashed`) instead of
    // retrying forever or leaving the client hanging.
    let spec = ChaosSpec::parse("panic:1.0").unwrap();
    let handle = Server::start(ServeConfig {
        chaos: Some(ChaosPlan::new(spec, 7)),
        ..config(1, 8)
    })
    .expect("server starts");
    let (status, body) = predict(handle.addr(), CHEAP);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    let result = doc.get("result").unwrap();
    assert_eq!(
        result.get("outcome").and_then(Value::as_str),
        Some("crashed"),
        "{body}"
    );
    assert_eq!(result.get("attempts").and_then(Value::as_int), Some(2));
    let report = handle.drain();
    assert!(report.metrics.scalar("serve_worker_restarts_total", &[]) >= Some(2));
}

#[test]
fn the_same_chaos_seed_replays_the_same_failure_sequence() {
    // Two servers, same chaos plan, same sequential request stream:
    // every observable — per-request outcome, injection counters,
    // restart count — must match exactly.
    let spec = ChaosSpec::parse("panic:0.3,drop-conn:0.25").unwrap();
    let run = || {
        let handle = Server::start(ServeConfig {
            chaos: Some(ChaosPlan::new(spec.clone(), 42)),
            ..config(1, 8)
        })
        .expect("server starts");
        let mut outcomes = Vec::new();
        for _ in 0..12 {
            // Sequential, one connection per request: pop-sites and
            // conn-sites advance in lockstep with the request index.
            match try_request(handle.addr(), "POST", "/v1/predict", CHEAP) {
                Some((status, body)) => {
                    let outcome = json::parse(&body)
                        .ok()
                        .and_then(|d| {
                            d.get("result")
                                .and_then(|r| r.get("outcome"))
                                .and_then(Value::as_str)
                                .map(str::to_string)
                        })
                        .unwrap_or_default();
                    outcomes.push(format!("{status}:{outcome}"));
                }
                None => outcomes.push("dropped".into()),
            }
        }
        let report = handle.drain();
        let chaos = |kind| {
            report
                .metrics
                .scalar("serve_chaos_injections_total", &[("kind", kind)])
                .unwrap_or(0)
        };
        (
            outcomes,
            chaos("panic"),
            chaos("drop-conn"),
            report
                .metrics
                .scalar("serve_worker_restarts_total", &[])
                .unwrap_or(0),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "chaos must be a pure function of the seed");
    assert!(
        first.1 > 0 || first.2 > 0,
        "the drill actually injected something: {first:?}"
    );
}

#[test]
fn overload_degrades_through_replay_to_static_and_brackets_the_truth() {
    let handle = Server::start(ServeConfig {
        replay_at: Some(1),
        ..config(1, 8)
    })
    .expect("server starts");
    let addr = handle.addr();

    // Idle: the full tier answers, and its total is the ground truth.
    let (status, body) = predict(addr, CHEAP);
    assert_eq!(status, 200, "{body}");
    assert_eq!(tier_of(&body), "full");
    let truth = total_of(&body);
    let full_bytes = body;

    // One worker pinned + one queued job puts depth at the replay
    // watermark. The held jobs are fault-injected so no degraded tier
    // can absorb them — they must queue.
    let hold: Vec<_> = (0..2)
        .map(|i| std::thread::spawn(move || predict(addr, &heavy_opaque(i))))
        .collect();
    wait_until(30000, || {
        let (depth, executing) = health(addr);
        depth >= 1 && executing >= 1
    });
    let (status, body) = predict(addr, CHEAP);
    assert_eq!(status, 200, "{body}");
    assert_eq!(tier_of(&body), "replay", "{body}");
    assert_eq!(
        total_of(&body),
        truth,
        "replay totals are bit-identical to full simulation"
    );
    // Replay responses differ from the full tier only in the tier field.
    assert_eq!(
        body.replace("\"tier\":\"replay\"", "\"tier\":\"full\""),
        full_bytes
    );

    for h in hold {
        let (status, _) = h.join().unwrap();
        assert_eq!(status, 200, "held jobs still complete");
    }
    let report = handle.drain();
    for tier in ["full", "replay"] {
        assert!(
            report
                .metrics
                .scalar("serve_tier_total", &[("tier", tier)])
                .unwrap_or(0)
                >= 1,
            "tier {tier} was served"
        );
    }

    // Past the static watermark (a separate server, so the watermark is
    // reachable with a single queued job on this machine): the answer is
    // the bare interval, and it brackets the full-simulation truth.
    let handle = Server::start(ServeConfig {
        replay_at: Some(1),
        static_at: Some(1),
        ..config(1, 8)
    })
    .expect("server starts");
    let addr = handle.addr();
    let hold: Vec<_> = (0..2)
        .map(|i| std::thread::spawn(move || predict(addr, &heavy_opaque(i))))
        .collect();
    wait_until(30000, || {
        let (depth, executing) = health(addr);
        depth >= 1 && executing >= 1
    });
    let (status, body) = predict(addr, CHEAP);
    assert_eq!(status, 200, "{body}");
    let doc = json::parse(&body).unwrap();
    let result = doc.get("result").unwrap();
    assert_eq!(result.get("tier").and_then(Value::as_str), Some("static"));
    assert_eq!(
        result.get("outcome").and_then(Value::as_str),
        Some("estimated")
    );
    let lo = result
        .get("static_lo_ps")
        .and_then(Value::as_int)
        .expect("static_lo_ps");
    let hi = result
        .get("static_hi_ps")
        .and_then(Value::as_int)
        .expect("static_hi_ps");
    assert!(
        lo <= truth && truth <= hi,
        "static bracket [{lo}, {hi}] must contain the full-sim total {truth}"
    );

    for h in hold {
        let (status, _) = h.join().unwrap();
        assert_eq!(status, 200, "held jobs still complete");
    }
    let report = handle.drain();
    assert!(
        report
            .metrics
            .scalar("serve_tier_total", &[("tier", "static")])
            .unwrap_or(0)
            >= 1,
        "the static tier was served"
    );
}

#[test]
fn a_hopeless_deadline_gets_an_instant_static_answer_and_sheds_a_victim() {
    let handle = Server::start(config(1, 8)).expect("server starts");
    let addr = handle.addr();

    // Seed the cost model: two completed predicts teach it the
    // wall-per-virtual-ps ratio and the mean job cost (~2 s per heavy
    // job). Distinct jobs, so neither is a memo-cache hit.
    for i in 0..2 {
        let (status, _) = predict(addr, &heavy(i));
        assert_eq!(status, 200);
    }

    // Pin the worker and park a deadline-less (sheddable) job behind it.
    // Both are submitted concurrently — whichever loses the race for the
    // single worker is the queued victim — so a slow test host can never
    // leave a gap where the first job finishes before the second arrives.
    let first = std::thread::spawn(move || predict(addr, &heavy(2)));
    let second = std::thread::spawn(move || predict(addr, &heavy(3)));
    wait_until(30000, || {
        let (depth, in_flight) = health(addr);
        in_flight >= 1 && depth >= 1
    });

    // A 1 ms deadline cannot be met behind ~2 s of queue: admission must
    // shed the newest queued job (which still gets a static-tier answer)
    // and, still late, answer this request statically too — instantly.
    let started = std::time::Instant::now();
    let (status, body) = predict(addr, r#"{"source":"cannon:96,4","deadline_ms":1}"#);
    assert_eq!(status, 200, "{body}");
    assert_eq!(tier_of(&body), "static", "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "a provably-late deadline is answered without queueing"
    );

    // The in-flight job ran at the full tier; the queued one was shed to
    // a static answer. Which thread is which depends on the race above.
    let mut tiers = Vec::new();
    for worker in [first, second] {
        let (status, body) = worker.join().unwrap();
        assert_eq!(status, 200, "every parked job is still answered: {body}");
        tiers.push(tier_of(&body));
    }
    tiers.sort();
    assert_eq!(tiers, ["full", "static"], "one ran, one was shed");

    // With an idle queue the same deadline job is admitted at the full
    // tier: the deadline only bites under load.
    let (status, body) = predict(addr, r#"{"source":"cannon:96,4","deadline_ms":60000}"#);
    assert_eq!(status, 200, "{body}");
    assert_eq!(tier_of(&body), "full", "{body}");

    let report = handle.drain();
    assert!(
        report
            .metrics
            .scalar("serve_sheds_total", &[("reason", "deadline-victim")])
            .unwrap_or(0)
            >= 1
    );
}
