//! Reusable simulation state: flat per-processor buffers, the arena-backed
//! send queues, and the indexed min-time frontier.
//!
//! The hot loops in [`crate::standard`] and [`crate::worstcase`] keep all
//! their per-processor state in a [`SimScratch`]: plain parallel `Vec`s
//! (structure-of-arrays) instead of a `Vec` of per-processor structs, and a
//! single message arena with cursor ranges instead of one `VecDeque` per
//! processor. A `SimScratch` can be reused across simulations — every
//! buffer is cleared, not reallocated, so a whole-program simulation or a
//! parameter sweep pays the allocations once. The whole-program simulator
//! (`predsim-core`'s `DirectStepSimulator`) holds one across steps.
//!
//! The [`Frontier`] replaces the standard algorithm's per-operation O(P)
//! minimum scan with a binary heap of `(ready_time, proc)` keys. Stale
//! entries are invalidated lazily through per-processor generation
//! counters (the classic event-queue trick; dslab-core's clock queue is
//! the reference design), so an update is a push, never a linear search.
//! Entries pop in ascending `(time, proc)` order, which makes the heap
//! order reproduce the reference implementation's lowest-id tie-break
//! exactly.

use crate::pattern::{CommPattern, Message};
use loggp::{ProcClock, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message in flight, keyed by `(arrival, message id)` for the receive
/// queue — the id tie-break makes the order total and the simulation
/// deterministic. Instead of embedding the full [`Message`], only the
/// message's arena slot rides along (the arena outlives every in-flight
/// entry within a step), keeping the entry at 16 bytes so heap sifts and
/// inbox sorts move a third of the memory the full struct would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct InFlight {
    pub(crate) arrival: Time,
    /// `Message::id`, the ordering tie-break.
    pub(crate) id: u32,
    /// Index of the message in [`SimScratch::arena`].
    pub(crate) slot: u32,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // (arrival, id) is already unique per step; slot merely keeps the
        // derived ordering total for the type.
        (self.arrival, self.id, self.slot).cmp(&(other.arrival, other.id, other.slot))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Indexed min-time frontier over the processors that still want to send.
///
/// Each processor has at most one *live* heap entry, identified by its
/// current generation; superseded entries stay in the heap and are skipped
/// when they surface (lazy deletion). `pop_min` therefore returns the
/// processor with the smallest `(ready_time, id)` pair in O(log n) amortized.
#[derive(Debug, Default)]
pub(crate) struct Frontier {
    heap: BinaryHeap<Reverse<(Time, u32, u32)>>,
    gen: Vec<u32>,
}

impl Frontier {
    /// Empty the frontier and size it for `procs` processors.
    pub(crate) fn reset(&mut self, procs: usize) {
        self.heap.clear();
        self.gen.clear();
        self.gen.resize(procs, 0);
    }

    /// Set processor `p`'s key, superseding any previous entry.
    pub(crate) fn update(&mut self, p: usize, key: Time) {
        self.gen[p] = self.gen[p].wrapping_add(1);
        self.heap.push(Reverse((key, p as u32, self.gen[p])));
    }

    /// Drop processor `p` from the frontier (its entry, if any, goes stale).
    pub(crate) fn remove(&mut self, p: usize) {
        self.gen[p] = self.gen[p].wrapping_add(1);
    }

    /// Pop the live entry with the smallest `(time, proc)` key. The popped
    /// processor keeps its generation; if it is not the one chosen to act,
    /// put it back with [`Frontier::restore`].
    pub(crate) fn pop_min(&mut self) -> Option<(Time, u32)> {
        while let Some(Reverse((t, p, g))) = self.heap.pop() {
            if self.gen[p as usize] == g {
                return Some((t, p));
            }
        }
        None
    }

    /// Pop the next live entry iff its key equals `key` (used to collect
    /// the full tie set after [`Frontier::pop_min`]; live entries surface
    /// in ascending processor order for equal keys).
    pub(crate) fn pop_if_at(&mut self, key: Time) -> Option<u32> {
        while let Some(&Reverse((t, p, g))) = self.heap.peek() {
            if self.gen[p as usize] != g {
                self.heap.pop();
                continue;
            }
            if t != key {
                return None;
            }
            self.heap.pop();
            return Some(p);
        }
        None
    }

    /// Re-insert an entry popped by [`Frontier::pop_min`] /
    /// [`Frontier::pop_if_at`] whose processor was *not* chosen (its state,
    /// and hence its key and generation, are unchanged).
    pub(crate) fn restore(&mut self, p: u32, key: Time) {
        self.heap.push(Reverse((key, p, self.gen[p as usize])));
    }

    /// The raw heap top's `(key, proc)` — possibly a *stale* entry. The
    /// top is minimal over all entries, live ones included, so a candidate
    /// strictly below it is strictly below every live entry; see the
    /// hold-the-min fast path in `standard::sim_core`.
    #[inline]
    pub(crate) fn peek_raw(&self) -> Option<(Time, u32)> {
        self.heap.peek().map(|&Reverse((t, p, _))| (t, p))
    }
}

const PLACEHOLDER: Message = Message {
    id: 0,
    src: 0,
    dst: 0,
    bytes: 0,
};

/// Reusable buffers for the simulation algorithms.
///
/// Construct once (e.g. per worker thread, or inside a
/// `DirectStepSimulator`) and pass to the `*_scratch` entry points; every
/// simulation clears the buffers but keeps their capacity, so repeated
/// steps allocate nothing in the steady state. The scratch carries no
/// state between runs that could affect results — simulations are
/// bit-identical whether the scratch is fresh or reused.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Per-processor LogGP clocks.
    pub(crate) clocks: Vec<ProcClock>,
    /// All network messages, grouped by source, program order within each.
    pub(crate) arena: Vec<Message>,
    /// Per-processor cursor of the next unsent arena message.
    pub(crate) q_start: Vec<u32>,
    /// Per-processor end offset (exclusive) of its arena range.
    pub(crate) q_end: Vec<u32>,
    fill: Vec<u32>,
    /// Standard algorithm: per-processor in-flight message heaps.
    pub(crate) recv_queues: Vec<BinaryHeap<Reverse<InFlight>>>,
    /// Standard algorithm: min-time frontier over pending senders.
    pub(crate) frontier: Frontier,
    /// Standard algorithm: tie buffer for [`crate::TieBreak::Random`].
    pub(crate) tied: Vec<u32>,
    /// Worst-case algorithm: per-processor undelivered-message inboxes.
    pub(crate) inboxes: Vec<Vec<InFlight>>,
    /// Worst-case algorithm: remaining receives before a processor may send.
    pub(crate) to_recv: Vec<u32>,
    /// Retime: per-processor cursor into the recording's arena snapshot.
    pub(crate) rt_cursor: Vec<u32>,
    /// Retime: per-message "send committed" flags and arrival times
    /// (arrivals are only read once the flag is set, so stale values from a
    /// previous retime are harmless).
    pub(crate) rt_sent: Vec<bool>,
    pub(crate) rt_arrival: Vec<Time>,
    /// Retime: per-processor index of the next recorded main-loop pop.
    pub(crate) rt_next_pop: Vec<u32>,
    /// Retime: per-processor key of the last committed main-loop pop.
    pub(crate) rt_last_key: Vec<(Time, u32)>,
    /// Retime: per-processor minimum key among in-flight drain-bound
    /// messages (append-only during the main loop).
    pub(crate) rt_drain_min: Vec<(Time, u32)>,
    /// Retime: drain-phase gather/sort buffer.
    pub(crate) rt_drain: Vec<InFlight>,
}

impl SimScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset the clocks to `ready` and rebuild the send arena for
    /// `pattern` (a counting sort of the network messages by source),
    /// reusing all existing capacity.
    pub(crate) fn begin(&mut self, pattern: &CommPattern, ready: &[Time]) {
        let procs = pattern.procs();
        assert_eq!(ready.len(), procs, "one ready time per processor");
        self.clocks.clear();
        self.clocks.extend(ready.iter().map(|&r| {
            let mut c = ProcClock::new();
            c.advance_to(r);
            c
        }));

        self.q_end.clear();
        self.q_end.resize(procs, 0);
        let mut total = 0u32;
        for m in pattern.network_messages() {
            self.q_end[m.src] += 1;
            total += 1;
        }
        self.q_start.clear();
        self.fill.clear();
        let mut acc = 0u32;
        for p in 0..procs {
            self.q_start.push(acc);
            self.fill.push(acc);
            acc += self.q_end[p];
            self.q_end[p] = acc; // count -> exclusive end offset
        }
        self.arena.clear();
        self.arena.resize(total as usize, PLACEHOLDER);
        for m in pattern.network_messages() {
            let slot = self.fill[m.src] as usize;
            self.arena[slot] = *m;
            self.fill[m.src] += 1;
        }
    }

    /// [`SimScratch::begin`] plus the standard algorithm's receive heaps
    /// and frontier.
    pub(crate) fn begin_standard(&mut self, pattern: &CommPattern, ready: &[Time]) {
        self.begin(pattern, ready);
        let procs = pattern.procs();
        if self.recv_queues.len() < procs {
            self.recv_queues.resize_with(procs, BinaryHeap::new);
        }
        for q in &mut self.recv_queues[..procs] {
            q.clear();
        }
        self.frontier.reset(procs);
    }

    /// [`SimScratch::begin`] plus the worst-case algorithm's inboxes and
    /// receive counters.
    pub(crate) fn begin_worstcase(&mut self, pattern: &CommPattern, ready: &[Time]) {
        self.begin(pattern, ready);
        let procs = pattern.procs();
        if self.inboxes.len() < procs {
            self.inboxes.resize_with(procs, Vec::new);
        }
        for inbox in &mut self.inboxes[..procs] {
            inbox.clear();
        }
        self.to_recv.clear();
        self.to_recv.resize(procs, 0);
        for m in pattern.network_messages() {
            self.to_recv[m.dst] += 1;
        }
    }

    /// Reset state for [`crate::replay`]'s timeline-free re-timing: clocks
    /// from `ready`, send cursors from the recording's arena-snapshot
    /// offsets `q_start0`, and the per-message / per-processor
    /// verification buffers. Unlike [`SimScratch::begin`] this never
    /// touches the arena — retime reads messages from the recording.
    pub(crate) fn begin_retime(
        &mut self,
        ready: &[Time],
        q_start0: &[u32],
        msgs: usize,
        procs: usize,
    ) {
        assert_eq!(ready.len(), procs, "one ready time per processor");
        self.clocks.clear();
        self.clocks.extend(ready.iter().map(|&r| {
            let mut c = ProcClock::new();
            c.advance_to(r);
            c
        }));
        self.rt_cursor.clear();
        self.rt_cursor.extend_from_slice(q_start0);
        self.rt_sent.clear();
        self.rt_sent.resize(msgs, false);
        if self.rt_arrival.len() < msgs {
            self.rt_arrival.resize(msgs, Time::ZERO);
        }
        self.rt_next_pop.clear();
        self.rt_next_pop.resize(procs, 0);
        self.rt_last_key.clear();
        self.rt_last_key.resize(procs, (Time::ZERO, 0));
        self.rt_drain_min.clear();
        self.rt_drain_min.resize(procs, (Time::MAX, u32::MAX));
    }

    /// True iff processor `p` still has unsent messages.
    #[inline]
    pub(crate) fn has_sends(&self, p: usize) -> bool {
        self.q_start[p] < self.q_end[p]
    }

    /// Pop processor `p`'s next unsent message (program order), returning
    /// its arena slot alongside (the slot goes into [`InFlight`] entries).
    #[inline]
    pub(crate) fn pop_send(&mut self, p: usize) -> (u32, Message) {
        debug_assert!(self.has_sends(p));
        let slot = self.q_start[p];
        let msg = self.arena[slot as usize];
        self.q_start[p] += 1;
        (slot, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_groups_by_source_in_program_order() {
        let mut p = CommPattern::new(3);
        p.add(1, 2, 10);
        p.add(0, 1, 20);
        p.add(1, 0, 30);
        p.add(2, 2, 99); // self-message: excluded
        let mut s = SimScratch::new();
        s.begin(&p, &[Time::ZERO; 3]);
        assert_eq!(s.arena.len(), 3);
        // P0's range: one message (id 1); P1's: ids 0 then 2; P2's: empty.
        assert_eq!((s.q_start[0], s.q_end[0]), (0, 1));
        assert_eq!((s.q_start[1], s.q_end[1]), (1, 3));
        assert_eq!((s.q_start[2], s.q_end[2]), (3, 3));
        assert_eq!(s.arena[0].id, 1);
        assert_eq!(s.arena[1].id, 0);
        assert_eq!(s.arena[2].id, 2);
        assert!(s.has_sends(1));
        assert_eq!(s.pop_send(1), (1, s.arena[1]));
        assert_eq!(s.pop_send(1).1.id, 2);
        assert!(!s.has_sends(1));
        assert!(!s.has_sends(2));
    }

    #[test]
    fn scratch_reuse_rebuilds_cleanly() {
        let mut a = CommPattern::new(2);
        a.add(0, 1, 1);
        a.add(1, 0, 2);
        let mut s = SimScratch::new();
        s.begin_standard(&a, &[Time::ZERO; 2]);
        s.pop_send(0);
        // Smaller second pattern: all cursors and buffers must reset.
        let mut b = CommPattern::new(2);
        b.add(1, 0, 7);
        s.begin_standard(&b, &[Time::from_us(5.0), Time::ZERO]);
        assert!(!s.has_sends(0));
        assert!(s.has_sends(1));
        assert_eq!(s.pop_send(1).1.bytes, 7);
        assert_eq!(s.clocks[0].last_end(), Time::from_us(5.0));
    }

    #[test]
    fn frontier_pops_in_time_then_proc_order() {
        let mut f = Frontier::default();
        f.reset(4);
        f.update(2, Time::from_us(5.0));
        f.update(0, Time::from_us(5.0));
        f.update(1, Time::from_us(3.0));
        f.update(3, Time::from_us(9.0));
        let (t, p) = f.pop_min().unwrap();
        assert_eq!((t, p), (Time::from_us(3.0), 1));
        // Equal keys surface lowest processor first.
        let (t, p) = f.pop_min().unwrap();
        assert_eq!((t, p), (Time::from_us(5.0), 0));
        assert_eq!(f.pop_if_at(Time::from_us(5.0)), Some(2));
        assert_eq!(f.pop_if_at(Time::from_us(5.0)), None);
        assert_eq!(f.pop_min().unwrap().1, 3);
        assert!(f.pop_min().is_none());
    }

    #[test]
    fn frontier_update_supersedes_and_restore_revives() {
        let mut f = Frontier::default();
        f.reset(2);
        f.update(0, Time::from_us(1.0));
        f.update(1, Time::from_us(2.0));
        f.update(0, Time::from_us(8.0)); // supersedes the 1.0 entry
        let (t, p) = f.pop_min().unwrap();
        assert_eq!((t, p), (Time::from_us(2.0), 1));
        f.restore(1, t); // not chosen after all
        f.remove(1);
        let (t, p) = f.pop_min().unwrap();
        assert_eq!((t, p), (Time::from_us(8.0), 0));
        assert!(f.pop_min().is_none());
    }
}
