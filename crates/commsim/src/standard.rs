//! The standard communication-simulation algorithm (paper Figure 2).
//!
//! Given a communication pattern, determine for each processor the sequence
//! of send and receive operations such that the resulting execution complies
//! with the LogGP model and with three scheduling rules:
//!
//! 1. the (extended) gap `g` separates consecutive operations,
//! 2. available messages are sent as soon as possible,
//! 3. *receives have priority over sends*: whenever a processor wants to
//!    send but a message is already waiting, the receive is performed first
//!    (Split-C's active messages behave this way).
//!
//! The algorithm keeps, per processor, a FIFO queue of messages to send
//! (program order) and a priority queue of in-flight messages ordered by
//! arrival time. The main loop repeatedly picks the processor with minimum
//! current simulation time among those that still want to send, and lets it
//! perform whichever of {next send, earliest pending receive} can start
//! first, receives winning ties. When no sends remain, every processor
//! drains its receive queue.
//!
//! # Implementation
//!
//! This is the optimized hot loop: per-processor state lives in flat
//! parallel arrays inside a reusable [`SimScratch`] (send queues are cursor
//! ranges into one message arena), and the "minimum ctime among pending
//! senders" selection uses the lazy-deletion [`crate::scratch`] frontier
//! heap instead of an O(P) rescan per committed operation. The produced
//! timelines are **bit-identical** to the straightforward encoding kept in
//! [`crate::reference`]; `tests/equiv.rs` pins the equivalence across
//! patterns × presets × gap rules × tie seeds × fault plans × arrival
//! hooks.

use crate::faults::{transmit, StepFaults};
use crate::observe::StepTracer;
use crate::pattern::{CommPattern, Message};
use crate::replay::RecBufs;
use crate::scratch::{InFlight, SimScratch};
use crate::timeline::{CommEvent, SimResult, Timeline};
use crate::{SimConfig, TieBreak};
use loggp::{OpKind, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;

/// Simulate one communication step with the standard algorithm.
///
/// Self-messages in the pattern are ignored, as in the paper. The returned
/// timeline contains one send and one receive event per network message.
pub fn simulate(pattern: &CommPattern, cfg: &SimConfig) -> SimResult {
    simulate_from(pattern, cfg, &vec![Time::ZERO; pattern.procs()])
}

/// Simulate one communication step where processor `p` may not start
/// communicating before `ready[p]` (used by the whole-program simulator:
/// a processor enters the communication step only after its computation
/// phase ends).
pub fn simulate_from(pattern: &CommPattern, cfg: &SimConfig, ready: &[Time]) -> SimResult {
    let params = cfg.params;
    simulate_hooked(pattern, cfg, ready, &mut |m, start| {
        params.arrival_time(start, m.bytes)
    })
}

/// [`simulate_from`] reusing the caller's [`SimScratch`] buffers (the
/// whole-program simulator holds one across steps so repeated steps
/// allocate nothing in the steady state).
pub fn simulate_from_scratch(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    scratch: &mut SimScratch,
) -> SimResult {
    let params = cfg.params;
    simulate_faulted_scratch(
        pattern,
        cfg,
        ready,
        &mut |m, start| params.arrival_time(start, m.bytes),
        None,
        None,
        scratch,
    )
}

/// [`simulate_from`] with a custom *arrival model*: `arrival(msg,
/// send_start)` returns when the message becomes available at its
/// destination. The default is the pure LogGP arrival
/// `send_start + o + (k−1)·G + L`; the machine emulator plugs in jitter
/// and link contention here. The hook's contract is
/// `arrival ≥ send_start + o` (a message cannot arrive before its send
/// overhead completes); a hook that returns an earlier time is **clamped**
/// to `send_start + o`, in release builds too, so a misbehaving arrival
/// model can delay messages but never yields an unsound timeline.
pub fn simulate_hooked(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
) -> SimResult {
    simulate_traced(pattern, cfg, ready, arrival_of, None)
}

/// [`simulate_hooked`] with an optional [`StepTracer`] observing every
/// committed operation. Tracing never changes the computed timeline.
pub fn simulate_traced(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
) -> SimResult {
    simulate_faulted(pattern, cfg, ready, arrival_of, tracer, None)
}

/// [`simulate_traced`] under an optional fault model: each message may be
/// dropped and retransmitted per [`StepFaults::attempts`], with every
/// attempt charged at the sender (see [`crate::faults`]) and only the final
/// attempt feeding the arrival model. `faults: None` is exactly
/// [`simulate_traced`].
pub fn simulate_faulted(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) -> SimResult {
    let mut scratch = SimScratch::new();
    simulate_faulted_scratch(
        pattern,
        cfg,
        ready,
        arrival_of,
        tracer,
        faults,
        &mut scratch,
    )
}

/// [`simulate_faulted`] reusing the caller's [`SimScratch`] buffers.
pub fn simulate_faulted_scratch(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
    scratch: &mut SimScratch,
) -> SimResult {
    sim_core(
        pattern, cfg, ready, arrival_of, tracer, faults, scratch, None,
    )
}

/// The full hot loop, optionally recording the commit order for
/// [`crate::replay`]: each committed main-loop operation is appended to
/// `rec.ops` as `proc << 1 | kind` (`0` = send, `1` = receive), and each
/// main-loop receive's arena slot to `rec.recv_slots`. The drain phase is
/// not recorded — it is a pure function of the state the main loop leaves
/// behind.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sim_core(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
    scratch: &mut SimScratch,
    rec: Option<&mut RecBufs>,
) -> SimResult {
    // Monomorphize the recording flag out of the hot loop: the plain
    // simulation path compiles with zero recording code (the `rec`
    // bookkeeping otherwise costs ~10% on the GE pair via register
    // pressure alone).
    match rec {
        Some(r) => sim_core_impl::<true>(
            pattern,
            cfg,
            ready,
            arrival_of,
            tracer,
            faults,
            scratch,
            Some(r),
        ),
        None => sim_core_impl::<false>(
            pattern, cfg, ready, arrival_of, tracer, faults, scratch, None,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn sim_core_impl<const REC: bool>(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
    scratch: &mut SimScratch,
    mut rec: Option<&mut RecBufs>,
) -> SimResult {
    let params = &cfg.params;
    let rule = cfg.gap_rule;
    // The RNG is only consulted under [`TieBreak::Random`]; deterministic
    // runs construct no RNG at all.
    let mut rng: Option<SmallRng> = None;

    scratch.begin_standard(pattern, ready);
    let procs = pattern.procs();
    for p in 0..procs {
        if scratch.has_sends(p) {
            // No operation committed yet: the first send may start at the
            // processor's ready time.
            scratch.frontier.update(
                p,
                scratch.clocks[p].ready_at_kind(params, rule, OpKind::Send),
            );
        }
    }

    let mut timeline = Timeline::new(procs);
    timeline.reserve(2 * scratch.arena.len());

    // Main loop: while there are processors that want to send. `cur` is
    // the already-popped minimum frontier entry; the hold-the-min fast
    // path at the bottom of the loop keeps the acting processor popped
    // (no heap traffic at all) whenever its re-keyed entry is still the
    // strict minimum — in broadcast-shaped patterns one sender commits
    // long runs of operations back to back, and those runs otherwise pay
    // a full heap pop + push each.
    let mut cur = scratch.frontier.pop_min();
    while let Some((min_time, first)) = cur {
        let min_proc = match cfg.tie_break {
            TieBreak::LowestId => first as usize,
            TieBreak::Random => {
                // Collect the whole tie set (surfaces in ascending processor
                // order, matching the reference scan) and draw uniformly.
                scratch.tied.clear();
                scratch.tied.push(first);
                while let Some(p) = scratch.frontier.pop_if_at(min_time) {
                    scratch.tied.push(p);
                }
                // A singleton draw returns 0 without consuming RNG state
                // (see the vendored `gen_range`), so skipping it keeps the
                // stream bit-identical to the reference loop.
                let choice = if scratch.tied.len() == 1 {
                    0
                } else {
                    let rng = rng.get_or_insert_with(|| SmallRng::seed_from_u64(cfg.seed));
                    rng.gen_range(0..scratch.tied.len())
                };
                for (i, &p) in scratch.tied.iter().enumerate() {
                    if i != choice {
                        scratch.frontier.restore(p, min_time);
                    }
                }
                scratch.tied[choice] as usize
            }
        };

        // Candidate start times for the two alternatives. The frontier key
        // is the processor's current send readiness by construction.
        let start_send = min_time;
        let start_recv = match scratch.recv_queues[min_proc].peek() {
            Some(Reverse(inflight)) => scratch.clocks[min_proc].earliest_start_kind(
                params,
                rule,
                OpKind::Recv,
                inflight.arrival,
            ),
            None => Time::MAX, // paper: start_recv = infinity
        };

        if start_send < start_recv {
            // Perform SEND: strict '<' gives receives priority on ties.
            let (slot, msg) = scratch.pop_send(min_proc);
            let final_start = transmit(
                &mut scratch.clocks[min_proc],
                params,
                rule,
                min_proc,
                &msg,
                false,
                faults,
                tracer,
                &mut timeline,
            );
            // Documented clamp: a hook returning < send_start + o is lifted
            // to the earliest sound arrival.
            let arrival = arrival_of(&msg, final_start).max(final_start + params.overhead);
            scratch.recv_queues[msg.dst].push(Reverse(InFlight {
                arrival,
                id: msg.id as u32,
                slot,
            }));
            if REC {
                if let Some(r) = rec.as_deref_mut() {
                    r.ops.push((min_proc as u32) << 1);
                }
            }
        } else {
            // Perform RECEIVE.
            let Reverse(inflight) = scratch.recv_queues[min_proc]
                .pop()
                .expect("receive queue non-empty");
            let msg = scratch.arena[inflight.slot as usize];
            let end = scratch.clocks[min_proc].commit_kind(params, rule, OpKind::Recv, start_recv);
            let event = CommEvent {
                proc: min_proc,
                kind: OpKind::Recv,
                peer: msg.src,
                bytes: msg.bytes,
                msg_id: msg.id,
                start: start_recv,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, false);
            }
            timeline.push(event);
            if REC {
                if let Some(r) = rec.as_deref_mut() {
                    r.ops.push((min_proc as u32) << 1 | 1);
                    r.recv_slots.push(inflight.slot);
                }
            }
        }

        // Re-key the acting processor (its clock advanced either way).
        if scratch.has_sends(min_proc) {
            let key = scratch.clocks[min_proc].ready_at_kind(params, rule, OpKind::Send);
            // Hold the min: if the re-keyed entry's time is strictly
            // below the raw heap top's (which is minimal over every
            // entry, live ones included), this processor is the unique
            // next minimum — act again without touching the heap. The
            // strictness is on *time*, not the (time, proc) pair: a
            // same-time entry is a tie, and ties must reach the
            // tie-break (and, under `TieBreak::Random`, the RNG draw).
            match scratch.frontier.peek_raw() {
                Some((t, _)) if t <= key => {
                    scratch.frontier.update(min_proc, key);
                    cur = scratch.frontier.pop_min();
                }
                _ => cur = Some((key, min_proc as u32)),
            }
        } else {
            scratch.frontier.remove(min_proc);
            cur = scratch.frontier.pop_min();
        }
    }

    drain(params, cfg, scratch, tracer, &mut timeline);
    SimResult::new(timeline)
}

/// Final phase: all sends done; every processor drains its receives in
/// arrival order. Shared between the main loop and [`crate::replay`].
pub(crate) fn drain(
    params: &loggp::LogGpParams,
    cfg: &SimConfig,
    scratch: &mut SimScratch,
    tracer: Option<&StepTracer<'_>>,
    timeline: &mut Timeline,
) {
    for (i, clock) in scratch.clocks.iter_mut().enumerate() {
        while let Some(Reverse(inflight)) = scratch.recv_queues[i].pop() {
            let msg = scratch.arena[inflight.slot as usize];
            let start =
                clock.earliest_start_kind(params, cfg.gap_rule, OpKind::Recv, inflight.arrival);
            let end = clock.commit_kind(params, cfg.gap_rule, OpKind::Recv, start);
            let event = CommEvent {
                proc: i,
                kind: OpKind::Recv,
                peer: msg.src,
                bytes: msg.bytes,
                msg_id: msg.id,
                start,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, true);
            }
            timeline.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use loggp::presets;

    fn meiko_cfg(procs: usize) -> SimConfig {
        SimConfig::new(presets::meiko_cs2(procs))
    }

    #[test]
    fn empty_pattern_finishes_at_zero() {
        let pattern = CommPattern::new(4);
        let r = simulate(&pattern, &meiko_cfg(4));
        assert_eq!(r.finish, Time::ZERO);
        assert!(r.timeline.is_empty());
    }

    #[test]
    fn single_message_costs_o_wire_l_o() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1100);
        let cfg = meiko_cfg(2);
        let r = simulate(&pattern, &cfg);
        assert_eq!(r.finish, cfg.params.message_cost(1100));
        assert_eq!(r.timeline.len(), 2);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn sends_respect_gap() {
        // One sender, two messages to different destinations: second send
        // starts exactly g after the first.
        let mut pattern = CommPattern::new(3);
        pattern.add(0, 1, 64);
        pattern.add(0, 2, 64);
        let cfg = meiko_cfg(3);
        let r = simulate(&pattern, &cfg);
        let sends = r.timeline.events_for(0);
        assert_eq!(sends.len(), 2);
        assert_eq!(sends[1].start - sends[0].start, cfg.params.gap);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn receive_has_priority_over_send_on_tie() {
        // P1 wants to send, but a message from P0 is already waiting when
        // P1 becomes ready; the receive must win the tie.
        let cfg = meiko_cfg(2);
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1); // arrives at o + L = 15us
        pattern.add(1, 0, 1);
        // Delay P1's step entry to exactly the arrival instant so that
        // start_send == start_recv.
        let arrival = cfg.params.arrival_time(Time::ZERO, 1);
        let r = simulate_from(&pattern, &cfg, &[Time::ZERO, arrival]);
        let p1 = r.timeline.events_for(1);
        assert_eq!(
            p1[0].kind,
            OpKind::Recv,
            "receive must have priority: {p1:?}"
        );
        assert_eq!(p1[0].start, arrival);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn send_goes_first_when_no_message_waiting() {
        // Symmetric exchange starting at t=0: both sides send before their
        // partner's message arrives (start_recv would be o+L > 0).
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        pattern.add(1, 0, 1);
        let cfg = meiko_cfg(2);
        let r = simulate(&pattern, &cfg);
        for p in 0..2 {
            let evs = r.timeline.events_for(p);
            assert_eq!(evs[0].kind, OpKind::Send);
            assert_eq!(evs[0].start, Time::ZERO);
            assert_eq!(evs[1].kind, OpKind::Recv);
        }
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn receives_drain_in_arrival_order() {
        // P0 sends to P2 twice; P1 also sends to P2. Arrival order at P2:
        // msg0 (sent at 0), msg2 (sent at 0 by P1, same length, larger id),
        // msg1 (sent at g).
        let mut pattern = CommPattern::new(3);
        let a = pattern.add(0, 2, 100);
        let b = pattern.add(0, 2, 100);
        let c = pattern.add(1, 2, 100);
        let cfg = meiko_cfg(3);
        let r = simulate(&pattern, &cfg);
        let order: Vec<usize> = r.timeline.events_for(2).iter().map(|e| e.msg_id).collect();
        assert_eq!(order, vec![a, c, b]);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn self_messages_are_ignored() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 0, 1_000_000);
        let r = simulate(&pattern, &meiko_cfg(2));
        assert!(r.timeline.is_empty());
        assert_eq!(r.finish, Time::ZERO);
    }

    #[test]
    fn ready_times_delay_participation() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        let cfg = meiko_cfg(2);
        let delay = Time::from_us(100.0);
        let r = simulate_from(&pattern, &cfg, &[delay, Time::ZERO]);
        let send = r.timeline.events_for(0)[0];
        assert_eq!(send.start, delay);
        assert_eq!(r.finish, delay + cfg.params.message_cost(1));
    }

    #[test]
    fn random_tie_break_is_deterministic_per_seed() {
        let mut pattern = CommPattern::new(4);
        for s in 0..3 {
            pattern.add(s, 3, 500);
        }
        let cfg = meiko_cfg(4).with_random_ties(42);
        let a = simulate(&pattern, &cfg);
        let b = simulate(&pattern, &cfg);
        assert_eq!(a.timeline.events(), b.timeline.events());
    }

    #[test]
    fn all_to_one_serializes_receives_by_gap() {
        let n = 5;
        let mut pattern = CommPattern::new(n);
        for s in 1..n {
            pattern.add(s, 0, 1);
        }
        let cfg = meiko_cfg(n);
        let r = simulate(&pattern, &cfg);
        let recvs = r.timeline.events_for(0);
        assert_eq!(recvs.len(), n - 1);
        for w in recvs.windows(2) {
            assert!(w[1].start - w[0].start >= cfg.params.gap);
        }
        // Lower bound: first arrival + (n-2) gaps + o.
        let first_arrival = cfg.params.arrival_time(Time::ZERO, 1);
        let lower = first_arrival + cfg.params.gap * (n as u64 - 2) + cfg.params.overhead;
        assert!(r.finish >= lower);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let cfg = meiko_cfg(10);
        let mut scratch = SimScratch::new();
        let big = crate::patterns::all_to_all(10, 512);
        let small = crate::patterns::ring(10, 64);
        // Interleave differently-shaped simulations through one scratch and
        // compare each against a fresh run.
        for pattern in [&big, &small, &big] {
            let reused = simulate_from_scratch(pattern, &cfg, &[Time::ZERO; 10], &mut scratch);
            let fresh = simulate(pattern, &cfg);
            assert_eq!(reused.timeline.events(), fresh.timeline.events());
            assert_eq!(reused.finish, fresh.finish);
        }
    }

    #[test]
    fn lowest_id_results_do_not_depend_on_seed() {
        // Under TieBreak::LowestId the (now lazily constructed) RNG is
        // never consulted: any seed yields the same timeline.
        let pattern = crate::patterns::all_to_all(6, 256);
        let base = simulate(&pattern, &meiko_cfg(6));
        for seed in [1u64, 42, u64::MAX] {
            let r = simulate(&pattern, &meiko_cfg(6).with_seed(seed));
            assert_eq!(r.timeline.events(), base.timeline.events());
        }
    }

    #[test]
    fn misbehaving_arrival_hook_is_clamped_not_unsound() {
        // A hook claiming instant arrival (violating arrival ≥ start + o)
        // is clamped to send_start + o — in release builds too.
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 4096);
        let cfg = meiko_cfg(2);
        let r = simulate_hooked(&pattern, &cfg, &[Time::ZERO; 2], &mut |_m, _start| {
            Time::ZERO
        });
        let send = r.timeline.events_for(0)[0];
        let recv = r.timeline.events_for(1)[0];
        assert_eq!(recv.start, send.start + cfg.params.overhead);
        assert_eq!(r.finish, send.start + cfg.params.overhead * 2);
    }
}
