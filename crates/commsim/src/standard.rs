//! The standard communication-simulation algorithm (paper Figure 2).
//!
//! Given a communication pattern, determine for each processor the sequence
//! of send and receive operations such that the resulting execution complies
//! with the LogGP model and with three scheduling rules:
//!
//! 1. the (extended) gap `g` separates consecutive operations,
//! 2. available messages are sent as soon as possible,
//! 3. *receives have priority over sends*: whenever a processor wants to
//!    send but a message is already waiting, the receive is performed first
//!    (Split-C's active messages behave this way).
//!
//! The algorithm keeps, per processor, a FIFO queue of messages to send
//! (program order) and a priority queue of in-flight messages ordered by
//! arrival time. The main loop repeatedly picks the processor with minimum
//! current simulation time among those that still want to send, and lets it
//! perform whichever of {next send, earliest pending receive} can start
//! first, receives winning ties. When no sends remain, every processor
//! drains its receive queue.

use crate::faults::{transmit, StepFaults};
use crate::observe::StepTracer;
use crate::pattern::{CommPattern, Message};
use crate::timeline::{CommEvent, SimResult, Timeline};
use crate::{SimConfig, TieBreak};
use loggp::{OpKind, ProcClock, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A message in flight, keyed by arrival time for the receive queue.
/// Ties are broken by message id, making the heap order total and the
/// simulation deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct InFlight {
    arrival: Time,
    msg: Message,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.msg.id).cmp(&(other.arrival, other.msg.id))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-processor simulation state.
struct ProcState {
    clock: ProcClock,
    send_queue: VecDeque<Message>,
    recv_queue: BinaryHeap<Reverse<InFlight>>,
}

/// Simulate one communication step with the standard algorithm.
///
/// Self-messages in the pattern are ignored, as in the paper. The returned
/// timeline contains one send and one receive event per network message.
pub fn simulate(pattern: &CommPattern, cfg: &SimConfig) -> SimResult {
    simulate_from(pattern, cfg, &vec![Time::ZERO; pattern.procs()])
}

/// Simulate one communication step where processor `p` may not start
/// communicating before `ready[p]` (used by the whole-program simulator:
/// a processor enters the communication step only after its computation
/// phase ends).
pub fn simulate_from(pattern: &CommPattern, cfg: &SimConfig, ready: &[Time]) -> SimResult {
    let params = cfg.params;
    simulate_hooked(pattern, cfg, ready, &mut |m, start| {
        params.arrival_time(start, m.bytes)
    })
}

/// [`simulate_from`] with a custom *arrival model*: `arrival(msg,
/// send_start)` returns when the message becomes available at its
/// destination. The default is the pure LogGP arrival
/// `send_start + o + (k−1)·G + L`; the machine emulator plugs in jitter
/// and link contention here. The hook must return a time
/// `≥ send_start + o` (a message cannot arrive before its send overhead
/// completes); this is debug-asserted.
pub fn simulate_hooked(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
) -> SimResult {
    simulate_traced(pattern, cfg, ready, arrival_of, None)
}

/// [`simulate_hooked`] with an optional [`StepTracer`] observing every
/// committed operation. Tracing never changes the computed timeline.
pub fn simulate_traced(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
) -> SimResult {
    simulate_faulted(pattern, cfg, ready, arrival_of, tracer, None)
}

/// [`simulate_traced`] under an optional fault model: each message may be
/// dropped and retransmitted per [`StepFaults::attempts`], with every
/// attempt charged at the sender (see [`crate::faults`]) and only the final
/// attempt feeding the arrival model. `faults: None` is exactly
/// [`simulate_traced`].
// Indices double as processor ids throughout.
#[allow(clippy::needless_range_loop)]
pub fn simulate_faulted(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) -> SimResult {
    assert_eq!(ready.len(), pattern.procs(), "one ready time per processor");
    let params = &cfg.params;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let mut procs: Vec<ProcState> = pattern
        .send_queues()
        .into_iter()
        .zip(ready)
        .map(|(send_queue, &r)| {
            let mut clock = ProcClock::new();
            clock.advance_to(r);
            ProcState {
                clock,
                send_queue,
                recv_queue: BinaryHeap::new(),
            }
        })
        .collect();

    let mut timeline = Timeline::new(pattern.procs());

    // Main loop: while there are processors that want to send.
    loop {
        // min_proc = processor with minimum ctime among those with sends left.
        let rule = cfg.gap_rule;
        let min_time = procs
            .iter()
            .filter(|p| !p.send_queue.is_empty())
            .map(|p| p.clock.ready_at_kind(params, rule, OpKind::Send))
            .min();
        let Some(min_time) = min_time else { break };
        let tied: Vec<usize> = (0..procs.len())
            .filter(|&i| {
                !procs[i].send_queue.is_empty()
                    && procs[i].clock.ready_at_kind(params, rule, OpKind::Send) == min_time
            })
            .collect();
        let min_proc = match cfg.tie_break {
            TieBreak::LowestId => tied[0],
            TieBreak::Random => tied[rng.gen_range(0..tied.len())],
        };

        // Candidate start times for the two alternatives.
        let state = &procs[min_proc];
        let start_send = state.clock.ready_at_kind(params, rule, OpKind::Send);
        let start_recv = match state.recv_queue.peek() {
            Some(Reverse(inflight)) => {
                state
                    .clock
                    .earliest_start_kind(params, rule, OpKind::Recv, inflight.arrival)
            }
            None => Time::MAX, // paper: start_recv = infinity
        };

        if start_send < start_recv {
            // Perform SEND: strict '<' gives receives priority on ties.
            let msg = procs[min_proc]
                .send_queue
                .pop_front()
                .expect("send queue non-empty");
            let final_start = transmit(
                &mut procs[min_proc].clock,
                params,
                rule,
                min_proc,
                &msg,
                false,
                faults,
                tracer,
                &mut timeline,
            );
            let arrival = arrival_of(&msg, final_start);
            debug_assert!(
                arrival >= final_start + params.overhead,
                "arrival precedes send"
            );
            procs[msg.dst]
                .recv_queue
                .push(Reverse(InFlight { arrival, msg }));
        } else {
            // Perform RECEIVE.
            let Reverse(inflight) = procs[min_proc]
                .recv_queue
                .pop()
                .expect("receive queue non-empty");
            let end = procs[min_proc]
                .clock
                .commit_kind(params, rule, OpKind::Recv, start_recv);
            let event = CommEvent {
                proc: min_proc,
                kind: OpKind::Recv,
                peer: inflight.msg.src,
                bytes: inflight.msg.bytes,
                msg_id: inflight.msg.id,
                start: start_recv,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, false);
            }
            timeline.push(event);
        }
    }

    // Final phase: all sends done; every processor drains its receives in
    // arrival order.
    for i in 0..procs.len() {
        while let Some(Reverse(inflight)) = procs[i].recv_queue.pop() {
            let start = procs[i].clock.earliest_start_kind(
                params,
                cfg.gap_rule,
                OpKind::Recv,
                inflight.arrival,
            );
            let end = procs[i]
                .clock
                .commit_kind(params, cfg.gap_rule, OpKind::Recv, start);
            let event = CommEvent {
                proc: i,
                kind: OpKind::Recv,
                peer: inflight.msg.src,
                bytes: inflight.msg.bytes,
                msg_id: inflight.msg.id,
                start,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, true);
            }
            timeline.push(event);
        }
    }

    SimResult::new(timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;
    use loggp::presets;

    fn meiko_cfg(procs: usize) -> SimConfig {
        SimConfig::new(presets::meiko_cs2(procs))
    }

    #[test]
    fn empty_pattern_finishes_at_zero() {
        let pattern = CommPattern::new(4);
        let r = simulate(&pattern, &meiko_cfg(4));
        assert_eq!(r.finish, Time::ZERO);
        assert!(r.timeline.is_empty());
    }

    #[test]
    fn single_message_costs_o_wire_l_o() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1100);
        let cfg = meiko_cfg(2);
        let r = simulate(&pattern, &cfg);
        assert_eq!(r.finish, cfg.params.message_cost(1100));
        assert_eq!(r.timeline.len(), 2);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn sends_respect_gap() {
        // One sender, two messages to different destinations: second send
        // starts exactly g after the first.
        let mut pattern = CommPattern::new(3);
        pattern.add(0, 1, 64);
        pattern.add(0, 2, 64);
        let cfg = meiko_cfg(3);
        let r = simulate(&pattern, &cfg);
        let sends = r.timeline.events_for(0);
        assert_eq!(sends.len(), 2);
        assert_eq!(sends[1].start - sends[0].start, cfg.params.gap);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn receive_has_priority_over_send_on_tie() {
        // P1 wants to send, but a message from P0 is already waiting when
        // P1 becomes ready; the receive must win the tie.
        let cfg = meiko_cfg(2);
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1); // arrives at o + L = 15us
        pattern.add(1, 0, 1);
        // Delay P1's step entry to exactly the arrival instant so that
        // start_send == start_recv.
        let arrival = cfg.params.arrival_time(Time::ZERO, 1);
        let r = simulate_from(&pattern, &cfg, &[Time::ZERO, arrival]);
        let p1 = r.timeline.events_for(1);
        assert_eq!(
            p1[0].kind,
            OpKind::Recv,
            "receive must have priority: {p1:?}"
        );
        assert_eq!(p1[0].start, arrival);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn send_goes_first_when_no_message_waiting() {
        // Symmetric exchange starting at t=0: both sides send before their
        // partner's message arrives (start_recv would be o+L > 0).
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        pattern.add(1, 0, 1);
        let cfg = meiko_cfg(2);
        let r = simulate(&pattern, &cfg);
        for p in 0..2 {
            let evs = r.timeline.events_for(p);
            assert_eq!(evs[0].kind, OpKind::Send);
            assert_eq!(evs[0].start, Time::ZERO);
            assert_eq!(evs[1].kind, OpKind::Recv);
        }
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn receives_drain_in_arrival_order() {
        // P0 sends to P2 twice; P1 also sends to P2. Arrival order at P2:
        // msg0 (sent at 0), msg2 (sent at 0 by P1, same length, larger id),
        // msg1 (sent at g).
        let mut pattern = CommPattern::new(3);
        let a = pattern.add(0, 2, 100);
        let b = pattern.add(0, 2, 100);
        let c = pattern.add(1, 2, 100);
        let cfg = meiko_cfg(3);
        let r = simulate(&pattern, &cfg);
        let order: Vec<usize> = r.timeline.events_for(2).iter().map(|e| e.msg_id).collect();
        assert_eq!(order, vec![a, c, b]);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }

    #[test]
    fn self_messages_are_ignored() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 0, 1_000_000);
        let r = simulate(&pattern, &meiko_cfg(2));
        assert!(r.timeline.is_empty());
        assert_eq!(r.finish, Time::ZERO);
    }

    #[test]
    fn ready_times_delay_participation() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        let cfg = meiko_cfg(2);
        let delay = Time::from_us(100.0);
        let r = simulate_from(&pattern, &cfg, &[delay, Time::ZERO]);
        let send = r.timeline.events_for(0)[0];
        assert_eq!(send.start, delay);
        assert_eq!(r.finish, delay + cfg.params.message_cost(1));
    }

    #[test]
    fn random_tie_break_is_deterministic_per_seed() {
        let mut pattern = CommPattern::new(4);
        for s in 0..3 {
            pattern.add(s, 3, 500);
        }
        let cfg = meiko_cfg(4).with_random_ties(42);
        let a = simulate(&pattern, &cfg);
        let b = simulate(&pattern, &cfg);
        assert_eq!(a.timeline.events(), b.timeline.events());
    }

    #[test]
    fn all_to_one_serializes_receives_by_gap() {
        let n = 5;
        let mut pattern = CommPattern::new(n);
        for s in 1..n {
            pattern.add(s, 0, 1);
        }
        let cfg = meiko_cfg(n);
        let r = simulate(&pattern, &cfg);
        let recvs = r.timeline.events_for(0);
        assert_eq!(recvs.len(), n - 1);
        for w in recvs.windows(2) {
            assert!(w[1].start - w[0].start >= cfg.params.gap);
        }
        // Lower bound: first arrival + (n-2) gaps + o.
        let first_arrival = cfg.params.arrival_time(Time::ZERO, 1);
        let lower = first_arrival + cfg.params.gap * (n as u64 - 2) + cfg.params.overhead;
        assert!(r.finish >= lower);
        validate(&pattern, &cfg, &r.timeline).unwrap();
    }
}
