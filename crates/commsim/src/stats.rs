//! Post-hoc analysis of simulated timelines: where did the time go?
//!
//! The paper's figures report only completion times; these statistics
//! expose the structure underneath — per-processor busy/idle split,
//! per-message latency decomposition (time on the wire vs. time waiting in
//! the destination's queue), and port utilization — which is what one
//! actually inspects when a prediction looks off.

use crate::pattern::CommPattern;
use crate::timeline::Timeline;
use crate::SimConfig;
use loggp::{OpKind, Time};

/// Per-processor activity summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcStats {
    /// Processor id.
    pub proc: usize,
    /// Number of sends performed.
    pub sends: usize,
    /// Number of receives performed.
    pub recvs: usize,
    /// Total CPU time inside operation overheads.
    pub busy: Time,
    /// Completion time of this processor's last operation.
    pub finish: Time,
    /// `finish − busy`: time the processor was idle (waiting on arrivals
    /// or on the gap) before its last operation completed.
    pub idle: Time,
}

impl ProcStats {
    /// `busy / finish`, in `[0, 1]`; 1.0 for processors with no events.
    pub fn utilization(&self) -> f64 {
        if self.finish.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / self.finish.as_secs_f64()
        }
    }
}

/// One message's end-to-end timing decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageStats {
    /// Message id in the pattern.
    pub msg_id: usize,
    /// Time from send start to (modeled) arrival at the destination:
    /// `o + (k−1)G + L` under pure LogGP.
    pub flight: Time,
    /// Time the message waited at the destination between arrival and the
    /// start of its receive operation (queueing caused by the gap rule and
    /// by competing operations).
    pub queueing: Time,
    /// Full end-to-end time: send start to receive end.
    pub end_to_end: Time,
}

/// Everything [`analyze`] computes.
#[derive(Clone, Debug)]
pub struct TimelineStats {
    /// Per-processor summaries (indexed by processor id).
    pub procs: Vec<ProcStats>,
    /// Per-message decompositions, ordered by message id.
    pub messages: Vec<MessageStats>,
    /// The step's completion time.
    pub completion: Time,
}

impl TimelineStats {
    /// Mean port utilization over processors that communicated at all.
    pub fn mean_utilization(&self) -> f64 {
        let active: Vec<&ProcStats> = self
            .procs
            .iter()
            .filter(|p| p.sends + p.recvs > 0)
            .collect();
        if active.is_empty() {
            return 1.0;
        }
        active.iter().map(|p| p.utilization()).sum::<f64>() / active.len() as f64
    }

    /// Largest per-message queueing delay (0 if no messages).
    pub fn max_queueing(&self) -> Time {
        self.messages
            .iter()
            .map(|m| m.queueing)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total queueing across messages — the contention the LogGP *formulas*
    /// of regular patterns can't see but the simulation derives.
    pub fn total_queueing(&self) -> Time {
        self.messages.iter().map(|m| m.queueing).sum()
    }
}

/// Record a step's [`TimelineStats`] into a metrics [`Registry`]
/// (`predsim_obs`): per-processor busy/idle picoseconds and operation
/// counts as labelled counters, plus step-level completion and queueing
/// figures. Counters accumulate across steps, so calling this once per
/// step yields whole-program per-processor totals.
pub fn record_metrics(stats: &TimelineStats, registry: &predsim_obs::Registry) {
    for ps in &stats.procs {
        let proc = ps.proc.to_string();
        let labels: &[(&str, &str)] = &[("proc", &proc)];
        registry
            .counter_with(
                "predsim_proc_busy_ps_total",
                labels,
                "virtual ps the processor spent inside send/receive overheads",
            )
            .add(ps.busy.as_ps());
        registry
            .counter_with(
                "predsim_proc_idle_ps_total",
                labels,
                "virtual ps the processor spent waiting before its last operation",
            )
            .add(ps.idle.as_ps());
        registry
            .counter_with(
                "predsim_proc_sends_total",
                labels,
                "send operations performed",
            )
            .add(ps.sends as u64);
        registry
            .counter_with(
                "predsim_proc_recvs_total",
                labels,
                "receive operations performed",
            )
            .add(ps.recvs as u64);
    }
    registry
        .counter_with(
            "predsim_steps_simulated_total",
            &[],
            "communication steps recorded into this registry",
        )
        .inc();
    registry
        .counter_with(
            "predsim_queueing_ps_total",
            &[],
            "total virtual ps messages waited in destination queues",
        )
        .add(stats.total_queueing().as_ps());
    registry
        .gauge(
            "predsim_step_completion_ps_max",
            "largest step completion time seen",
        )
        .set_max(stats.completion.as_ps());
    registry
        .histogram(
            "predsim_step_completion_ps",
            "per-step completion times",
            &predsim_obs::default_ps_buckets(),
        )
        .observe_time(stats.completion);
}

/// Analyze a timeline produced for `pattern` under `cfg`.
pub fn analyze(pattern: &CommPattern, cfg: &SimConfig, timeline: &Timeline) -> TimelineStats {
    let params = &cfg.params;
    let mut procs = Vec::with_capacity(timeline.procs());
    for (proc, evs) in timeline.sorted_by_proc().into_iter().enumerate() {
        let sends = evs.iter().filter(|e| e.kind == OpKind::Send).count();
        let recvs = evs.len() - sends;
        let busy: Time = evs.iter().map(|e| e.end - e.start).sum();
        let finish = evs.last().map(|e| e.end).unwrap_or(Time::ZERO);
        procs.push(ProcStats {
            proc,
            sends,
            recvs,
            busy,
            finish,
            idle: finish - busy,
        });
    }

    let pairs = timeline.message_pairs();
    let mut messages = Vec::new();
    for m in pattern.network_messages() {
        if let Some((Some(s), Some(r))) = pairs.get(&m.id) {
            let arrival = params.arrival_time(s.start, m.bytes);
            messages.push(MessageStats {
                msg_id: m.id,
                flight: arrival - s.start,
                queueing: r.start.saturating_sub(arrival),
                end_to_end: r.end - s.start,
            });
        }
    }
    messages.sort_by_key(|m| m.msg_id);

    TimelineStats {
        procs,
        messages,
        completion: timeline.completion(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{patterns, standard};
    use loggp::presets;

    fn run(pattern: &CommPattern) -> (SimConfig, Timeline) {
        let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
        (cfg, standard::simulate(pattern, &cfg).timeline)
    }

    #[test]
    fn single_message_has_no_queueing() {
        let mut p = CommPattern::new(2);
        p.add(0, 1, 500);
        let (cfg, t) = run(&p);
        let stats = analyze(&p, &cfg, &t);
        assert_eq!(stats.messages.len(), 1);
        let m = &stats.messages[0];
        assert_eq!(m.queueing, Time::ZERO);
        assert_eq!(m.end_to_end, cfg.params.message_cost(500));
        // flight runs from send *start* to arrival, so it contains the
        // sender's o but not the receiver's.
        assert_eq!(m.flight, m.end_to_end - cfg.params.overhead);
        assert_eq!(stats.completion, m.end_to_end);
    }

    #[test]
    fn fan_in_queues_messages() {
        let p = patterns::gather(6, 0, 100);
        let (cfg, t) = run(&p);
        let stats = analyze(&p, &cfg, &t);
        // All arrive together; all but the first wait at least one gap.
        let queued = stats
            .messages
            .iter()
            .filter(|m| m.queueing > Time::ZERO)
            .count();
        assert_eq!(queued, 4);
        assert!(stats.max_queueing() >= cfg.params.gap * 4 - cfg.params.overhead);
        assert!(stats.total_queueing() > Time::ZERO);
    }

    #[test]
    fn proc_stats_account_busy_and_idle() {
        let p = patterns::figure3();
        let (cfg, t) = run(&p);
        let stats = analyze(&p, &cfg, &t);
        for ps in &stats.procs {
            assert_eq!(ps.busy, cfg.params.overhead * (ps.sends + ps.recvs) as u64);
            assert_eq!(ps.finish, ps.busy + ps.idle);
            let u = ps.utilization();
            assert!((0.0..=1.0).contains(&u), "P{}: {u}", ps.proc);
        }
        // The sink processor (P9) mostly waits.
        let p9 = &stats.procs[9];
        assert!(p9.idle > p9.busy);
        assert!(stats.mean_utilization() < 1.0);
    }

    #[test]
    fn empty_timeline_stats() {
        let p = CommPattern::new(3);
        let (cfg, t) = run(&p);
        let stats = analyze(&p, &cfg, &t);
        assert_eq!(stats.completion, Time::ZERO);
        assert_eq!(stats.mean_utilization(), 1.0);
        assert!(stats.messages.is_empty());
        for ps in &stats.procs {
            assert_eq!(ps.utilization(), 1.0);
        }
    }
}
