//! Communication patterns: the input of the simulation algorithms.
//!
//! The paper describes a communication step by "a directed graph where the
//! nodes represent the processors involved in the communication step, the
//! edges represent messages being transmitted and the costs of these edges
//! represent the lengths of messages". [`CommPattern`] is exactly that — a
//! directed *multigraph* (two processors may exchange several messages in
//! one step), with the extra detail that the order in which a pattern's
//! messages are added fixes each processor's program-order send queue.

use std::collections::VecDeque;
use std::fmt;

/// Index of a message within its [`CommPattern`] (also its global send
/// order as written in the program).
pub type MsgId = usize;

/// One message of a communication step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Identifier: the index of this message in [`CommPattern::messages`].
    pub id: MsgId,
    /// Sending processor.
    pub src: usize,
    /// Receiving processor.
    pub dst: usize,
    /// Message length in bytes.
    pub bytes: usize,
}

impl Message {
    /// True iff source and destination are the same processor. The paper's
    /// simulation deliberately ignores such local transfers ("message
    /// transfers from one processor to itself, which are local memory
    /// transfers in real execution"); the machine emulator charges them a
    /// memory-copy cost instead.
    pub fn is_self_message(&self) -> bool {
        self.src == self.dst
    }
}

/// Error constructing a [`CommPattern`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// A message references a processor outside `0..procs`.
    ProcOutOfRange {
        /// The offending message index.
        msg: MsgId,
        /// The referenced processor.
        proc: usize,
        /// The number of processors in the pattern.
        procs: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::ProcOutOfRange { msg, proc, procs } => write!(
                f,
                "message {msg} references processor {proc}, but the pattern has {procs} processors"
            ),
        }
    }
}

impl std::error::Error for PatternError {}

/// A communication step: `procs` processors and an ordered list of
/// messages between them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommPattern {
    procs: usize,
    messages: Vec<Message>,
}

impl CommPattern {
    /// An empty pattern over `procs` processors.
    pub fn new(procs: usize) -> Self {
        CommPattern {
            procs,
            messages: Vec::new(),
        }
    }

    /// Append a message of `bytes` bytes from `src` to `dst`; returns its
    /// [`MsgId`]. Messages from a processor are sent in the order they were
    /// added (program order).
    ///
    /// # Panics
    /// Panics if `src` or `dst` is out of range; use [`CommPattern::try_add`]
    /// for a fallible version.
    pub fn add(&mut self, src: usize, dst: usize, bytes: usize) -> MsgId {
        self.try_add(src, dst, bytes)
            .expect("processor out of range")
    }

    /// Fallible [`CommPattern::add`].
    pub fn try_add(&mut self, src: usize, dst: usize, bytes: usize) -> Result<MsgId, PatternError> {
        let id = self.messages.len();
        for proc in [src, dst] {
            if proc >= self.procs {
                return Err(PatternError::ProcOutOfRange {
                    msg: id,
                    proc,
                    procs: self.procs,
                });
            }
        }
        self.messages.push(Message {
            id,
            src,
            dst,
            bytes,
        });
        Ok(id)
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// All messages in program order.
    pub fn messages(&self) -> &[Message] {
        &self.messages
    }

    /// Number of messages (including self-messages).
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// True iff the pattern has no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Total bytes across all messages (including self-messages).
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Messages that actually cross the network (excluding self-messages).
    pub fn network_messages(&self) -> impl Iterator<Item = &Message> {
        self.messages.iter().filter(|m| !m.is_self_message())
    }

    /// Per-processor FIFO send queues in program order, self-messages
    /// excluded (what the LogGP simulators consume).
    pub fn send_queues(&self) -> Vec<VecDeque<Message>> {
        let mut queues = vec![VecDeque::new(); self.procs];
        for m in self.network_messages() {
            queues[m.src].push_back(*m);
        }
        queues
    }

    /// Number of network messages each processor will receive.
    pub fn recv_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.procs];
        for m in self.network_messages() {
            counts[m.dst] += 1;
        }
        counts
    }

    /// Number of network messages each processor will send.
    pub fn send_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.procs];
        for m in self.network_messages() {
            counts[m.src] += 1;
        }
        counts
    }

    /// Processors that participate in at least one network message.
    pub fn active_procs(&self) -> Vec<usize> {
        let mut active = vec![false; self.procs];
        for m in self.network_messages() {
            active[m.src] = true;
            active[m.dst] = true;
        }
        (0..self.procs).filter(|&p| active[p]).collect()
    }

    /// Successor lists of the processor-level directed graph (self-edges
    /// excluded): `adj[p]` holds one entry per network message `p` sends.
    pub fn proc_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.procs];
        for m in self.network_messages() {
            adj[m.src].push(m.dst);
        }
        adj
    }

    /// True iff the processor-level directed graph (ignoring self-edges)
    /// contains a cycle. Cyclic patterns deadlock the worst-case algorithm,
    /// which then has to force transmissions (paper §4.2).
    pub fn has_cycle(&self) -> bool {
        crate::graph::tarjan_sccs(&self.proc_adjacency()).has_nontrivial()
    }

    /// The nontrivial strongly connected components of the processor graph
    /// (self-messages excluded): the groups of processors that deadlock the
    /// worst-case algorithm. Each component is sorted ascending; components
    /// are ordered by their smallest member. Empty iff the pattern is
    /// acyclic.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let mut comps: Vec<Vec<usize>> = crate::graph::tarjan_sccs(&self.proc_adjacency())
            .nontrivial()
            .cloned()
            .collect();
        comps.sort_by_key(|c| c[0]);
        comps
    }

    /// One representative simple directed cycle per nontrivial SCC of the
    /// processor graph: each entry is a processor sequence
    /// `p0 -> p1 -> … -> pk -> p0` (returned without the closing repeat).
    /// Deterministic for a fixed pattern; empty iff the pattern is acyclic.
    pub fn cycles(&self) -> Vec<Vec<usize>> {
        let adj = self.proc_adjacency();
        self.sccs()
            .iter()
            .map(|comp| crate::graph::representative_cycle(&adj, comp))
            .collect()
    }

    /// Merge another pattern over the same processor count into this one,
    /// appending its messages after ours.
    pub fn extend_from(&mut self, other: &CommPattern) {
        assert_eq!(self.procs, other.procs, "patterns over different machines");
        for m in &other.messages {
            self.add(m.src, m.dst, m.bytes);
        }
    }

    /// Graphviz DOT rendering of the pattern (nodes = processors that
    /// participate, edge labels = bytes), for inspection and for the
    /// Figure 3 regenerator. Edges that lie inside a strongly connected
    /// component — the ones responsible for worst-case deadlocks — are
    /// drawn red and bold.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let scc = crate::graph::tarjan_sccs(&self.proc_adjacency());
        let cyclic_edge = |m: &Message| {
            !m.is_self_message()
                && scc.comp_of[m.src] == scc.comp_of[m.dst]
                && scc.components[scc.comp_of[m.src]].len() > 1
        };
        let mut s = String::from("digraph comm {\n  rankdir=LR;\n");
        for p in self.active_procs() {
            let _ = writeln!(s, "  p{p} [label=\"P{p}\"];");
        }
        for m in &self.messages {
            let attrs = if cyclic_edge(m) {
                format!("label=\"{}B\", color=red, penwidth=2", m.bytes)
            } else {
                format!("label=\"{}B\"", m.bytes)
            };
            let _ = writeln!(s, "  p{} -> p{} [{attrs}];", m.src, m.dst);
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for CommPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CommPattern: {} procs, {} messages, {} bytes",
            self.procs,
            self.len(),
            self.total_bytes()
        )?;
        for m in &self.messages {
            writeln!(
                f,
                "  #{:<3} P{} -> P{}  {} bytes",
                m.id, m.src, m.dst, m.bytes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> CommPattern {
        let mut p = CommPattern::new(3);
        p.add(0, 1, 100);
        p.add(1, 2, 200);
        p
    }

    #[test]
    fn add_assigns_sequential_ids() {
        let p = chain3();
        assert_eq!(p.messages()[0].id, 0);
        assert_eq!(p.messages()[1].id, 1);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut p = CommPattern::new(2);
        let err = p.try_add(0, 5, 10).unwrap_err();
        assert_eq!(
            err,
            PatternError::ProcOutOfRange {
                msg: 0,
                proc: 5,
                procs: 2
            }
        );
        assert!(err.to_string().contains("processor 5"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_panics_out_of_range() {
        CommPattern::new(1).add(0, 1, 1);
    }

    #[test]
    fn send_queues_preserve_program_order() {
        let mut p = CommPattern::new(3);
        p.add(0, 1, 10);
        p.add(0, 2, 20);
        p.add(1, 2, 30);
        let q = p.send_queues();
        assert_eq!(q[0].len(), 2);
        assert_eq!(q[0][0].dst, 1);
        assert_eq!(q[0][1].dst, 2);
        assert_eq!(q[1].len(), 1);
        assert!(q[2].is_empty());
    }

    #[test]
    fn self_messages_excluded_from_network_views() {
        let mut p = CommPattern::new(2);
        p.add(0, 0, 10); // self
        p.add(0, 1, 20);
        assert_eq!(p.len(), 2);
        assert_eq!(p.network_messages().count(), 1);
        assert_eq!(p.send_counts(), vec![1, 0]);
        assert_eq!(p.recv_counts(), vec![0, 1]);
        assert_eq!(p.total_bytes(), 30);
        assert!(p.messages()[0].is_self_message());
    }

    #[test]
    fn counts_and_active() {
        let p = chain3();
        assert_eq!(p.send_counts(), vec![1, 1, 0]);
        assert_eq!(p.recv_counts(), vec![0, 1, 1]);
        assert_eq!(p.active_procs(), vec![0, 1, 2]);
        let mut q = CommPattern::new(5);
        q.add(1, 3, 1);
        assert_eq!(q.active_procs(), vec![1, 3]);
    }

    #[test]
    fn cycle_detection() {
        assert!(!chain3().has_cycle());
        let mut ring = CommPattern::new(3);
        ring.add(0, 1, 1);
        ring.add(1, 2, 1);
        ring.add(2, 0, 1);
        assert!(ring.has_cycle());
        // A self-message alone is not a cycle for the worst-case algorithm
        // (it never traverses the network).
        let mut selfy = CommPattern::new(2);
        selfy.add(1, 1, 1);
        assert!(!selfy.has_cycle());
    }

    #[test]
    fn sccs_and_cycles_name_the_deadlock() {
        assert!(chain3().sccs().is_empty());
        assert!(chain3().cycles().is_empty());

        // Two disjoint cycles plus a bystander chain: 0<->1 and 2->3->2,
        // with 4 feeding 0 acyclically.
        let mut p = CommPattern::new(5);
        p.add(0, 1, 1);
        p.add(1, 0, 1);
        p.add(2, 3, 1);
        p.add(3, 2, 1);
        p.add(4, 0, 1);
        assert_eq!(p.sccs(), vec![vec![0, 1], vec![2, 3]]);
        let cycles = p.cycles();
        assert_eq!(cycles.len(), 2);
        for cyc in &cycles {
            assert!(cyc.len() >= 2);
            // Consecutive members (and the closing pair) are real edges.
            for i in 0..cyc.len() {
                let (a, b) = (cyc[i], cyc[(i + 1) % cyc.len()]);
                assert!(
                    p.network_messages().any(|m| m.src == a && m.dst == b),
                    "{a}->{b} not a message"
                );
            }
        }
        assert_eq!(cycles[0][0], 0);
        assert_eq!(cycles[1][0], 2);
    }

    #[test]
    fn dot_highlights_cycle_edges() {
        let mut p = CommPattern::new(3);
        p.add(0, 1, 10); // part of the cycle below
        p.add(1, 0, 10);
        p.add(1, 2, 20); // acyclic tail
        let dot = p.to_dot();
        assert!(
            dot.contains("p0 -> p1 [label=\"10B\", color=red, penwidth=2];"),
            "{dot}"
        );
        assert!(dot.contains("p1 -> p2 [label=\"20B\"];"), "{dot}");
    }

    #[test]
    fn extend_from_appends() {
        let mut p = chain3();
        let q = chain3();
        p.extend_from(&q);
        assert_eq!(p.len(), 4);
        assert_eq!(p.messages()[2].id, 2);
    }

    #[test]
    #[should_panic(expected = "different machines")]
    fn extend_from_rejects_mismatched_procs() {
        let mut p = CommPattern::new(2);
        p.extend_from(&CommPattern::new(3));
    }

    #[test]
    fn dot_and_display_render() {
        let p = chain3();
        let dot = p.to_dot();
        assert!(dot.contains("p0 -> p1 [label=\"100B\"]"), "{dot}");
        let disp = p.to_string();
        assert!(disp.contains("P1 -> P2"), "{disp}");
    }
}
