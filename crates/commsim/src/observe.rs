//! Trace emission for the step simulators.
//!
//! A [`StepTracer`] couples a [`TraceSink`] with the index of the program
//! step being simulated; the traced entry points
//! ([`crate::standard::simulate_traced`],
//! [`crate::worstcase::simulate_traced`]) call back into it at every
//! committed operation. Tracing is strictly observational: the simulators
//! compute identical timelines with and without a tracer attached.

use crate::timeline::CommEvent;
use loggp::Time;
use predsim_obs::{TraceEvent, TraceSink};

/// Emits [`TraceEvent`]s for the operations of one communication step.
pub struct StepTracer<'a> {
    sink: &'a dyn TraceSink,
    step: u64,
}

impl<'a> StepTracer<'a> {
    /// A tracer writing to `sink`, stamping every event with `step`.
    pub fn new(sink: &'a dyn TraceSink, step: u64) -> Self {
        StepTracer { sink, step }
    }

    /// The step index stamped on emitted events.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Record a committed send operation (`forced` marks the worst-case
    /// algorithm's deadlock-breaking transmissions).
    pub fn send(&self, ev: &CommEvent, forced: bool) {
        self.sink.emit(&TraceEvent::Send {
            step: self.step,
            proc: ev.proc,
            peer: ev.peer,
            msg_id: ev.msg_id,
            bytes: ev.bytes,
            start_ps: ev.start.as_ps(),
            end_ps: ev.end.as_ps(),
            forced,
        });
    }

    /// Record a committed receive operation; when the receive started
    /// strictly after the message's arrival a [`TraceEvent::GapStall`] is
    /// emitted alongside it.
    pub fn recv(&self, ev: &CommEvent, arrival: Time, drain: bool) {
        self.sink.emit(&TraceEvent::Recv {
            step: self.step,
            proc: ev.proc,
            peer: ev.peer,
            msg_id: ev.msg_id,
            bytes: ev.bytes,
            arrival_ps: arrival.as_ps(),
            start_ps: ev.start.as_ps(),
            end_ps: ev.end.as_ps(),
            drain,
        });
        if ev.start > arrival {
            self.sink.emit(&TraceEvent::GapStall {
                step: self.step,
                proc: ev.proc,
                msg_id: ev.msg_id,
                arrival_ps: arrival.as_ps(),
                start_ps: ev.start.as_ps(),
                waited_ps: (ev.start - arrival).as_ps(),
            });
        }
    }

    /// Record that the network dropped one transmission attempt of a
    /// message (`ev` is the dropped attempt's send event).
    pub fn dropped(&self, ev: &CommEvent, attempt: u64) {
        self.sink.emit(&TraceEvent::Drop {
            step: self.step,
            proc: ev.proc,
            peer: ev.peer,
            msg_id: ev.msg_id,
            attempt,
            at_ps: ev.start.as_ps(),
        });
    }

    /// Record a retransmission attempt committed after waiting out `rto`.
    pub fn retransmit(&self, ev: &CommEvent, attempt: u64, rto: Time) {
        self.sink.emit(&TraceEvent::Retransmit {
            step: self.step,
            proc: ev.proc,
            peer: ev.peer,
            msg_id: ev.msg_id,
            attempt,
            rto_ps: rto.as_ps(),
            start_ps: ev.start.as_ps(),
            end_ps: ev.end.as_ps(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggp::OpKind;
    use predsim_obs::MemorySink;

    fn ev(proc: usize, kind: OpKind, start: u64, end: u64) -> CommEvent {
        CommEvent {
            proc,
            kind,
            peer: 1,
            bytes: 8,
            msg_id: 0,
            start: Time::from_ps(start),
            end: Time::from_ps(end),
        }
    }

    #[test]
    fn recv_after_arrival_emits_gap_stall() {
        let sink = MemorySink::new();
        let tracer = StepTracer::new(&sink, 4);
        tracer.recv(&ev(0, OpKind::Recv, 100, 160), Time::from_ps(40), false);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "recv");
        assert!(matches!(
            events[1],
            TraceEvent::GapStall {
                step: 4,
                waited_ps: 60,
                ..
            }
        ));
    }

    #[test]
    fn prompt_recv_emits_no_stall() {
        let sink = MemorySink::new();
        let tracer = StepTracer::new(&sink, 0);
        tracer.recv(&ev(0, OpKind::Recv, 40, 100), Time::from_ps(40), true);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], TraceEvent::Recv { drain: true, .. }));
    }

    #[test]
    fn send_carries_forced_flag() {
        let sink = MemorySink::new();
        let tracer = StepTracer::new(&sink, 2);
        assert_eq!(tracer.step(), 2);
        tracer.send(&ev(3, OpKind::Send, 0, 60), true);
        assert!(matches!(
            sink.events()[0],
            TraceEvent::Send {
                proc: 3,
                forced: true,
                ..
            }
        ));
    }
}
