//! The overestimation ("worst-case") simulation algorithm (paper §4.2).
//!
//! To bound the communication time from above, each processor first waits
//! for **all** the messages it has to receive and only afterwards starts
//! transmitting its own. The algorithm proceeds in rounds: in the first part
//! of a round, every processor whose receive counter has reached zero sends
//! all of its messages; in the second part, every destination performs the
//! corresponding receive operations (in arrival order, under the gap rule).
//!
//! A processor inside a cycle of the pattern would wait forever, so on a
//! round in which no processor may send and messages remain, the algorithm
//! "performs randomly some message transmissions in order to break the
//! deadlock": one pending message from a randomly chosen blocked processor
//! is forced out. The number of forced transmissions is reported in
//! [`SimResult::forced_sends`].
//!
//! The paper notes this schedule "cannot take place in real execution"
//! (processors usually do not know how many messages to expect); it exists
//! purely to overestimate.
//!
//! # Implementation
//!
//! Like [`crate::standard`], the loop runs on flat [`SimScratch`] state
//! (arena-cursor send queues, reused inbox buffers, a receive-counter
//! array) and is pinned bit-identical to the straightforward encoding in
//! [`crate::reference`] by `tests/equiv.rs`. Because part 2 of every round
//! fully drains the inboxes, the round structure — which processors send in
//! which round, and where deadlocks are broken — depends only on the
//! pattern, never on the LogGP parameters; [`crate::replay`] exploits that
//! to re-time a recorded run under new parameters without re-running the
//! selection logic.

use crate::faults::{transmit, StepFaults};
use crate::observe::StepTracer;
use crate::pattern::{CommPattern, Message};
use crate::scratch::{InFlight, SimScratch};
use crate::timeline::{CommEvent, SimResult, Timeline};
use crate::SimConfig;
use loggp::{GapRule, LogGpParams, OpKind, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Simulate one communication step with the overestimation algorithm.
pub fn simulate(pattern: &CommPattern, cfg: &SimConfig) -> SimResult {
    simulate_from(pattern, cfg, &vec![Time::ZERO; pattern.procs()])
}

/// [`simulate`] with per-processor earliest communication times (processors
/// enter the step when their computation phase ends).
pub fn simulate_from(pattern: &CommPattern, cfg: &SimConfig, ready: &[Time]) -> SimResult {
    let params = cfg.params;
    simulate_hooked(pattern, cfg, ready, &mut |m, start| {
        params.arrival_time(start, m.bytes)
    })
}

/// [`simulate_from`] reusing the caller's [`SimScratch`] buffers.
pub fn simulate_from_scratch(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    scratch: &mut SimScratch,
) -> SimResult {
    let params = cfg.params;
    simulate_faulted_scratch(
        pattern,
        cfg,
        ready,
        &mut |m, start| params.arrival_time(start, m.bytes),
        None,
        None,
        scratch,
    )
}

/// [`simulate_from`] with a custom arrival model (see
/// [`crate::standard::simulate_hooked`] for the contract; arrivals earlier
/// than `send_start + o` are clamped here too).
pub fn simulate_hooked(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
) -> SimResult {
    simulate_traced(pattern, cfg, ready, arrival_of, None)
}

/// [`simulate_hooked`] with an optional [`StepTracer`] observing every
/// committed operation; forced (deadlock-breaking) transmissions are
/// flagged on their send events. Tracing never changes the timeline.
pub fn simulate_traced(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
) -> SimResult {
    simulate_faulted(pattern, cfg, ready, arrival_of, tracer, None)
}

/// [`simulate_traced`] under an optional fault model (the same contract as
/// [`crate::standard::simulate_faulted`]): message drops and charged
/// retransmissions per [`StepFaults`], decided identically to the standard
/// algorithm so the overestimation bound holds under injection.
pub fn simulate_faulted(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) -> SimResult {
    let mut scratch = SimScratch::new();
    simulate_faulted_scratch(
        pattern,
        cfg,
        ready,
        arrival_of,
        tracer,
        faults,
        &mut scratch,
    )
}

/// [`simulate_faulted`] reusing the caller's [`SimScratch`] buffers.
pub fn simulate_faulted_scratch(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
    scratch: &mut SimScratch,
) -> SimResult {
    wc_core(
        pattern, cfg, ready, arrival_of, tracer, faults, scratch, None,
    )
}

/// Pop processor `p`'s next message, commit its send (fault-charged), and
/// deliver it to the destination inbox with a clamped arrival.
#[allow(clippy::too_many_arguments)]
fn wc_send(
    scratch: &mut SimScratch,
    timeline: &mut Timeline,
    params: &LogGpParams,
    rule: GapRule,
    p: usize,
    forced: bool,
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) {
    let (slot, msg) = scratch.pop_send(p);
    let final_start = transmit(
        &mut scratch.clocks[p],
        params,
        rule,
        p,
        &msg,
        forced,
        faults,
        tracer,
        timeline,
    );
    // Documented clamp (see `standard::simulate_hooked`): an arrival model
    // returning < send_start + o is lifted to the earliest sound arrival,
    // in release builds too.
    let arrival = arrival_of(&msg, final_start).max(final_start + params.overhead);
    scratch.inboxes[msg.dst].push(InFlight {
        arrival,
        id: msg.id as u32,
        slot,
    });
}

/// Part 2 of a round: every destination receives the messages delivered so
/// far, in `(arrival, msg.id)` order. Shared with [`crate::replay`].
pub(crate) fn wc_drain(
    scratch: &mut SimScratch,
    timeline: &mut Timeline,
    params: &LogGpParams,
    rule: GapRule,
    tracer: Option<&StepTracer<'_>>,
    procs: usize,
) {
    for p in 0..procs {
        if scratch.inboxes[p].is_empty() {
            continue;
        }
        let mut inbox = std::mem::take(&mut scratch.inboxes[p]);
        // (arrival, id) is unique, so the unstable sort is deterministic.
        inbox.sort_unstable();
        for &inflight in &inbox {
            let msg = scratch.arena[inflight.slot as usize];
            let clock = &mut scratch.clocks[p];
            let start = clock.earliest_start_kind(params, rule, OpKind::Recv, inflight.arrival);
            let end = clock.commit_kind(params, rule, OpKind::Recv, start);
            let event = CommEvent {
                proc: p,
                kind: OpKind::Recv,
                peer: msg.src,
                bytes: msg.bytes,
                msg_id: msg.id,
                start,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, false);
            }
            timeline.push(event);
            scratch.to_recv[p] -= 1;
        }
        inbox.clear();
        scratch.inboxes[p] = inbox; // hand the buffer back for reuse
    }
}

/// The full round loop, optionally recording the commit order for
/// [`crate::replay`]: each send is appended as `proc << 1 | forced`, and a
/// `u32::MAX` sentinel marks the end of each round's part 1 (where the
/// drain runs). Because every round fully drains, the recorded structure
/// is a pure function of the pattern and the forced-send RNG stream — it
/// replays exactly under any LogGP parameters as long as the seed matches.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wc_core(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
    scratch: &mut SimScratch,
    mut rec: Option<&mut Vec<u32>>,
) -> SimResult {
    let params = &cfg.params;
    let rule = cfg.gap_rule;
    // Only deadlock rounds consult the RNG; acyclic patterns build none.
    let mut rng: Option<SmallRng> = None;

    scratch.begin_worstcase(pattern, ready);
    let procs = pattern.procs();
    let mut timeline = Timeline::new(procs);
    timeline.reserve(2 * scratch.arena.len());
    let mut forced_sends = 0usize;
    let mut remaining_sends = scratch.arena.len();

    // Part 2 fully drains every inbox, so at the top of a round no receives
    // are ever pending (the reference loop's "receives pending but nobody
    // eligible" branch is unreachable) and the loop runs while sends remain.
    while remaining_sends > 0 {
        debug_assert!(scratch.inboxes[..procs].iter().all(|i| i.is_empty()));

        // Part 1: every processor that has received everything it expects
        // sends all of its messages.
        scratch.tied.clear();
        for p in 0..procs {
            if scratch.to_recv[p] == 0 && scratch.has_sends(p) {
                scratch.tied.push(p as u32);
            }
        }

        if !scratch.tied.is_empty() {
            for i in 0..scratch.tied.len() {
                let p = scratch.tied[i] as usize;
                while scratch.has_sends(p) {
                    wc_send(
                        scratch,
                        &mut timeline,
                        params,
                        rule,
                        p,
                        false,
                        arrival_of,
                        tracer,
                        faults,
                    );
                    remaining_sends -= 1;
                    if let Some(r) = rec.as_deref_mut() {
                        r.push((p as u32) << 1);
                    }
                }
            }
        } else {
            // Deadlock: messages remain but every would-be sender is still
            // waiting on a cycle. Force one transmission from a randomly
            // chosen blocked processor.
            for p in 0..procs {
                if scratch.has_sends(p) {
                    scratch.tied.push(p as u32);
                }
            }
            debug_assert!(!scratch.tied.is_empty());
            // A singleton draw returns 0 without consuming RNG state, so
            // skipping it keeps the stream identical to the reference loop.
            let victim = if scratch.tied.len() == 1 {
                scratch.tied[0] as usize
            } else {
                let rng = rng.get_or_insert_with(|| SmallRng::seed_from_u64(cfg.seed));
                scratch.tied[rng.gen_range(0..scratch.tied.len())] as usize
            };
            wc_send(
                scratch,
                &mut timeline,
                params,
                rule,
                victim,
                true,
                arrival_of,
                tracer,
                faults,
            );
            remaining_sends -= 1;
            forced_sends += 1;
            if let Some(r) = rec.as_deref_mut() {
                r.push((victim as u32) << 1 | 1);
            }
        }
        if let Some(r) = rec.as_deref_mut() {
            r.push(u32::MAX); // round boundary: the drain runs here
        }

        // Part 2: every destination performs the receive operations for the
        // messages delivered so far, in arrival order.
        wc_drain(scratch, &mut timeline, params, rule, tracer, procs);
    }

    let mut result = SimResult::new(timeline);
    result.forced_sends = forced_sends;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::ValidateOptions;
    use crate::{patterns, standard};
    use loggp::presets;

    fn meiko_cfg(procs: usize) -> SimConfig {
        SimConfig::new(presets::meiko_cs2(procs))
    }

    fn check(pattern: &CommPattern, cfg: &SimConfig, r: &SimResult) {
        // The worst-case algorithm interleaves program order across rounds,
        // so only the model constraints are checked, not send order.
        validate_with(pattern, cfg, r);
    }

    fn validate_with(pattern: &CommPattern, cfg: &SimConfig, r: &SimResult) {
        // Only the hard model constraints apply to the worst-case schedule:
        // rounds reorder sends across program order, and a message sent in a
        // later round can arrive before one received in an earlier round.
        crate::validate::validate_opts(
            pattern,
            cfg,
            &r.timeline,
            &ValidateOptions {
                check_send_program_order: false,
                check_recv_arrival_order: false,
            },
        )
        .unwrap();
    }

    #[test]
    fn single_message_same_as_standard() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1100);
        let cfg = meiko_cfg(2);
        let wc = simulate(&pattern, &cfg);
        let st = standard::simulate(&pattern, &cfg);
        assert_eq!(wc.finish, st.finish);
        assert_eq!(wc.forced_sends, 0);
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn chain_waits_for_upstream() {
        // 0 -> 1 -> 2: processor 1 must receive before sending, so the step
        // takes two full message times (minus no overlap at P1).
        let mut pattern = CommPattern::new(3);
        pattern.add(0, 1, 1);
        pattern.add(1, 2, 1);
        let cfg = meiko_cfg(3);
        let wc = simulate(&pattern, &cfg);
        let msg = cfg.params.message_cost(1);
        // Receive at P1 ends at msg; P1's send starts >= recv.start + g,
        // and its message needs o + L + o more.
        let recv1_start = cfg.params.arrival_time(Time::ZERO, 1);
        let send1_start = recv1_start + cfg.params.gap;
        assert_eq!(wc.finish, send1_start + msg);
        assert_eq!(wc.forced_sends, 0);
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn worst_case_never_faster_than_standard_on_dags() {
        let cfg = meiko_cfg(10);
        let pattern = patterns::figure3();
        let wc = simulate(&pattern, &cfg);
        let st = standard::simulate(&pattern, &cfg);
        assert!(
            wc.finish >= st.finish,
            "wc {} < std {}",
            wc.finish,
            st.finish
        );
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn ring_deadlock_is_broken() {
        let n = 6;
        let pattern = patterns::ring(n, 256);
        assert!(pattern.has_cycle());
        let cfg = meiko_cfg(n);
        let wc = simulate(&pattern, &cfg);
        assert!(wc.forced_sends >= 1, "cycle must force at least one send");
        assert_eq!(wc.timeline.len(), 2 * pattern.len());
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn forced_sends_deterministic_per_seed() {
        let pattern = patterns::ring(5, 64);
        let cfg = meiko_cfg(5).with_seed(7);
        let a = simulate(&pattern, &cfg);
        let b = simulate(&pattern, &cfg);
        assert_eq!(a.timeline.events(), b.timeline.events());
        assert_eq!(a.forced_sends, b.forced_sends);
    }

    #[test]
    fn all_messages_accounted_for() {
        let pattern = patterns::all_to_all(4, 128);
        let cfg = meiko_cfg(4);
        let wc = simulate(&pattern, &cfg);
        // all-to-all is cyclic: every processor waits on every other.
        assert!(wc.forced_sends > 0);
        assert_eq!(wc.timeline.len(), 2 * pattern.network_messages().count());
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn ready_times_respected() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        let cfg = meiko_cfg(2);
        let delay = Time::from_us(50.0);
        let wc = simulate_from(&pattern, &cfg, &[delay, Time::ZERO]);
        assert_eq!(wc.timeline.events_for(0)[0].start, delay);
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn empty_pattern() {
        let pattern = CommPattern::new(3);
        let cfg = meiko_cfg(3);
        let wc = simulate(&pattern, &cfg);
        assert_eq!(wc.finish, Time::ZERO);
        assert_eq!(wc.forced_sends, 0);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let cfg = meiko_cfg(8).with_seed(11);
        let mut scratch = SimScratch::new();
        for pattern in [
            patterns::ring(8, 256),
            patterns::all_to_all(8, 64),
            patterns::ring(8, 1024),
        ] {
            let reused = simulate_from_scratch(&pattern, &cfg, &[Time::ZERO; 8], &mut scratch);
            let fresh = simulate(&pattern, &cfg);
            assert_eq!(reused.timeline.events(), fresh.timeline.events());
            assert_eq!(reused.forced_sends, fresh.forced_sends);
        }
    }

    #[test]
    fn misbehaving_arrival_hook_is_clamped_not_unsound() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 4096);
        let cfg = meiko_cfg(2);
        let r = simulate_hooked(&pattern, &cfg, &[Time::ZERO; 2], &mut |_m, _start| {
            Time::ZERO
        });
        let send = r.timeline.events_for(0)[0];
        let recv = r.timeline.events_for(1)[0];
        assert_eq!(recv.start, send.start + cfg.params.overhead);
    }
}
