//! The overestimation ("worst-case") simulation algorithm (paper §4.2).
//!
//! To bound the communication time from above, each processor first waits
//! for **all** the messages it has to receive and only afterwards starts
//! transmitting its own. The algorithm proceeds in rounds: in the first part
//! of a round, every processor whose receive counter has reached zero sends
//! all of its messages; in the second part, every destination performs the
//! corresponding receive operations (in arrival order, under the gap rule).
//!
//! A processor inside a cycle of the pattern would wait forever, so on a
//! round in which no processor may send and messages remain, the algorithm
//! "performs randomly some message transmissions in order to break the
//! deadlock": one pending message from a randomly chosen blocked processor
//! is forced out. The number of forced transmissions is reported in
//! [`SimResult::forced_sends`].
//!
//! The paper notes this schedule "cannot take place in real execution"
//! (processors usually do not know how many messages to expect); it exists
//! purely to overestimate.

use crate::faults::{transmit, StepFaults};
use crate::observe::StepTracer;
use crate::pattern::{CommPattern, Message};
use crate::timeline::{CommEvent, SimResult, Timeline};
use crate::SimConfig;
use loggp::{OpKind, ProcClock, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

struct ProcState {
    clock: ProcClock,
    send_queue: VecDeque<Message>,
    /// Messages sent to this processor but not yet received, with arrivals.
    inbox: Vec<(Time, Message)>,
    /// Network messages this processor still has to *receive* before it is
    /// allowed to send ("messages to receive" counter).
    to_recv: usize,
}

/// Simulate one communication step with the overestimation algorithm.
pub fn simulate(pattern: &CommPattern, cfg: &SimConfig) -> SimResult {
    simulate_from(pattern, cfg, &vec![Time::ZERO; pattern.procs()])
}

/// [`simulate`] with per-processor earliest communication times (processors
/// enter the step when their computation phase ends).
pub fn simulate_from(pattern: &CommPattern, cfg: &SimConfig, ready: &[Time]) -> SimResult {
    let params = cfg.params;
    simulate_hooked(pattern, cfg, ready, &mut |m, start| {
        params.arrival_time(start, m.bytes)
    })
}

/// [`simulate_from`] with a custom arrival model (see
/// [`crate::standard::simulate_hooked`] for the contract).
pub fn simulate_hooked(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
) -> SimResult {
    simulate_traced(pattern, cfg, ready, arrival_of, None)
}

/// [`simulate_hooked`] with an optional [`StepTracer`] observing every
/// committed operation; forced (deadlock-breaking) transmissions are
/// flagged on their send events. Tracing never changes the timeline.
pub fn simulate_traced(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
) -> SimResult {
    simulate_faulted(pattern, cfg, ready, arrival_of, tracer, None)
}

/// [`simulate_traced`] under an optional fault model (the same contract as
/// [`crate::standard::simulate_faulted`]): message drops and charged
/// retransmissions per [`StepFaults`], decided identically to the standard
/// algorithm so the overestimation bound holds under faults.
// Indices double as processor ids throughout.
#[allow(clippy::needless_range_loop)]
pub fn simulate_faulted(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) -> SimResult {
    assert_eq!(ready.len(), pattern.procs(), "one ready time per processor");
    let params = &cfg.params;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let recv_counts = pattern.recv_counts();
    let mut procs: Vec<ProcState> = pattern
        .send_queues()
        .into_iter()
        .zip(ready)
        .zip(&recv_counts)
        .map(|((send_queue, &r), &to_recv)| {
            let mut clock = ProcClock::new();
            clock.advance_to(r);
            ProcState {
                clock,
                send_queue,
                inbox: Vec::new(),
                to_recv,
            }
        })
        .collect();

    let mut timeline = Timeline::new(pattern.procs());
    let mut forced_sends = 0usize;

    let send_msg = |procs: &mut Vec<ProcState>,
                    timeline: &mut Timeline,
                    p: usize,
                    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
                    forced: bool| {
        let msg = procs[p]
            .send_queue
            .pop_front()
            .expect("send queue non-empty");
        let final_start = transmit(
            &mut procs[p].clock,
            params,
            cfg.gap_rule,
            p,
            &msg,
            forced,
            faults,
            tracer,
            timeline,
        );
        let arrival = arrival_of(&msg, final_start);
        debug_assert!(
            arrival >= final_start + params.overhead,
            "arrival precedes send"
        );
        procs[msg.dst].inbox.push((arrival, msg));
    };

    loop {
        let sends_remain = procs.iter().any(|p| !p.send_queue.is_empty());
        let recvs_remain = procs.iter().any(|p| !p.inbox.is_empty());
        if !sends_remain && !recvs_remain {
            break;
        }

        // Part 1: every processor that has received everything it expects
        // sends all of its messages.
        let eligible: Vec<usize> = (0..procs.len())
            .filter(|&p| procs[p].to_recv == 0 && !procs[p].send_queue.is_empty())
            .collect();

        if !eligible.is_empty() {
            for p in eligible {
                while !procs[p].send_queue.is_empty() {
                    send_msg(&mut procs, &mut timeline, p, arrival_of, false);
                }
            }
        } else if recvs_remain {
            // Nothing to send yet but deliveries are pending; fall through
            // to part 2 so the waiting processors can make progress.
        } else {
            // Deadlock: messages remain but every would-be sender is still
            // waiting on a cycle. Force one transmission from a randomly
            // chosen blocked processor.
            let blocked: Vec<usize> = (0..procs.len())
                .filter(|&p| !procs[p].send_queue.is_empty())
                .collect();
            debug_assert!(!blocked.is_empty());
            let victim = blocked[rng.gen_range(0..blocked.len())];
            send_msg(&mut procs, &mut timeline, victim, arrival_of, true);
            forced_sends += 1;
        }

        // Part 2: every destination performs the receive operations for the
        // messages delivered so far, in arrival order.
        for p in 0..procs.len() {
            if procs[p].inbox.is_empty() {
                continue;
            }
            procs[p]
                .inbox
                .sort_by_key(|(arrival, msg)| (*arrival, msg.id));
            for (arrival, msg) in std::mem::take(&mut procs[p].inbox) {
                let start =
                    procs[p]
                        .clock
                        .earliest_start_kind(params, cfg.gap_rule, OpKind::Recv, arrival);
                let end = procs[p]
                    .clock
                    .commit_kind(params, cfg.gap_rule, OpKind::Recv, start);
                let event = CommEvent {
                    proc: p,
                    kind: OpKind::Recv,
                    peer: msg.src,
                    bytes: msg.bytes,
                    msg_id: msg.id,
                    start,
                    end,
                };
                if let Some(t) = tracer {
                    t.recv(&event, arrival, false);
                }
                timeline.push(event);
                procs[p].to_recv -= 1;
            }
        }
    }

    let mut result = SimResult::new(timeline);
    result.forced_sends = forced_sends;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::ValidateOptions;
    use crate::{patterns, standard};
    use loggp::presets;

    fn meiko_cfg(procs: usize) -> SimConfig {
        SimConfig::new(presets::meiko_cs2(procs))
    }

    fn check(pattern: &CommPattern, cfg: &SimConfig, r: &SimResult) {
        // The worst-case algorithm interleaves program order across rounds,
        // so only the model constraints are checked, not send order.
        validate_with(pattern, cfg, r);
    }

    fn validate_with(pattern: &CommPattern, cfg: &SimConfig, r: &SimResult) {
        // Only the hard model constraints apply to the worst-case schedule:
        // rounds reorder sends across program order, and a message sent in a
        // later round can arrive before one received in an earlier round.
        crate::validate::validate_opts(
            pattern,
            cfg,
            &r.timeline,
            &ValidateOptions {
                check_send_program_order: false,
                check_recv_arrival_order: false,
            },
        )
        .unwrap();
    }

    #[test]
    fn single_message_same_as_standard() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1100);
        let cfg = meiko_cfg(2);
        let wc = simulate(&pattern, &cfg);
        let st = standard::simulate(&pattern, &cfg);
        assert_eq!(wc.finish, st.finish);
        assert_eq!(wc.forced_sends, 0);
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn chain_waits_for_upstream() {
        // 0 -> 1 -> 2: processor 1 must receive before sending, so the step
        // takes two full message times (minus no overlap at P1).
        let mut pattern = CommPattern::new(3);
        pattern.add(0, 1, 1);
        pattern.add(1, 2, 1);
        let cfg = meiko_cfg(3);
        let wc = simulate(&pattern, &cfg);
        let msg = cfg.params.message_cost(1);
        // Receive at P1 ends at msg; P1's send starts >= recv.start + g,
        // and its message needs o + L + o more.
        let recv1_start = cfg.params.arrival_time(Time::ZERO, 1);
        let send1_start = recv1_start + cfg.params.gap;
        assert_eq!(wc.finish, send1_start + msg);
        assert_eq!(wc.forced_sends, 0);
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn worst_case_never_faster_than_standard_on_dags() {
        let cfg = meiko_cfg(10);
        let pattern = patterns::figure3();
        let wc = simulate(&pattern, &cfg);
        let st = standard::simulate(&pattern, &cfg);
        assert!(
            wc.finish >= st.finish,
            "wc {} < std {}",
            wc.finish,
            st.finish
        );
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn ring_deadlock_is_broken() {
        let n = 6;
        let pattern = patterns::ring(n, 256);
        assert!(pattern.has_cycle());
        let cfg = meiko_cfg(n);
        let wc = simulate(&pattern, &cfg);
        assert!(wc.forced_sends >= 1, "cycle must force at least one send");
        assert_eq!(wc.timeline.len(), 2 * pattern.len());
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn forced_sends_deterministic_per_seed() {
        let pattern = patterns::ring(5, 64);
        let cfg = meiko_cfg(5).with_seed(7);
        let a = simulate(&pattern, &cfg);
        let b = simulate(&pattern, &cfg);
        assert_eq!(a.timeline.events(), b.timeline.events());
        assert_eq!(a.forced_sends, b.forced_sends);
    }

    #[test]
    fn all_messages_accounted_for() {
        let pattern = patterns::all_to_all(4, 128);
        let cfg = meiko_cfg(4);
        let wc = simulate(&pattern, &cfg);
        // all-to-all is cyclic: every processor waits on every other.
        assert!(wc.forced_sends > 0);
        assert_eq!(wc.timeline.len(), 2 * pattern.network_messages().count());
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn ready_times_respected() {
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        let cfg = meiko_cfg(2);
        let delay = Time::from_us(50.0);
        let wc = simulate_from(&pattern, &cfg, &[delay, Time::ZERO]);
        assert_eq!(wc.timeline.events_for(0)[0].start, delay);
        check(&pattern, &cfg, &wc);
    }

    #[test]
    fn empty_pattern() {
        let pattern = CommPattern::new(3);
        let cfg = meiko_cfg(3);
        let wc = simulate(&pattern, &cfg);
        assert_eq!(wc.finish, Time::ZERO);
        assert_eq!(wc.forced_sends, 0);
    }
}
