//! Fault hooks for the step simulators.
//!
//! A [`StepFaults`] implementation decides, per message, how many times the
//! network drops it before a transmission gets through, and how long the
//! sender's retransmission timeout is for each dropped attempt. The decision
//! must be a pure function of the message (and whatever seed the
//! implementation carries) — in particular it must not depend on virtual
//! time — so that the standard and the worst-case algorithm see *identical*
//! fault decisions and the overestimation bound survives fault injection.
//!
//! Retransmissions are charged in LogGP terms: every attempt occupies the
//! sender like an ordinary send (`o` of CPU, `g` of port back-pressure) and
//! only the final attempt's start time feeds the arrival model, so the
//! delivered message still pays its `o + (k−1)G + L` wire time. Between a
//! dropped attempt and its resend the sender waits out the retransmission
//! timeout: attempt `i+1` starts at
//! `max(port_ready, attempt_i_start + rto(i))`.
//!
//! The sender is modelled as *blocking* on the unacknowledged message — it
//! performs no other operation between the first attempt and the final one.
//! That slightly overestimates a pipelined NIC, which is the right direction
//! for a prediction tool, and keeps both algorithms' schedules deterministic.

use crate::observe::StepTracer;
use crate::pattern::Message;
use crate::timeline::{CommEvent, Timeline};
use loggp::{GapRule, LogGpParams, OpKind, ProcClock, Time};

/// Per-step fault decisions consulted by the simulation algorithms.
pub trait StepFaults {
    /// Total number of transmission attempts for `msg`, at least 1; the
    /// network drops every attempt but the last.
    fn attempts(&self, msg: &Message) -> u32;

    /// Retransmission timeout armed after the given (zero-based) dropped
    /// attempt; the resend starts no earlier than the dropped attempt's
    /// start plus this timeout.
    fn rto(&self, attempt: u32) -> Time;
}

/// Commit every transmission attempt of `msg` at `proc`'s clock and record
/// them on the timeline; returns the start time of the *final* (delivered)
/// attempt, which the caller feeds to its arrival model.
#[allow(clippy::too_many_arguments)]
pub(crate) fn transmit(
    clock: &mut ProcClock,
    params: &LogGpParams,
    rule: GapRule,
    proc: usize,
    msg: &Message,
    forced: bool,
    faults: Option<&dyn StepFaults>,
    tracer: Option<&StepTracer<'_>>,
    timeline: &mut Timeline,
) -> Time {
    let attempts = faults.map(|f| f.attempts(msg).max(1)).unwrap_or(1);
    let mut start = clock.ready_at_kind(params, rule, OpKind::Send);
    let mut end = clock.commit_kind(params, rule, OpKind::Send, start);
    let mut event = CommEvent {
        proc,
        kind: OpKind::Send,
        peer: msg.dst,
        bytes: msg.bytes,
        msg_id: msg.id,
        start,
        end,
    };
    if let Some(t) = tracer {
        t.send(&event, forced);
    }
    timeline.push(event);
    for attempt in 1..attempts {
        let rto = faults
            .expect("attempts > 1 implies a fault plan")
            .rto(attempt - 1);
        if let Some(t) = tracer {
            t.dropped(&event, (attempt - 1) as u64);
        }
        let port_ready = clock.ready_at_kind(params, rule, OpKind::Send);
        start = port_ready.max(start.saturating_add(rto));
        end = clock.commit_kind(params, rule, OpKind::Send, start);
        event = CommEvent {
            start,
            end,
            ..event
        };
        if let Some(t) = tracer {
            t.retransmit(&event, attempt as u64, rto);
        }
        timeline.push(event);
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;
    use loggp::presets;
    use predsim_obs::{MemorySink, TraceEvent};

    /// Every message is dropped `drops` times, fixed timeout.
    struct FixedDrops {
        drops: u32,
        rto: Time,
    }

    impl StepFaults for FixedDrops {
        fn attempts(&self, _msg: &Message) -> u32 {
            self.drops + 1
        }
        fn rto(&self, _attempt: u32) -> Time {
            self.rto
        }
    }

    #[test]
    fn retransmissions_wait_out_the_timeout_and_occupy_the_port() {
        let params = presets::meiko_cs2(2);
        let rto = Time::from_us(200.0);
        let faults = FixedDrops { drops: 2, rto };
        let sink = MemorySink::new();
        let tracer = StepTracer::new(&sink, 0);
        let mut clock = ProcClock::new();
        let mut timeline = Timeline::new(2);
        let msg = Message {
            id: 0,
            src: 0,
            dst: 1,
            bytes: 64,
        };
        let final_start = transmit(
            &mut clock,
            &params,
            GapRule::Extended,
            0,
            &msg,
            false,
            Some(&faults),
            Some(&tracer),
            &mut timeline,
        );
        // Attempt 0 at t=0; attempt 1 at max(g, 0 + rto) = rto; attempt 2
        // at max(rto + g, rto + rto) = 2*rto (rto >> g on this machine).
        assert_eq!(final_start, rto + rto);
        assert_eq!(timeline.len(), 3);
        let events = sink.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec!["send", "drop", "retransmit", "drop", "retransmit"]
        );
        assert!(matches!(
            events[2],
            TraceEvent::Retransmit {
                attempt: 1,
                rto_ps,
                ..
            } if rto_ps == rto.as_ps()
        ));
        // The port is busy until the final attempt.
        assert_eq!(
            clock.ready_at_kind(&params, GapRule::Extended, OpKind::Send),
            final_start + params.gap.max(params.overhead)
        );
    }

    #[test]
    fn no_faults_is_a_plain_send() {
        let params = presets::meiko_cs2(2);
        let mut clock = ProcClock::new();
        let mut timeline = Timeline::new(2);
        let msg = Message {
            id: 3,
            src: 0,
            dst: 1,
            bytes: 8,
        };
        let start = transmit(
            &mut clock,
            &params,
            GapRule::Extended,
            0,
            &msg,
            false,
            None,
            None,
            &mut timeline,
        );
        assert_eq!(start, Time::ZERO);
        assert_eq!(timeline.len(), 1);
    }
}
