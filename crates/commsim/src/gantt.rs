//! ASCII Gantt rendering of timelines — the paper's Figures 4 and 5.
//!
//! Each processor gets one row; time flows left to right. A send overhead
//! is drawn with `S`, a receive overhead with `R` (capitalized at the
//! column where the operation starts, with the peer's number when it
//! fits), idle time with `.`. A scale line in microseconds is printed
//! underneath.

use crate::timeline::Timeline;
use loggp::{OpKind, Time};
use std::fmt::Write as _;

/// Render `timeline` as an ASCII Gantt chart `width` characters wide
/// (width counts the plot area only, not the row labels).
pub fn render(timeline: &Timeline, width: usize) -> String {
    let width = width.max(10);
    let finish = timeline.completion();
    let mut out = String::new();
    if finish.is_zero() {
        out.push_str("(empty timeline)\n");
        return out;
    }
    let ps_per_col = (finish.as_ps() as f64 / width as f64).max(1.0);
    let col =
        |t: Time| -> usize { ((t.as_ps() as f64 / ps_per_col).floor() as usize).min(width - 1) };

    for (proc, evs) in timeline.sorted_by_proc().into_iter().enumerate() {
        if evs.is_empty() {
            continue;
        }
        let mut row = vec!['.'; width];
        for e in &evs {
            let c0 = col(e.start);
            let c1 = col(e.end).max(c0);
            let fill = match e.kind {
                OpKind::Send => 's',
                OpKind::Recv => 'r',
            };
            for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                *cell = fill;
            }
            // Capitalize the start and, when it fits, append the peer id.
            row[c0] = fill.to_ascii_uppercase();
            let peer = e.peer.to_string();
            if c0 + peer.len() < c1 {
                for (i, ch) in peer.chars().enumerate() {
                    row[c0 + 1 + i] = ch;
                }
            }
        }
        let _ = writeln!(out, "P{proc:<2} |{}|", row.iter().collect::<String>());
    }

    // Time scale: a tick every ~10 columns.
    let mut scale = vec![' '; width];
    let mut labels = String::new();
    let tick_every = (width / 8).max(1);
    let mut cursor = 0usize;
    for c in (0..width).step_by(tick_every) {
        scale[c] = '+';
        let t_us = (c as f64 * ps_per_col) / 1e6;
        let label = format!("{t_us:.0}");
        if c >= cursor {
            while labels.len() < c {
                labels.push(' ');
            }
            labels.push_str(&label);
            cursor = c + label.len() + 1;
        }
    }
    let _ = writeln!(out, "    |{}|", scale.iter().collect::<String>());
    let _ = writeln!(out, "     {labels}  (us)");
    let _ = writeln!(out, "completion: {finish}");
    out
}

/// A plain event table (one line per operation, chronological per
/// processor) — the precise companion of the chart.
pub fn event_table(timeline: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<5} {:<5} {:<5} {:>8} {:>12} {:>12}",
        "proc", "op", "peer", "bytes", "start", "end"
    );
    for evs in timeline.sorted_by_proc() {
        for e in evs {
            let _ = writeln!(
                out,
                "P{:<4} {:<5} P{:<4} {:>8} {:>12} {:>12}",
                e.proc,
                e.kind.label(),
                e.peer,
                e.bytes,
                format!("{}", e.start),
                format!("{}", e.end),
            );
        }
    }
    out
}

/// Render `timeline` as a standalone SVG document (one row per
/// processor, sends in one colour, receives in another, a µs axis along
/// the bottom). Suitable for embedding figure-4/5-style charts in docs.
pub fn render_svg(timeline: &Timeline, width_px: usize) -> String {
    const ROW_H: usize = 22;
    const BAR_H: usize = 16;
    const LEFT: usize = 46;
    const BOTTOM: usize = 30;
    let width_px = width_px.max(120);
    let finish = timeline.completion();
    let procs = timeline.procs();
    let height = procs * ROW_H + BOTTOM + 8;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{height}" font-family="monospace" font-size="11">"#,
        w = width_px + LEFT + 8
    );
    let _ = writeln!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);
    if finish.is_zero() {
        let _ = writeln!(s, r#"<text x="10" y="20">(empty timeline)</text></svg>"#);
        return s;
    }
    let x_of = |t: Time| LEFT as f64 + t.as_ps() as f64 / finish.as_ps() as f64 * width_px as f64;

    for (proc, evs) in timeline.sorted_by_proc().into_iter().enumerate() {
        let y = proc * ROW_H + 4;
        let _ = writeln!(
            s,
            r#"<text x="4" y="{ty}">P{proc}</text>"#,
            ty = y + BAR_H - 3
        );
        for e in evs {
            let x0 = x_of(e.start);
            let x1 = x_of(e.end);
            let fill = match e.kind {
                OpKind::Send => "#4878a8",
                OpKind::Recv => "#a85448",
            };
            let _ = writeln!(
                s,
                r#"<rect x="{x0:.1}" y="{y}" width="{w:.1}" height="{BAR_H}" fill="{fill}"><title>P{p} {kind} msg {id} ({bytes}B) {start}-{end}</title></rect>"#,
                w = (x1 - x0).max(1.0),
                p = e.proc,
                kind = e.kind.label(),
                id = e.msg_id,
                bytes = e.bytes,
                start = e.start,
                end = e.end,
            );
        }
    }
    // Axis.
    let axis_y = procs * ROW_H + 12;
    let _ = writeln!(
        s,
        r#"<line x1="{LEFT}" y1="{axis_y}" x2="{x2}" y2="{axis_y}" stroke="black"/>"#,
        x2 = LEFT + width_px
    );
    for i in 0..=8 {
        let t = Time::from_ps(finish.as_ps() * i / 8);
        let x = x_of(t);
        let _ = writeln!(
            s,
            r#"<line x1="{x:.1}" y1="{axis_y}" x2="{x:.1}" y2="{y2}" stroke="black"/><text x="{x:.1}" y="{ty}" text-anchor="middle">{label:.0}</text>"#,
            y2 = axis_y + 4,
            ty = axis_y + 16,
            label = t.as_us_f64(),
        );
    }
    let _ = writeln!(
        s,
        r#"<text x="{x}" y="{y}" text-anchor="end">us</text></svg>"#,
        x = LEFT + width_px,
        y = axis_y + 16 + 12
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{patterns, standard, SimConfig};
    use loggp::presets;

    #[test]
    fn renders_figure4_like_chart() {
        let pattern = patterns::figure3();
        let cfg = SimConfig::new(presets::meiko_cs2(10));
        let r = standard::simulate(&pattern, &cfg);
        let chart = render(&r.timeline, 100);
        // Every participating processor has a row.
        for p in pattern.active_procs() {
            assert!(chart.contains(&format!("P{p}")), "{chart}");
        }
        assert!(chart.contains("completion:"));
        assert!(chart.contains('S') && chart.contains('R'), "{chart}");
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let t = Timeline::new(4);
        assert!(render(&t, 80).contains("empty"));
    }

    #[test]
    fn event_table_lists_all_events() {
        let pattern = patterns::figure3();
        let cfg = SimConfig::new(presets::meiko_cs2(10));
        let r = standard::simulate(&pattern, &cfg);
        let table = event_table(&r.timeline);
        // Header + one line per event.
        assert_eq!(table.lines().count(), 1 + r.timeline.len());
    }

    #[test]
    fn svg_contains_rows_and_bars() {
        let pattern = patterns::figure3();
        let cfg = SimConfig::new(presets::meiko_cs2(10));
        let r = standard::simulate(&pattern, &cfg);
        let svg = render_svg(&r.timeline, 600);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One labelled row per processor, one rect per event (+background).
        for p in 0..10 {
            assert!(svg.contains(&format!(">P{p}</text>")), "row P{p}");
        }
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + r.timeline.len());
        assert!(svg.contains("#4878a8") && svg.contains("#a85448"));
    }

    #[test]
    fn svg_empty_timeline() {
        let svg = render_svg(&Timeline::new(2), 300);
        assert!(svg.contains("empty timeline"));
        assert!(svg.ends_with("</svg>\n") || svg.contains("</svg>"));
    }

    #[test]
    fn narrow_width_is_clamped() {
        let pattern = patterns::figure3();
        let cfg = SimConfig::new(presets::meiko_cs2(10));
        let r = standard::simulate(&pattern, &cfg);
        // Must not panic even at absurd widths.
        let _ = render(&r.timeline, 0);
        let _ = render(&r.timeline, 3);
    }
}
