//! Strongly connected components of processor graphs.
//!
//! The worst-case algorithm (paper §4.2) deadlocks exactly on the cycles of
//! the per-step inter-processor message-dependence graph: a processor may
//! only send once it has received everything, so every processor inside a
//! directed cycle waits forever until a transmission is forced. This module
//! provides the shared Tarjan SCC analysis used by
//! [`CommPattern::has_cycle`](crate::CommPattern::has_cycle),
//! [`CommPattern::sccs`](crate::CommPattern::sccs) and the `predsim-lint`
//! deadlock pass.

/// Result of [`tarjan_sccs`]: the component partition of a directed graph.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// `comp_of[v]` is the index into [`SccResult::components`] of the
    /// component containing vertex `v`.
    pub comp_of: Vec<usize>,
    /// The strongly connected components; each is sorted ascending.
    /// Components appear in reverse topological order of the condensation
    /// (a component precedes the components it has edges into... reversed),
    /// but callers should not rely on inter-component order beyond
    /// determinism for a fixed input.
    pub components: Vec<Vec<usize>>,
}

impl SccResult {
    /// Components with at least two vertices — the vertices involved in at
    /// least one directed cycle (self-loops are not represented here; the
    /// processor graphs this module analyses exclude self-messages).
    pub fn nontrivial(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.components.iter().filter(|c| c.len() > 1)
    }

    /// True iff some component contains two or more vertices.
    pub fn has_nontrivial(&self) -> bool {
        self.nontrivial().next().is_some()
    }
}

/// Tarjan's strongly-connected-components algorithm, iteratively (no
/// recursion, so arbitrarily deep chains are safe). `adj[v]` lists the
/// successors of vertex `v`; vertices are `0..n` with `adj.len() == n`.
/// Duplicate edges are permitted (the processor graphs are multigraphs).
pub fn tarjan_sccs(adj: &[Vec<usize>]) -> SccResult {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n]; // discovery order
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp_of = vec![UNSET; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Explicit DFS frames: (vertex, next child position in adj[vertex]).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack non-empty");
                        on_stack[w] = false;
                        comp_of[w] = components.len();
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }

    SccResult {
        comp_of,
        components,
    }
}

/// A representative simple directed cycle inside the component `comp`
/// (which must be a nontrivial SCC of `adj`): a vertex sequence
/// `v0 -> v1 -> … -> vk -> v0` returned as `[v0, v1, …, vk]`, starting from
/// the smallest vertex on the found cycle. Deterministic for a fixed graph.
pub fn representative_cycle(adj: &[Vec<usize>], comp: &[usize]) -> Vec<usize> {
    debug_assert!(comp.len() > 1, "cycle requested of a trivial component");
    let in_comp = |v: usize| comp.binary_search(&v).is_ok();
    // Walk from the smallest member, always taking the smallest in-component
    // successor not yet visited; the first repeated vertex closes a cycle.
    let start = comp[0];
    let mut order: Vec<usize> = Vec::new();
    let mut pos_of: Vec<Option<usize>> = vec![None; adj.len()];
    let mut v = start;
    loop {
        if let Some(p) = pos_of[v] {
            // Found the cycle: order[p..] repeats.
            let mut cycle: Vec<usize> = order[p..].to_vec();
            // Rotate so the smallest vertex leads (stable presentation).
            let min_idx = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, &x)| x)
                .map(|(i, _)| i)
                .unwrap_or(0);
            cycle.rotate_left(min_idx);
            return cycle;
        }
        pos_of[v] = Some(order.len());
        order.push(v);
        // Every vertex of a nontrivial SCC has at least one in-component
        // successor. Prefer unvisited ones to lengthen the walk; otherwise
        // any visited one closes the cycle.
        let mut succs: Vec<usize> = adj[v].iter().copied().filter(|&w| in_comp(w)).collect();
        succs.sort_unstable();
        succs.dedup();
        v = succs
            .iter()
            .copied()
            .find(|&w| pos_of[w].is_none())
            .unwrap_or_else(|| succs[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comps(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let mut c: Vec<Vec<usize>> = tarjan_sccs(adj).nontrivial().cloned().collect();
        c.sort();
        c
    }

    #[test]
    fn dag_has_no_nontrivial_sccs() {
        let adj = vec![vec![1], vec![2], vec![]];
        let r = tarjan_sccs(&adj);
        assert!(!r.has_nontrivial());
        assert_eq!(r.components.len(), 3);
        // Every vertex is its own component.
        for v in 0..3 {
            assert_eq!(r.components[r.comp_of[v]], vec![v]);
        }
    }

    #[test]
    fn ring_is_one_scc() {
        let adj = vec![vec![1], vec![2], vec![0]];
        assert_eq!(comps(&adj), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_disjoint_cycles() {
        // 0<->1 and 2->3->4->2, plus a bridge 1->2 (no cycle across).
        let adj = vec![vec![1], vec![0, 2], vec![3], vec![4], vec![2]];
        assert_eq!(comps(&adj), vec![vec![0, 1], vec![2, 3, 4]]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let n = 200_000;
        let mut adj: Vec<Vec<usize>> = (0..n - 1).map(|v| vec![v + 1]).collect();
        adj.push(vec![0]); // close the giant ring
        let r = tarjan_sccs(&adj);
        assert_eq!(r.components.len(), 1);
        assert_eq!(r.components[0].len(), n);
    }

    #[test]
    fn representative_cycle_is_a_real_cycle() {
        let adj = vec![vec![1], vec![2, 0], vec![0], vec![]];
        let r = tarjan_sccs(&adj);
        let comp = r.nontrivial().next().unwrap();
        let cyc = representative_cycle(&adj, comp);
        assert!(cyc.len() >= 2);
        // Every consecutive pair (and the closing pair) is an edge.
        for i in 0..cyc.len() {
            let (a, b) = (cyc[i], cyc[(i + 1) % cyc.len()]);
            assert!(adj[a].contains(&b), "{a}->{b} missing in {cyc:?}");
        }
        assert_eq!(cyc[0], *cyc.iter().min().unwrap());
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let adj = vec![vec![1, 1, 1], vec![0, 0]];
        assert_eq!(comps(&adj), vec![vec![0, 1]]);
    }
}
