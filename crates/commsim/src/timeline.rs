//! Timelines: the output of the simulation algorithms.

use loggp::{OpKind, Time};
use std::collections::BTreeMap;

/// One committed send or receive operation at a processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommEvent {
    /// Processor performing the operation.
    pub proc: usize,
    /// Send or receive.
    pub kind: OpKind,
    /// The other endpoint of the message.
    pub peer: usize,
    /// Message length in bytes.
    pub bytes: usize,
    /// Identifier of the message within the input pattern.
    pub msg_id: usize,
    /// When the operation starts occupying the CPU.
    pub start: Time,
    /// When the CPU is released (`start + o`).
    pub end: Time,
}

/// The full schedule of send/receive operations produced by a simulation.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    procs: usize,
    events: Vec<CommEvent>,
}

impl Timeline {
    /// An empty timeline over `procs` processors.
    pub fn new(procs: usize) -> Self {
        Timeline {
            procs,
            events: Vec::new(),
        }
    }

    /// Append an event (events are recorded in commit order; use
    /// [`Timeline::sorted_by_proc`] for per-processor chronological views).
    ///
    /// # Panics
    ///
    /// If the event references a processor outside this timeline — a real
    /// check, not a `debug_assert!`, so a misbehaving simulator or arrival
    /// hook cannot silently produce an out-of-range schedule in release
    /// builds (downstream per-processor indexing would be unsound).
    pub fn push(&mut self, ev: CommEvent) {
        assert!(
            ev.proc < self.procs && ev.peer < self.procs,
            "event references processor out of range (proc {} / peer {} of {})",
            ev.proc,
            ev.peer,
            self.procs
        );
        self.events.push(ev);
    }

    /// Pre-allocate room for `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// All events, in the order they were committed by the simulator.
    pub fn events(&self) -> &[CommEvent] {
        &self.events
    }

    /// Events of one processor, chronologically.
    ///
    /// This scans the whole timeline (O(E)); callers that need *every*
    /// processor's view must use [`Timeline::sorted_by_proc`] once instead
    /// of looping this per processor (O(E·P)).
    pub fn events_for(&self, proc: usize) -> Vec<CommEvent> {
        let mut evs: Vec<CommEvent> = self
            .events
            .iter()
            .filter(|e| e.proc == proc)
            .copied()
            .collect();
        evs.sort_by_key(|e| (e.start, e.end, e.msg_id));
        evs
    }

    /// All events grouped per processor, chronologically. One pass over
    /// the timeline (a counting pass sizes each bucket exactly, so no
    /// bucket ever reallocates), then one sort per processor.
    pub fn sorted_by_proc(&self) -> Vec<Vec<CommEvent>> {
        let mut counts = vec![0usize; self.procs];
        for e in &self.events {
            counts[e.proc] += 1;
        }
        let mut per: Vec<Vec<CommEvent>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for e in &self.events {
            per[e.proc].push(*e);
        }
        for evs in &mut per {
            evs.sort_by_key(|e| (e.start, e.end, e.msg_id));
        }
        per
    }

    /// The time the last operation of the whole step completes — the
    /// communication step's running time.
    pub fn completion(&self) -> Time {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The time each processor finishes its last operation.
    pub fn per_proc_completion(&self) -> Vec<Time> {
        let mut done = vec![Time::ZERO; self.procs];
        for e in &self.events {
            done[e.proc] = done[e.proc].max(e.end);
        }
        done
    }

    /// Processors that finish *last* (the critical processors; the paper
    /// names them when discussing Figures 4 and 5).
    pub fn critical_procs(&self) -> Vec<usize> {
        let finish = self.completion();
        let per = self.per_proc_completion();
        (0..self.procs)
            .filter(|&p| per[p] == finish && !finish.is_zero())
            .collect()
    }

    /// Total CPU time processor `proc` spends inside send/receive overhead.
    pub fn busy_time(&self, proc: usize) -> Time {
        self.events
            .iter()
            .filter(|e| e.proc == proc)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// For every message id, its `(send event, receive event)` pair, if the
    /// timeline contains both. Keyed by a `BTreeMap` so iteration order is
    /// the message-id order — validation diagnostics and stats that walk
    /// the pairs are deterministic across runs (a `HashMap` here made
    /// error ordering depend on hash-seed iteration order).
    pub fn message_pairs(&self) -> BTreeMap<usize, (Option<CommEvent>, Option<CommEvent>)> {
        let mut map: BTreeMap<usize, (Option<CommEvent>, Option<CommEvent>)> = BTreeMap::new();
        for e in &self.events {
            let entry = map.entry(e.msg_id).or_default();
            match e.kind {
                OpKind::Send => entry.0 = Some(*e),
                OpKind::Recv => entry.1 = Some(*e),
            }
        }
        map
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A simulation result: the timeline plus its completion time.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The committed operation schedule.
    pub timeline: Timeline,
    /// `timeline.completion()`, cached.
    pub finish: Time,
    /// Number of deadlocks the worst-case algorithm had to break by forcing
    /// a transmission (always 0 for the standard algorithm and for acyclic
    /// patterns).
    pub forced_sends: usize,
}

impl SimResult {
    /// Wrap a finished timeline.
    pub fn new(timeline: Timeline) -> Self {
        let finish = timeline.completion();
        SimResult {
            timeline,
            finish,
            forced_sends: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(proc: usize, kind: OpKind, start_us: f64, end_us: f64, msg_id: usize) -> CommEvent {
        CommEvent {
            proc,
            kind,
            peer: 0,
            bytes: 1,
            msg_id,
            start: Time::from_us(start_us),
            end: Time::from_us(end_us),
        }
    }

    #[test]
    fn completion_and_critical() {
        let mut t = Timeline::new(3);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        t.push(ev(1, OpKind::Recv, 40.0, 46.0, 0));
        t.push(ev(2, OpKind::Recv, 44.0, 46.0, 1));
        assert_eq!(t.completion(), Time::from_us(46.0));
        assert_eq!(t.critical_procs(), vec![1, 2]);
        assert_eq!(
            t.per_proc_completion(),
            vec![Time::from_us(6.0), Time::from_us(46.0), Time::from_us(46.0)]
        );
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new(2);
        assert_eq!(t.completion(), Time::ZERO);
        assert!(t.critical_procs().is_empty());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn busy_time_sums_overheads() {
        let mut t = Timeline::new(1);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        t.push(ev(0, OpKind::Recv, 16.0, 22.0, 1));
        assert_eq!(t.busy_time(0), Time::from_us(12.0));
    }

    #[test]
    fn events_for_sorts_chronologically() {
        let mut t = Timeline::new(1);
        t.push(ev(0, OpKind::Recv, 16.0, 22.0, 1));
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        let evs = t.events_for(0);
        assert_eq!(evs[0].msg_id, 0);
        assert_eq!(evs[1].msg_id, 1);
    }

    #[test]
    fn message_pairs_joins_send_and_recv() {
        let mut t = Timeline::new(2);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 7));
        t.push(ev(1, OpKind::Recv, 40.0, 46.0, 7));
        let pairs = t.message_pairs();
        let (s, r) = pairs[&7];
        assert_eq!(s.unwrap().proc, 0);
        assert_eq!(r.unwrap().proc, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_proc_in_release_too() {
        let mut t = Timeline::new(2);
        t.push(ev(5, OpKind::Send, 0.0, 1.0, 0));
    }

    #[test]
    fn message_pairs_iterates_in_msg_id_order() {
        let mut t = Timeline::new(2);
        for id in [9usize, 3, 7, 1, 5] {
            t.push(ev(0, OpKind::Send, id as f64, id as f64 + 1.0, id));
            t.push(ev(1, OpKind::Recv, id as f64 + 2.0, id as f64 + 3.0, id));
        }
        let ids: Vec<usize> = t.message_pairs().keys().copied().collect();
        assert_eq!(ids, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn sorted_by_proc_matches_per_proc_events_for() {
        let mut t = Timeline::new(4);
        for i in 0..40 {
            t.push(ev(i % 4, OpKind::Send, (40 - i) as f64, (41 - i) as f64, i));
        }
        let grouped = t.sorted_by_proc();
        assert_eq!(grouped.len(), 4);
        for (p, group) in grouped.iter().enumerate() {
            assert_eq!(group, &t.events_for(p));
        }
    }

    #[test]
    fn sorted_by_proc_is_single_pass_on_large_all_to_all() {
        // Perf-shaped regression: on an all-to-all-sized timeline (every
        // processor pair exchanges a message) the grouped view must be
        // built in one pass with exactly-sized buckets — the counting pass
        // reserves each bucket to its final length, so no bucket ever
        // reallocates. Looping `events_for` over all processors here would
        // be O(E·P); `sorted_by_proc` stays O(E + Σ sort).
        let procs = 128;
        let mut t = Timeline::new(procs);
        let mut id = 0usize;
        for src in 0..procs {
            for dst in 0..procs {
                if src == dst {
                    continue;
                }
                t.push(ev(src, OpKind::Send, id as f64, id as f64 + 1.0, id));
                t.push(ev(dst, OpKind::Recv, id as f64 + 2.0, id as f64 + 3.0, id));
                id += 1;
            }
        }
        assert_eq!(t.len(), 2 * procs * (procs - 1));
        let grouped = t.sorted_by_proc();
        assert_eq!(grouped.len(), procs);
        for (p, group) in grouped.iter().enumerate() {
            // Every processor sends to and receives from all others.
            assert_eq!(group.len(), 2 * (procs - 1));
            // Exact sizing: the counting pass reserved the final length,
            // so the single fill pass never grew the bucket.
            assert_eq!(group.capacity(), group.len(), "bucket {p} reallocated");
        }
        // Spot-check a few processors against the per-proc view.
        for p in [0, 1, procs / 2, procs - 1] {
            assert_eq!(grouped[p], t.events_for(p));
        }
    }

    #[test]
    fn sim_result_caches_finish() {
        let mut t = Timeline::new(1);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        let r = SimResult::new(t);
        assert_eq!(r.finish, Time::from_us(6.0));
        assert_eq!(r.forced_sends, 0);
    }
}
