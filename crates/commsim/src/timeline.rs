//! Timelines: the output of the simulation algorithms.

use loggp::{OpKind, Time};
use std::collections::HashMap;

/// One committed send or receive operation at a processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommEvent {
    /// Processor performing the operation.
    pub proc: usize,
    /// Send or receive.
    pub kind: OpKind,
    /// The other endpoint of the message.
    pub peer: usize,
    /// Message length in bytes.
    pub bytes: usize,
    /// Identifier of the message within the input pattern.
    pub msg_id: usize,
    /// When the operation starts occupying the CPU.
    pub start: Time,
    /// When the CPU is released (`start + o`).
    pub end: Time,
}

/// The full schedule of send/receive operations produced by a simulation.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    procs: usize,
    events: Vec<CommEvent>,
}

impl Timeline {
    /// An empty timeline over `procs` processors.
    pub fn new(procs: usize) -> Self {
        Timeline {
            procs,
            events: Vec::new(),
        }
    }

    /// Append an event (events are recorded in commit order; use
    /// [`Timeline::sorted_by_proc`] for per-processor chronological views).
    pub fn push(&mut self, ev: CommEvent) {
        debug_assert!(ev.proc < self.procs && ev.peer < self.procs);
        self.events.push(ev);
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// All events, in the order they were committed by the simulator.
    pub fn events(&self) -> &[CommEvent] {
        &self.events
    }

    /// Events of one processor, chronologically.
    pub fn events_for(&self, proc: usize) -> Vec<CommEvent> {
        let mut evs: Vec<CommEvent> = self
            .events
            .iter()
            .filter(|e| e.proc == proc)
            .copied()
            .collect();
        evs.sort_by_key(|e| (e.start, e.end, e.msg_id));
        evs
    }

    /// All events grouped per processor, chronologically.
    pub fn sorted_by_proc(&self) -> Vec<Vec<CommEvent>> {
        let mut per: Vec<Vec<CommEvent>> = vec![Vec::new(); self.procs];
        for e in &self.events {
            per[e.proc].push(*e);
        }
        for evs in &mut per {
            evs.sort_by_key(|e| (e.start, e.end, e.msg_id));
        }
        per
    }

    /// The time the last operation of the whole step completes — the
    /// communication step's running time.
    pub fn completion(&self) -> Time {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The time each processor finishes its last operation.
    pub fn per_proc_completion(&self) -> Vec<Time> {
        let mut done = vec![Time::ZERO; self.procs];
        for e in &self.events {
            done[e.proc] = done[e.proc].max(e.end);
        }
        done
    }

    /// Processors that finish *last* (the critical processors; the paper
    /// names them when discussing Figures 4 and 5).
    pub fn critical_procs(&self) -> Vec<usize> {
        let finish = self.completion();
        let per = self.per_proc_completion();
        (0..self.procs)
            .filter(|&p| per[p] == finish && !finish.is_zero())
            .collect()
    }

    /// Total CPU time processor `proc` spends inside send/receive overhead.
    pub fn busy_time(&self, proc: usize) -> Time {
        self.events
            .iter()
            .filter(|e| e.proc == proc)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// For every message id, its `(send event, receive event)` pair, if the
    /// timeline contains both.
    pub fn message_pairs(&self) -> HashMap<usize, (Option<CommEvent>, Option<CommEvent>)> {
        let mut map: HashMap<usize, (Option<CommEvent>, Option<CommEvent>)> = HashMap::new();
        for e in &self.events {
            let entry = map.entry(e.msg_id).or_default();
            match e.kind {
                OpKind::Send => entry.0 = Some(*e),
                OpKind::Recv => entry.1 = Some(*e),
            }
        }
        map
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A simulation result: the timeline plus its completion time.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// The committed operation schedule.
    pub timeline: Timeline,
    /// `timeline.completion()`, cached.
    pub finish: Time,
    /// Number of deadlocks the worst-case algorithm had to break by forcing
    /// a transmission (always 0 for the standard algorithm and for acyclic
    /// patterns).
    pub forced_sends: usize,
}

impl SimResult {
    /// Wrap a finished timeline.
    pub fn new(timeline: Timeline) -> Self {
        let finish = timeline.completion();
        SimResult {
            timeline,
            finish,
            forced_sends: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(proc: usize, kind: OpKind, start_us: f64, end_us: f64, msg_id: usize) -> CommEvent {
        CommEvent {
            proc,
            kind,
            peer: 0,
            bytes: 1,
            msg_id,
            start: Time::from_us(start_us),
            end: Time::from_us(end_us),
        }
    }

    #[test]
    fn completion_and_critical() {
        let mut t = Timeline::new(3);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        t.push(ev(1, OpKind::Recv, 40.0, 46.0, 0));
        t.push(ev(2, OpKind::Recv, 44.0, 46.0, 1));
        assert_eq!(t.completion(), Time::from_us(46.0));
        assert_eq!(t.critical_procs(), vec![1, 2]);
        assert_eq!(
            t.per_proc_completion(),
            vec![Time::from_us(6.0), Time::from_us(46.0), Time::from_us(46.0)]
        );
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new(2);
        assert_eq!(t.completion(), Time::ZERO);
        assert!(t.critical_procs().is_empty());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn busy_time_sums_overheads() {
        let mut t = Timeline::new(1);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        t.push(ev(0, OpKind::Recv, 16.0, 22.0, 1));
        assert_eq!(t.busy_time(0), Time::from_us(12.0));
    }

    #[test]
    fn events_for_sorts_chronologically() {
        let mut t = Timeline::new(1);
        t.push(ev(0, OpKind::Recv, 16.0, 22.0, 1));
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        let evs = t.events_for(0);
        assert_eq!(evs[0].msg_id, 0);
        assert_eq!(evs[1].msg_id, 1);
    }

    #[test]
    fn message_pairs_joins_send_and_recv() {
        let mut t = Timeline::new(2);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 7));
        t.push(ev(1, OpKind::Recv, 40.0, 46.0, 7));
        let pairs = t.message_pairs();
        let (s, r) = pairs[&7];
        assert_eq!(s.unwrap().proc, 0);
        assert_eq!(r.unwrap().proc, 1);
    }

    #[test]
    fn sim_result_caches_finish() {
        let mut t = Timeline::new(1);
        t.push(ev(0, OpKind::Send, 0.0, 6.0, 0));
        let r = SimResult::new(t);
        assert_eq!(r.finish, Time::from_us(6.0));
        assert_eq!(r.forced_sends, 0);
    }
}
