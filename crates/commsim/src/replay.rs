//! Incremental re-simulation: record a step's commit order once, then
//! re-time it under different LogGP parameters without re-running event
//! selection.
//!
//! Parameter sweeps (`ge-sweep`, calibration search) simulate the same
//! communication patterns over and over with only L/o/g/G changing. The
//! *times* change, but the *decisions* — which processor acts next, send
//! vs. receive, where a deadlock is broken — usually do not. A
//! [`Recording`] captures those decisions from one full simulation;
//! [`Recording::replay`] replays them under new parameters in one linear
//! pass over the ops, recomputing every timestamp from the recorded order.
//!
//! Replay is exact or it is refused — there is no approximation path:
//!
//! - **Worst-case algorithm**: the round structure (who sends in which
//!   round, the blocked sets, the RNG draws that break deadlocks) depends
//!   only on the pattern, never on the parameters, because part 2 of every
//!   round fully drains the inboxes. Replaying the recorded sends and
//!   round boundaries under any parameters reproduces the full simulation
//!   bit-for-bit, as long as the seed matches the recording.
//! - **Standard algorithm**: the commit order *can* shift with parameters
//!   (a receive can overtake a send). Replay is therefore **verified**: at
//!   every recorded op it re-checks, under the new parameters, that the
//!   selection the recording dictates is the one the full algorithm would
//!   make — the acting processor's send-ready time is globally minimal
//!   (enforced via monotonicity of the selection key and of processor ids
//!   within equal keys) and the send/receive choice matches the
//!   `start_send < start_recv` rule. Any violation aborts the replay
//!   (`None`) and the caller falls back to a full simulation. Random
//!   tie-breaking is never replayed (tie-set sizes, and hence RNG
//!   consumption, are parameter-dependent).
//!
//! `tests/equiv.rs` proptests pin `replay ≡ full re-simulation` whenever
//! replay succeeds. Recordings assume the default LogGP arrival model and
//! no fault injection (the sweep/calibration configuration).
//!
//! [`Recording::retime`] is the same verified re-timing with the output
//! stripped to what parameter sweeps actually consume: the per-processor
//! completion maxima ([`StepEnds`]) instead of a full [`Timeline`]. It goes
//! two steps further than [`Recording::replay`]: the recording carries a
//! snapshot of the message arena (no per-call counting sort) and the
//! *identities* of the main-loop receives, so retime needs no receive
//! heaps at all. Instead of extracting minima it verifies them: each pop's
//! `(arrival, id)` key must be non-decreasing per processor, every
//! drain-bound key must be at least the destination's last main-loop pop
//! key, and the send/receive choice rule is checked against the exact
//! pending minimum (the next recorded pop if its message is in flight —
//! a not-yet-sent one arrives strictly after the current selection key —
//! or the smallest in-flight drain-bound arrival). A recording accepted
//! by retime yields bit-identical maxima to the full simulation; retime
//! refuses whenever replay would, plus in the rare case where new
//! parameters reorder which message a pop takes (replay can re-time that
//! by re-extracting minima; retime falls back to a full simulation).

use crate::faults::transmit;
use crate::pattern::{CommPattern, Message};
use crate::scratch::{InFlight, SimScratch};
use crate::timeline::{CommEvent, SimResult, Timeline};
use crate::{standard, worstcase, SimConfig, TieBreak};
use loggp::{OpKind, Time};
use std::cmp::Reverse;

/// Per-processor completion data of one re-timed communication step —
/// everything the whole-program fold consumes, without materializing a
/// [`Timeline`]. Produced by [`Recording::retime`]; reusable across steps
/// (the buffers are cleared, not reallocated).
#[derive(Clone, Debug, Default)]
pub struct StepEnds {
    /// Per processor: end of its last committed operation, at least the
    /// step-entry ready time (the fold's next-computation start under
    /// no-overlap semantics).
    pub comm_done: Vec<Time>,
    /// Per processor: end of its last committed *receive*, at least the
    /// step-entry ready time (the fold's next-computation start under
    /// receive-only overlap).
    pub last_recv_done: Vec<Time>,
    /// Forced transmissions (worst-case algorithm on cyclic patterns).
    pub forced_sends: usize,
}

impl StepEnds {
    /// Reset to the step-entry ready times (every per-processor maximum
    /// starts from `ready[p]`).
    pub fn reset(&mut self, ready: &[Time]) {
        self.comm_done.clear();
        self.comm_done.extend_from_slice(ready);
        self.last_recv_done.clear();
        self.last_recv_done.extend_from_slice(ready);
        self.forced_sends = 0;
    }

    /// Fold a fully-simulated step's timeline into the maxima — the
    /// fallback path when a recording refuses to re-time. Equivalent to
    /// what [`Recording::retime`] computes on the fast path.
    pub fn absorb(&mut self, result: &SimResult) {
        for ev in result.timeline.events() {
            let d = &mut self.comm_done[ev.proc];
            *d = (*d).max(ev.end);
            if ev.kind == OpKind::Recv {
                let r = &mut self.last_recv_done[ev.proc];
                *r = (*r).max(ev.end);
            }
        }
        self.forced_sends += result.forced_sends;
    }
}

/// Which algorithm produced a [`Recording`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayAlgo {
    /// The standard (Figure 2) algorithm; replay is verified per op.
    Standard,
    /// The worst-case (§4.2) algorithm; replay is unconditionally exact.
    WorstCase,
}

/// The commit order of one simulated step (see module docs).
///
/// Ops encode `proc << 1 | bit` — the bit is the operation kind for the
/// standard algorithm (0 = send, 1 = receive) and the forced flag for the
/// worst-case algorithm, whose round boundaries are `u32::MAX` sentinels.
#[derive(Clone, Debug)]
pub struct Recording {
    algo: ReplayAlgo,
    procs: usize,
    msgs: usize,
    seed: u64,
    replayable: bool,
    ops: Vec<u32>,
    /// Snapshot of the scratch arena for the recorded pattern: network
    /// messages grouped by source, with the initial per-processor cursor
    /// offsets in `q_start` and the exclusive ends in `q_end`. Retime runs
    /// directly off this copy instead of re-sorting the pattern per call.
    arena: Vec<Message>,
    q_start: Vec<u32>,
    q_end: Vec<u32>,
    /// Standard algorithm: arena slots of the main-loop receives, grouped
    /// per receiving processor in pop order
    /// (`pop_offsets[p]..pop_offsets[p + 1]` indexes `pop_slots`).
    pop_slots: Vec<u32>,
    pop_offsets: Vec<u32>,
    /// Standard algorithm: slots received in the drain phase, grouped by
    /// destination, plus a per-slot membership flag.
    drain_slots: Vec<u32>,
    drain_offsets: Vec<u32>,
    is_drain: Vec<bool>,
}

/// Buffers filled by the recording hot loops: the commit-order ops and,
/// for the standard algorithm, the arena slot of each main-loop receive
/// (aligned with the receive ops in order).
#[derive(Default)]
pub(crate) struct RecBufs {
    pub(crate) ops: Vec<u32>,
    pub(crate) recv_slots: Vec<u32>,
}

impl Recording {
    /// Which algorithm this recording replays.
    pub fn algo(&self) -> ReplayAlgo {
        self.algo
    }

    /// False iff replay will always refuse (standard algorithm under
    /// [`TieBreak::Random`]).
    pub fn is_replayable(&self) -> bool {
        self.replayable
    }

    /// Number of recorded ops (diagnostics).
    pub fn ops_len(&self) -> usize {
        self.ops.len()
    }

    /// Re-time this recording under `cfg` (same pattern and ready times it
    /// was recorded from, typically different `cfg.params`). Returns the
    /// bit-exact equivalent of the corresponding full simulation, or
    /// `None` if the recorded order is not provably valid under the new
    /// parameters — fall back to a full simulation then.
    pub fn replay(
        &self,
        pattern: &CommPattern,
        cfg: &SimConfig,
        ready: &[Time],
        scratch: &mut SimScratch,
    ) -> Option<SimResult> {
        match self.algo {
            ReplayAlgo::Standard => self.replay_standard(pattern, cfg, ready, scratch),
            ReplayAlgo::WorstCase => self.replay_worstcase(pattern, cfg, ready, scratch),
        }
    }

    fn replay_standard(
        &self,
        pattern: &CommPattern,
        cfg: &SimConfig,
        ready: &[Time],
        scratch: &mut SimScratch,
    ) -> Option<SimResult> {
        if !self.replayable || cfg.tie_break != TieBreak::LowestId || self.procs != pattern.procs()
        {
            return None;
        }
        let params = &cfg.params;
        let rule = cfg.gap_rule;
        scratch.begin_standard(pattern, ready);
        if scratch.arena.len() != self.msgs {
            return None;
        }
        let procs = self.procs;
        let mut timeline = Timeline::new(procs);
        timeline.reserve(2 * self.msgs);

        // Selection-key monotonicity state. The main loop always commits at
        // the globally minimal (send_ready, proc) pair, so the sequence of
        // those keys is non-decreasing lexicographically. Conversely, if a
        // recorded sequence satisfies that and every per-op check below, it
        // IS the sequence the full algorithm produces: a wrongly-skipped
        // processor keeps its (smaller) key untouched until its own next
        // recorded op, where the descent is caught.
        let mut prev_t = Time::ZERO;
        let mut prev_p = 0usize;

        for &op in &self.ops {
            let p = (op >> 1) as usize;
            let is_recv = op & 1 == 1;
            // Only processors with sends left participate in the main loop.
            if p >= procs || !scratch.has_sends(p) {
                return None;
            }
            let t = scratch.clocks[p].ready_at_kind(params, rule, OpKind::Send);
            if t < prev_t || (t == prev_t && p < prev_p) {
                return None;
            }
            prev_t = t;
            prev_p = p;

            let start_recv = match scratch.recv_queues[p].peek() {
                Some(Reverse(inflight)) => scratch.clocks[p].earliest_start_kind(
                    params,
                    rule,
                    OpKind::Recv,
                    inflight.arrival,
                ),
                None => Time::MAX,
            };
            if is_recv {
                // Receives win ties: chosen iff start_recv <= start_send.
                if start_recv > t {
                    return None;
                }
                let Reverse(inflight) = scratch.recv_queues[p].pop()?;
                let msg = scratch.arena[inflight.slot as usize];
                let end = scratch.clocks[p].commit_kind(params, rule, OpKind::Recv, start_recv);
                timeline.push(CommEvent {
                    proc: p,
                    kind: OpKind::Recv,
                    peer: msg.src,
                    bytes: msg.bytes,
                    msg_id: msg.id,
                    start: start_recv,
                    end,
                });
            } else {
                if t >= start_recv {
                    return None;
                }
                let (slot, msg) = scratch.pop_send(p);
                let final_start = transmit(
                    &mut scratch.clocks[p],
                    params,
                    rule,
                    p,
                    &msg,
                    false,
                    None,
                    None,
                    &mut timeline,
                );
                let arrival = params.arrival_time(final_start, msg.bytes);
                scratch.recv_queues[msg.dst].push(Reverse(InFlight {
                    arrival,
                    id: msg.id as u32,
                    slot,
                }));
            }
        }

        // The main loop only ends when no sends remain.
        if (0..procs).any(|p| scratch.has_sends(p)) {
            return None;
        }
        standard::drain(params, cfg, scratch, None, &mut timeline);
        Some(SimResult::new(timeline))
    }

    fn replay_worstcase(
        &self,
        pattern: &CommPattern,
        cfg: &SimConfig,
        ready: &[Time],
        scratch: &mut SimScratch,
    ) -> Option<SimResult> {
        // The RNG stream that chose the forced sends is baked into the ops;
        // a different seed would have chosen differently.
        if self.seed != cfg.seed || self.procs != pattern.procs() {
            return None;
        }
        let params = &cfg.params;
        let rule = cfg.gap_rule;
        scratch.begin_worstcase(pattern, ready);
        if scratch.arena.len() != self.msgs {
            return None;
        }
        let procs = self.procs;
        let mut timeline = Timeline::new(procs);
        timeline.reserve(2 * self.msgs);
        let mut forced_sends = 0usize;

        for &op in &self.ops {
            if op == u32::MAX {
                // Round boundary: part 2 drains everything delivered so far.
                worstcase::wc_drain(scratch, &mut timeline, params, rule, None, procs);
                continue;
            }
            let p = (op >> 1) as usize;
            let forced = op & 1 == 1;
            if p >= procs || !scratch.has_sends(p) {
                return None;
            }
            let (slot, msg) = scratch.pop_send(p);
            let final_start = transmit(
                &mut scratch.clocks[p],
                params,
                rule,
                p,
                &msg,
                forced,
                None,
                None,
                &mut timeline,
            );
            let arrival = params.arrival_time(final_start, msg.bytes);
            scratch.inboxes[msg.dst].push(InFlight {
                arrival,
                id: msg.id as u32,
                slot,
            });
            if forced {
                forced_sends += 1;
            }
        }
        if (0..procs).any(|p| scratch.has_sends(p)) {
            return None;
        }

        let mut result = SimResult::new(timeline);
        result.forced_sends = forced_sends;
        Some(result)
    }

    /// [`Recording::replay`] without the timeline: re-time this recording
    /// under `cfg` computing only the per-processor completion maxima the
    /// whole-program fold consumes, into `out` (buffers reused across
    /// calls). Returns `false` with `out` left in an unspecified state
    /// when the recorded order is not provably valid under `cfg` — retime
    /// refuses whenever [`Recording::replay`] would, and additionally when
    /// the new parameters reorder which in-flight message a receive takes
    /// (see module docs); fall back to a full simulation then. On `true`
    /// the maxima equal what [`StepEnds::absorb`] would extract from the
    /// corresponding full simulation. This is the sweep fast path: no
    /// arena rebuild, no receive heaps, no per-event `CommEvent`
    /// construction, no per-step timeline allocation.
    pub fn retime(
        &self,
        pattern: &CommPattern,
        cfg: &SimConfig,
        ready: &[Time],
        scratch: &mut SimScratch,
        out: &mut StepEnds,
    ) -> bool {
        match self.algo {
            ReplayAlgo::Standard => self.retime_standard(pattern, cfg, ready, scratch, out),
            ReplayAlgo::WorstCase => self.retime_worstcase(pattern, cfg, ready, scratch, out),
        }
    }

    fn retime_standard(
        &self,
        pattern: &CommPattern,
        cfg: &SimConfig,
        ready: &[Time],
        scratch: &mut SimScratch,
        out: &mut StepEnds,
    ) -> bool {
        if !self.replayable || cfg.tie_break != TieBreak::LowestId || self.procs != pattern.procs()
        {
            return false;
        }
        let params = &cfg.params;
        let rule = cfg.gap_rule;
        let procs = self.procs;
        scratch.begin_retime(ready, &self.q_start, self.msgs, procs);
        out.reset(ready);

        // Same selection-key monotonicity as `replay_standard` (see the
        // comment there). The receive heaps are replaced by the recorded
        // pop identities: a pop is valid iff its key does not descend
        // within its processor's pop sequence (drain keys included via the
        // boundary check below) — in a valid run later-sent messages
        // arrive after the current selection key, so a descent is exactly
        // a pop that was not the pending minimum.
        let mut prev_t = Time::ZERO;
        let mut prev_p = 0usize;

        for &op in &self.ops {
            let p = (op >> 1) as usize;
            let is_recv = op & 1 == 1;
            if p >= procs || scratch.rt_cursor[p] >= self.q_end[p] {
                return false;
            }
            let t = scratch.clocks[p].ready_at_kind(params, rule, OpKind::Send);
            if t < prev_t || (t == prev_t && p < prev_p) {
                return false;
            }
            prev_t = t;
            prev_p = p;

            if is_recv {
                let idx = (self.pop_offsets[p] + scratch.rt_next_pop[p]) as usize;
                // In range by construction: ops and pop_slots come from
                // the same recorded run.
                let slot = self.pop_slots[idx] as usize;
                scratch.rt_next_pop[p] += 1;
                if !scratch.rt_sent[slot] {
                    return false;
                }
                let arrival = scratch.rt_arrival[slot];
                let key = (arrival, self.arena[slot].id as u32);
                if key < scratch.rt_last_key[p] {
                    return false;
                }
                scratch.rt_last_key[p] = key;
                let start_recv =
                    scratch.clocks[p].earliest_start_kind(params, rule, OpKind::Recv, arrival);
                if start_recv > t {
                    return false;
                }
                let end = scratch.clocks[p].commit_kind(params, rule, OpKind::Recv, start_recv);
                out.comm_done[p] = out.comm_done[p].max(end);
                out.last_recv_done[p] = out.last_recv_done[p].max(end);
            } else {
                // The send is chosen only if no pending receive could
                // start at or before `t`. The pending minimum is the next
                // recorded main-loop pop if its message is in flight (one
                // not yet sent is committed at a later selection key and
                // so arrives strictly after `t`), and separately the
                // smallest in-flight drain-bound arrival.
                let idx = self.pop_offsets[p] + scratch.rt_next_pop[p];
                if idx < self.pop_offsets[p + 1] {
                    let s = self.pop_slots[idx as usize] as usize;
                    if scratch.rt_sent[s] {
                        let start_recv = scratch.clocks[p].earliest_start_kind(
                            params,
                            rule,
                            OpKind::Recv,
                            scratch.rt_arrival[s],
                        );
                        if t >= start_recv {
                            return false;
                        }
                    }
                }
                let (dm, _) = scratch.rt_drain_min[p];
                if dm != Time::MAX {
                    let start_recv =
                        scratch.clocks[p].earliest_start_kind(params, rule, OpKind::Recv, dm);
                    if t >= start_recv {
                        return false;
                    }
                }
                let slot = scratch.rt_cursor[p] as usize;
                scratch.rt_cursor[p] += 1;
                let msg = self.arena[slot];
                // `t` is the send's ready time; committing at it is exactly
                // what `transmit` does for the fault-free recording model.
                let end = scratch.clocks[p].commit_kind(params, rule, OpKind::Send, t);
                out.comm_done[p] = out.comm_done[p].max(end);
                let arrival = params.arrival_time(t, msg.bytes);
                scratch.rt_sent[slot] = true;
                scratch.rt_arrival[slot] = arrival;
                if self.is_drain[slot] {
                    let key = (arrival, msg.id as u32);
                    if key < scratch.rt_drain_min[msg.dst] {
                        scratch.rt_drain_min[msg.dst] = key;
                    }
                }
            }
        }

        if (0..procs).any(|p| scratch.rt_cursor[p] < self.q_end[p]) {
            return false;
        }
        // Drain phase: the drain *set* is fixed by the recording, the
        // order is (arrival, id) under the new parameters. Main-loop
        // validity additionally requires every drain key to be at least
        // the destination's last main-loop pop key — a message below it
        // was pending when that pop committed, so the pop was not the
        // minimum.
        for p in 0..procs {
            let range = self.drain_offsets[p] as usize..self.drain_offsets[p + 1] as usize;
            if range.is_empty() {
                continue;
            }
            scratch.rt_drain.clear();
            for &slot in &self.drain_slots[range] {
                scratch.rt_drain.push(InFlight {
                    arrival: scratch.rt_arrival[slot as usize],
                    id: self.arena[slot as usize].id as u32,
                    slot,
                });
            }
            scratch.rt_drain.sort_unstable();
            let first = scratch.rt_drain[0];
            if (first.arrival, first.id) < scratch.rt_last_key[p] {
                return false;
            }
            let clock = &mut scratch.clocks[p];
            for &f in &scratch.rt_drain {
                let start = clock.earliest_start_kind(params, rule, OpKind::Recv, f.arrival);
                let end = clock.commit_kind(params, rule, OpKind::Recv, start);
                out.comm_done[p] = out.comm_done[p].max(end);
                out.last_recv_done[p] = out.last_recv_done[p].max(end);
            }
        }
        true
    }

    fn retime_worstcase(
        &self,
        pattern: &CommPattern,
        cfg: &SimConfig,
        ready: &[Time],
        scratch: &mut SimScratch,
        out: &mut StepEnds,
    ) -> bool {
        if self.seed != cfg.seed || self.procs != pattern.procs() {
            return false;
        }
        let params = &cfg.params;
        let rule = cfg.gap_rule;
        let procs = self.procs;
        scratch.begin_retime(ready, &self.q_start, self.msgs, procs);
        if scratch.inboxes.len() < procs {
            scratch.inboxes.resize_with(procs, Vec::new);
        }
        for inbox in &mut scratch.inboxes[..procs] {
            inbox.clear();
        }
        out.reset(ready);

        for &op in &self.ops {
            if op == u32::MAX {
                // Round boundary: drain every inbox, timeline-free.
                for p in 0..procs {
                    if scratch.inboxes[p].is_empty() {
                        continue;
                    }
                    let mut inbox = std::mem::take(&mut scratch.inboxes[p]);
                    inbox.sort_unstable();
                    for &inflight in &inbox {
                        let clock = &mut scratch.clocks[p];
                        let start =
                            clock.earliest_start_kind(params, rule, OpKind::Recv, inflight.arrival);
                        let end = clock.commit_kind(params, rule, OpKind::Recv, start);
                        out.comm_done[p] = out.comm_done[p].max(end);
                        out.last_recv_done[p] = out.last_recv_done[p].max(end);
                    }
                    inbox.clear();
                    scratch.inboxes[p] = inbox;
                }
                continue;
            }
            let p = (op >> 1) as usize;
            let forced = op & 1 == 1;
            if p >= procs || scratch.rt_cursor[p] >= self.q_end[p] {
                return false;
            }
            let slot = scratch.rt_cursor[p];
            scratch.rt_cursor[p] += 1;
            let msg = self.arena[slot as usize];
            let start = scratch.clocks[p].ready_at_kind(params, rule, OpKind::Send);
            let end = scratch.clocks[p].commit_kind(params, rule, OpKind::Send, start);
            out.comm_done[p] = out.comm_done[p].max(end);
            let arrival = params.arrival_time(start, msg.bytes);
            scratch.inboxes[msg.dst].push(InFlight {
                arrival,
                id: msg.id as u32,
                slot,
            });
            if forced {
                out.forced_sends += 1;
            }
        }
        (0..procs).all(|p| scratch.rt_cursor[p] >= self.q_end[p])
    }
}

/// Snapshot the scratch arena after a recorded run. The per-run cursors in
/// `scratch.q_start` have advanced to the range ends, so the initial
/// offsets are reconstructed from the (stable) exclusive ends.
fn arena_snapshot(scratch: &SimScratch, procs: usize) -> (Vec<Message>, Vec<u32>, Vec<u32>) {
    let q_end = scratch.q_end[..procs].to_vec();
    let mut q_start = Vec::with_capacity(procs);
    let mut prev_end = 0u32;
    for &end in &q_end {
        q_start.push(prev_end);
        prev_end = end;
    }
    (scratch.arena.clone(), q_start, q_end)
}

/// Run the standard algorithm and record its commit order. The result is
/// bit-identical to [`standard::simulate_from`] with the same inputs.
pub fn record_standard(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    scratch: &mut SimScratch,
) -> (SimResult, Recording) {
    let params = cfg.params;
    let mut bufs = RecBufs::default();
    let result = standard::sim_core(
        pattern,
        cfg,
        ready,
        &mut |m, start| params.arrival_time(start, m.bytes),
        None,
        None,
        scratch,
        Some(&mut bufs),
    );
    let procs = pattern.procs();
    let msgs = scratch.arena.len();
    let (arena, q_start, q_end) = arena_snapshot(scratch, procs);

    // Group the main-loop pops per receiving processor (counting sort over
    // the recorded ops) and mark everything else as drain-bound.
    let RecBufs { ops, recv_slots } = bufs;
    let mut pop_offsets = vec![0u32; procs + 1];
    for &op in &ops {
        if op & 1 == 1 {
            pop_offsets[(op >> 1) as usize + 1] += 1;
        }
    }
    for p in 0..procs {
        pop_offsets[p + 1] += pop_offsets[p];
    }
    let mut fill = pop_offsets[..procs].to_vec();
    let mut pop_slots = vec![0u32; recv_slots.len()];
    let mut is_drain = vec![true; msgs];
    let mut ri = 0usize;
    for &op in &ops {
        if op & 1 == 1 {
            let p = (op >> 1) as usize;
            let slot = recv_slots[ri];
            ri += 1;
            pop_slots[fill[p] as usize] = slot;
            fill[p] += 1;
            is_drain[slot as usize] = false;
        }
    }
    let mut drain_offsets = vec![0u32; procs + 1];
    for (slot, m) in arena.iter().enumerate() {
        if is_drain[slot] {
            drain_offsets[m.dst + 1] += 1;
        }
    }
    for p in 0..procs {
        drain_offsets[p + 1] += drain_offsets[p];
    }
    let mut fill = drain_offsets[..procs].to_vec();
    let mut drain_slots = vec![0u32; msgs - recv_slots.len()];
    for (slot, m) in arena.iter().enumerate() {
        if is_drain[slot] {
            drain_slots[fill[m.dst] as usize] = slot as u32;
            fill[m.dst] += 1;
        }
    }

    let rec = Recording {
        algo: ReplayAlgo::Standard,
        procs,
        msgs,
        seed: cfg.seed,
        replayable: cfg.tie_break == TieBreak::LowestId,
        ops,
        arena,
        q_start,
        q_end,
        pop_slots,
        pop_offsets,
        drain_slots,
        drain_offsets,
        is_drain,
    };
    (result, rec)
}

/// Run the worst-case algorithm and record its commit order. The result is
/// bit-identical to [`worstcase::simulate_from`] with the same inputs.
pub fn record_worstcase(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    scratch: &mut SimScratch,
) -> (SimResult, Recording) {
    let params = cfg.params;
    let mut ops = Vec::new();
    let result = worstcase::wc_core(
        pattern,
        cfg,
        ready,
        &mut |m, start| params.arrival_time(start, m.bytes),
        None,
        None,
        scratch,
        Some(&mut ops),
    );
    let procs = pattern.procs();
    let (arena, q_start, q_end) = arena_snapshot(scratch, procs);
    let rec = Recording {
        algo: ReplayAlgo::WorstCase,
        procs,
        msgs: arena.len(),
        seed: cfg.seed,
        replayable: true,
        ops,
        arena,
        q_start,
        q_end,
        // The worst-case re-timing never consults the pop/drain tables.
        pop_slots: Vec::new(),
        pop_offsets: Vec::new(),
        drain_slots: Vec::new(),
        drain_offsets: Vec::new(),
        is_drain: Vec::new(),
    };
    (result, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use loggp::{presets, LogGpParams};

    fn meiko_cfg(procs: usize) -> SimConfig {
        SimConfig::new(presets::meiko_cs2(procs))
    }

    fn scaled(params: LogGpParams, num: u64, den: u64) -> LogGpParams {
        LogGpParams {
            latency: Time::from_ps(params.latency.as_ps() * num / den),
            overhead: Time::from_ps(params.overhead.as_ps() * num / den),
            gap: Time::from_ps(params.gap.as_ps() * num / den),
            gap_per_byte: Time::from_ps(params.gap_per_byte.as_ps() * num / den),
            ..params
        }
    }

    #[test]
    fn recorded_run_matches_direct_simulation() {
        let pattern = patterns::all_to_all(6, 512);
        let cfg = meiko_cfg(6);
        let mut scratch = SimScratch::new();
        let (rec_result, _) = record_standard(&pattern, &cfg, &[Time::ZERO; 6], &mut scratch);
        let direct = standard::simulate(&pattern, &cfg);
        assert_eq!(rec_result.timeline.events(), direct.timeline.events());
    }

    #[test]
    fn standard_replay_matches_full_resim_under_new_params() {
        let pattern = patterns::all_to_all(6, 512);
        let base = meiko_cfg(6);
        let mut scratch = SimScratch::new();
        let ready = vec![Time::ZERO; 6];
        let (_, rec) = record_standard(&pattern, &base, &ready, &mut scratch);
        assert!(rec.is_replayable());
        // Mild parameter changes keep the commit order valid.
        for (num, den) in [(11, 10), (9, 10), (13, 10)] {
            let cfg = SimConfig {
                params: scaled(base.params, num, den),
                ..base
            };
            let replayed = rec
                .replay(&pattern, &cfg, &ready, &mut scratch)
                .expect("mild scaling keeps order valid");
            let full = standard::simulate_from(&pattern, &cfg, &ready);
            assert_eq!(replayed.timeline.events(), full.timeline.events());
            assert_eq!(replayed.finish, full.finish);
        }
    }

    #[test]
    fn worstcase_replay_is_exact_for_any_params() {
        let pattern = patterns::ring(7, 256); // cyclic: exercises forced sends
        let base = meiko_cfg(7).with_seed(5);
        let ready = vec![Time::ZERO; 7];
        let mut scratch = SimScratch::new();
        let (_, rec) = record_worstcase(&pattern, &base, &ready, &mut scratch);
        // Even drastic parameter changes replay exactly (round structure is
        // parameter-independent).
        for (num, den) in [(1, 10), (10, 1), (17, 3)] {
            let cfg = SimConfig {
                params: scaled(base.params, num, den),
                ..base
            };
            let replayed = rec
                .replay(&pattern, &cfg, &ready, &mut scratch)
                .expect("worst-case replay is unconditional");
            let full = worstcase::simulate_from(&pattern, &cfg, &ready);
            assert_eq!(replayed.timeline.events(), full.timeline.events());
            assert_eq!(replayed.forced_sends, full.forced_sends);
        }
    }

    #[test]
    fn worstcase_replay_refuses_wrong_seed() {
        let pattern = patterns::ring(5, 64);
        let cfg = meiko_cfg(5).with_seed(7);
        let ready = vec![Time::ZERO; 5];
        let mut scratch = SimScratch::new();
        let (_, rec) = record_worstcase(&pattern, &cfg, &ready, &mut scratch);
        let other = meiko_cfg(5).with_seed(8);
        assert!(rec.replay(&pattern, &other, &ready, &mut scratch).is_none());
    }

    #[test]
    fn random_tie_break_recordings_refuse_replay() {
        let pattern = patterns::all_to_all(4, 128);
        let cfg = meiko_cfg(4).with_random_ties(3);
        let ready = vec![Time::ZERO; 4];
        let mut scratch = SimScratch::new();
        let (result, rec) = record_standard(&pattern, &cfg, &ready, &mut scratch);
        // Recording under Random still simulates correctly...
        let direct = standard::simulate(&pattern, &cfg);
        assert_eq!(result.timeline.events(), direct.timeline.events());
        // ...but refuses to replay (RNG consumption is param-dependent).
        assert!(!rec.is_replayable());
        assert!(rec.replay(&pattern, &cfg, &ready, &mut scratch).is_none());
    }

    /// The per-processor maxima [`StepEnds::absorb`] extracts from a full
    /// simulation, for comparison with [`Recording::retime`] output.
    fn ends_of(result: &SimResult, ready: &[Time]) -> StepEnds {
        let mut ends = StepEnds::default();
        ends.reset(ready);
        ends.absorb(result);
        ends
    }

    #[test]
    fn retime_matches_replay_acceptance_and_ends() {
        // Across standard + worst-case recordings and mild-to-wild scaling:
        // retime never accepts a run replay refuses, its maxima equal those
        // of the replayed (= full) timeline whenever it accepts, unchanged
        // parameters always retime, and worst-case retime (whose acceptance
        // is unconditional given the seed) matches replay exactly.
        let ready: Vec<Time> = (0..8).map(|p| Time::from_us(p as f64 * 3.0)).collect();
        let mut scratch = SimScratch::new();
        let mut ends = StepEnds::default();
        for pattern in [
            patterns::all_to_all(8, 512),
            patterns::ring(8, 256),
            patterns::random(8, 24, 2048, 17),
        ] {
            let base = meiko_cfg(8).with_seed(3);
            let (_, st) = record_standard(&pattern, &base, &ready, &mut scratch);
            let (_, wc) = record_worstcase(&pattern, &base, &ready, &mut scratch);
            for rec in [&st, &wc] {
                for (num, den) in [(1, 1), (11, 10), (2, 1), (1, 3), (17, 3)] {
                    let cfg = SimConfig {
                        params: scaled(base.params, num, den),
                        ..base
                    };
                    let replayed = rec.replay(&pattern, &cfg, &ready, &mut scratch);
                    let accepted = rec.retime(&pattern, &cfg, &ready, &mut scratch, &mut ends);
                    if accepted {
                        assert!(
                            replayed.is_some(),
                            "retime accepted a run replay refuses at {num}/{den}"
                        );
                    }
                    if (num, den) == (1, 1) || rec.algo() == ReplayAlgo::WorstCase {
                        assert!(accepted, "must retime at {num}/{den}");
                    }
                    if accepted {
                        let expect = ends_of(&replayed.unwrap(), &ready);
                        assert_eq!(ends.comm_done, expect.comm_done, "{num}/{den}");
                        assert_eq!(ends.last_recv_done, expect.last_recv_done, "{num}/{den}");
                        assert_eq!(ends.forced_sends, expect.forced_sends, "{num}/{den}");
                    }
                }
            }
        }
    }

    #[test]
    fn retime_refuses_exactly_like_replay_on_bad_inputs() {
        let pattern = patterns::ring(5, 64);
        let cfg = meiko_cfg(5).with_seed(7);
        let ready = vec![Time::ZERO; 5];
        let mut scratch = SimScratch::new();
        let mut ends = StepEnds::default();
        // Wrong seed on a worst-case recording.
        let (_, wc) = record_worstcase(&pattern, &cfg, &ready, &mut scratch);
        let other = meiko_cfg(5).with_seed(8);
        assert!(!wc.retime(&pattern, &other, &ready, &mut scratch, &mut ends));
        // Random-tie standard recordings never re-time.
        let rnd = meiko_cfg(5).with_random_ties(3);
        let (_, st) = record_standard(&pattern, &rnd, &ready, &mut scratch);
        assert!(!st.retime(&pattern, &rnd, &ready, &mut scratch, &mut ends));
    }

    #[test]
    fn standard_replay_bails_when_order_becomes_invalid() {
        // A chain whose receive/send interleaving flips when latency
        // collapses: with huge L the downstream processor sends its own
        // message before the upstream one arrives; with L=0 the arrival
        // overtakes it. Replay must detect the flip and refuse rather than
        // produce a wrong timeline.
        let mut pattern = CommPattern::new(3);
        pattern.add(0, 1, 1); // arrives at 1 late under big L
        pattern.add(1, 2, 1); // P1's own send
        let base = SimConfig::new(LogGpParams {
            latency: Time::from_us(1000.0),
            ..presets::meiko_cs2(3)
        });
        let ready = vec![Time::ZERO; 3];
        let mut scratch = SimScratch::new();
        let (_, rec) = record_standard(&pattern, &base, &ready, &mut scratch);
        let collapsed = SimConfig::new(LogGpParams {
            latency: Time::ZERO,
            overhead: Time::ZERO,
            gap: Time::from_ns(1),
            ..base.params
        });
        match rec.replay(&pattern, &collapsed, &ready, &mut scratch) {
            None => {} // refused: fine
            Some(replayed) => {
                // If it claims validity it must be bit-exact.
                let full = standard::simulate_from(&pattern, &collapsed, &ready);
                assert_eq!(replayed.timeline.events(), full.timeline.events());
            }
        }
    }
}
