//! Reference implementations of both simulation algorithms.
//!
//! These are the original, straightforward encodings of the paper's
//! Figure 2 and §4.2 algorithms — per-processor `VecDeque` send queues
//! rebuilt per call, an O(P) scan for the minimum-time processor on every
//! committed operation, and a fresh tie vector per iteration. The
//! optimized loops in [`crate::standard`] and [`crate::worstcase`] must
//! produce **bit-identical** timelines to these; the equivalence proptests
//! in `tests/equiv.rs` pin that, and `bench_sim` measures the speedup of
//! the optimized loops against these baselines.
//!
//! Nothing in the production path calls this module; it exists purely as a
//! differential oracle and a benchmark baseline.

use crate::faults::{transmit, StepFaults};
use crate::observe::StepTracer;
use crate::pattern::{CommPattern, Message};
use crate::timeline::{CommEvent, SimResult, Timeline};
use crate::{SimConfig, TieBreak};
use loggp::{OpKind, ProcClock, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A message in flight, keyed by arrival time for the receive queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct InFlight {
    arrival: Time,
    msg: Message,
}

impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.msg.id).cmp(&(other.arrival, other.msg.id))
    }
}

impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct StdProcState {
    clock: ProcClock,
    send_queue: VecDeque<Message>,
    recv_queue: BinaryHeap<Reverse<InFlight>>,
}

/// The reference standard algorithm with the default arrival model.
pub fn standard_simulate(pattern: &CommPattern, cfg: &SimConfig) -> SimResult {
    standard_simulate_from(pattern, cfg, &vec![Time::ZERO; pattern.procs()])
}

/// The reference standard algorithm with per-processor ready times.
pub fn standard_simulate_from(pattern: &CommPattern, cfg: &SimConfig, ready: &[Time]) -> SimResult {
    let params = cfg.params;
    standard_simulate_faulted(
        pattern,
        cfg,
        ready,
        &mut |m, start| params.arrival_time(start, m.bytes),
        None,
        None,
    )
}

/// The reference standard algorithm (paper Figure 2), full entry point.
// Indices double as processor ids throughout.
#[allow(clippy::needless_range_loop)]
pub fn standard_simulate_faulted(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) -> SimResult {
    assert_eq!(ready.len(), pattern.procs(), "one ready time per processor");
    let params = &cfg.params;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let mut procs: Vec<StdProcState> = pattern
        .send_queues()
        .into_iter()
        .zip(ready)
        .map(|(send_queue, &r)| {
            let mut clock = ProcClock::new();
            clock.advance_to(r);
            StdProcState {
                clock,
                send_queue,
                recv_queue: BinaryHeap::new(),
            }
        })
        .collect();

    let mut timeline = Timeline::new(pattern.procs());

    // Main loop: while there are processors that want to send.
    loop {
        // min_proc = processor with minimum ctime among those with sends left.
        let rule = cfg.gap_rule;
        let min_time = procs
            .iter()
            .filter(|p| !p.send_queue.is_empty())
            .map(|p| p.clock.ready_at_kind(params, rule, OpKind::Send))
            .min();
        let Some(min_time) = min_time else { break };
        let tied: Vec<usize> = (0..procs.len())
            .filter(|&i| {
                !procs[i].send_queue.is_empty()
                    && procs[i].clock.ready_at_kind(params, rule, OpKind::Send) == min_time
            })
            .collect();
        let min_proc = match cfg.tie_break {
            TieBreak::LowestId => tied[0],
            TieBreak::Random => tied[rng.gen_range(0..tied.len())],
        };

        // Candidate start times for the two alternatives.
        let state = &procs[min_proc];
        let start_send = state.clock.ready_at_kind(params, rule, OpKind::Send);
        let start_recv = match state.recv_queue.peek() {
            Some(Reverse(inflight)) => {
                state
                    .clock
                    .earliest_start_kind(params, rule, OpKind::Recv, inflight.arrival)
            }
            None => Time::MAX, // paper: start_recv = infinity
        };

        if start_send < start_recv {
            // Perform SEND: strict '<' gives receives priority on ties.
            let msg = procs[min_proc]
                .send_queue
                .pop_front()
                .expect("send queue non-empty");
            let final_start = transmit(
                &mut procs[min_proc].clock,
                params,
                rule,
                min_proc,
                &msg,
                false,
                faults,
                tracer,
                &mut timeline,
            );
            let arrival = arrival_of(&msg, final_start).max(final_start + params.overhead);
            procs[msg.dst]
                .recv_queue
                .push(Reverse(InFlight { arrival, msg }));
        } else {
            // Perform RECEIVE.
            let Reverse(inflight) = procs[min_proc]
                .recv_queue
                .pop()
                .expect("receive queue non-empty");
            let end = procs[min_proc]
                .clock
                .commit_kind(params, rule, OpKind::Recv, start_recv);
            let event = CommEvent {
                proc: min_proc,
                kind: OpKind::Recv,
                peer: inflight.msg.src,
                bytes: inflight.msg.bytes,
                msg_id: inflight.msg.id,
                start: start_recv,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, false);
            }
            timeline.push(event);
        }
    }

    // Final phase: all sends done; every processor drains its receives in
    // arrival order.
    for i in 0..procs.len() {
        while let Some(Reverse(inflight)) = procs[i].recv_queue.pop() {
            let start = procs[i].clock.earliest_start_kind(
                params,
                cfg.gap_rule,
                OpKind::Recv,
                inflight.arrival,
            );
            let end = procs[i]
                .clock
                .commit_kind(params, cfg.gap_rule, OpKind::Recv, start);
            let event = CommEvent {
                proc: i,
                kind: OpKind::Recv,
                peer: inflight.msg.src,
                bytes: inflight.msg.bytes,
                msg_id: inflight.msg.id,
                start,
                end,
            };
            if let Some(t) = tracer {
                t.recv(&event, inflight.arrival, true);
            }
            timeline.push(event);
        }
    }

    SimResult::new(timeline)
}

struct WcProcState {
    clock: ProcClock,
    send_queue: VecDeque<Message>,
    /// Messages sent to this processor but not yet received, with arrivals.
    inbox: Vec<(Time, Message)>,
    /// Network messages this processor still has to *receive* before it is
    /// allowed to send ("messages to receive" counter).
    to_recv: usize,
}

/// The reference worst-case algorithm with the default arrival model.
pub fn worstcase_simulate(pattern: &CommPattern, cfg: &SimConfig) -> SimResult {
    worstcase_simulate_from(pattern, cfg, &vec![Time::ZERO; pattern.procs()])
}

/// The reference worst-case algorithm with per-processor ready times.
pub fn worstcase_simulate_from(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
) -> SimResult {
    let params = cfg.params;
    worstcase_simulate_faulted(
        pattern,
        cfg,
        ready,
        &mut |m, start| params.arrival_time(start, m.bytes),
        None,
        None,
    )
}

/// The reference overestimation algorithm (paper §4.2), full entry point.
// Indices double as processor ids throughout.
#[allow(clippy::needless_range_loop)]
pub fn worstcase_simulate_faulted(
    pattern: &CommPattern,
    cfg: &SimConfig,
    ready: &[Time],
    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
    tracer: Option<&StepTracer<'_>>,
    faults: Option<&dyn StepFaults>,
) -> SimResult {
    assert_eq!(ready.len(), pattern.procs(), "one ready time per processor");
    let params = &cfg.params;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let recv_counts = pattern.recv_counts();
    let mut procs: Vec<WcProcState> = pattern
        .send_queues()
        .into_iter()
        .zip(ready)
        .zip(&recv_counts)
        .map(|((send_queue, &r), &to_recv)| {
            let mut clock = ProcClock::new();
            clock.advance_to(r);
            WcProcState {
                clock,
                send_queue,
                inbox: Vec::new(),
                to_recv,
            }
        })
        .collect();

    let mut timeline = Timeline::new(pattern.procs());
    let mut forced_sends = 0usize;

    let send_msg = |procs: &mut Vec<WcProcState>,
                    timeline: &mut Timeline,
                    p: usize,
                    arrival_of: &mut dyn FnMut(&Message, Time) -> Time,
                    forced: bool| {
        let msg = procs[p]
            .send_queue
            .pop_front()
            .expect("send queue non-empty");
        let final_start = transmit(
            &mut procs[p].clock,
            params,
            cfg.gap_rule,
            p,
            &msg,
            forced,
            faults,
            tracer,
            timeline,
        );
        let arrival = arrival_of(&msg, final_start).max(final_start + params.overhead);
        procs[msg.dst].inbox.push((arrival, msg));
    };

    loop {
        let sends_remain = procs.iter().any(|p| !p.send_queue.is_empty());
        let recvs_remain = procs.iter().any(|p| !p.inbox.is_empty());
        if !sends_remain && !recvs_remain {
            break;
        }

        // Part 1: every processor that has received everything it expects
        // sends all of its messages.
        let eligible: Vec<usize> = (0..procs.len())
            .filter(|&p| procs[p].to_recv == 0 && !procs[p].send_queue.is_empty())
            .collect();

        if !eligible.is_empty() {
            for p in eligible {
                while !procs[p].send_queue.is_empty() {
                    send_msg(&mut procs, &mut timeline, p, arrival_of, false);
                }
            }
        } else if recvs_remain {
            // Nothing to send yet but deliveries are pending; fall through
            // to part 2 so the waiting processors can make progress.
        } else {
            // Deadlock: messages remain but every would-be sender is still
            // waiting on a cycle. Force one transmission from a randomly
            // chosen blocked processor.
            let blocked: Vec<usize> = (0..procs.len())
                .filter(|&p| !procs[p].send_queue.is_empty())
                .collect();
            debug_assert!(!blocked.is_empty());
            let victim = blocked[rng.gen_range(0..blocked.len())];
            send_msg(&mut procs, &mut timeline, victim, arrival_of, true);
            forced_sends += 1;
        }

        // Part 2: every destination performs the receive operations for the
        // messages delivered so far, in arrival order.
        for p in 0..procs.len() {
            if procs[p].inbox.is_empty() {
                continue;
            }
            procs[p]
                .inbox
                .sort_by_key(|(arrival, msg)| (*arrival, msg.id));
            for (arrival, msg) in std::mem::take(&mut procs[p].inbox) {
                let start =
                    procs[p]
                        .clock
                        .earliest_start_kind(params, cfg.gap_rule, OpKind::Recv, arrival);
                let end = procs[p]
                    .clock
                    .commit_kind(params, cfg.gap_rule, OpKind::Recv, start);
                let event = CommEvent {
                    proc: p,
                    kind: OpKind::Recv,
                    peer: msg.src,
                    bytes: msg.bytes,
                    msg_id: msg.id,
                    start,
                    end,
                };
                if let Some(t) = tracer {
                    t.recv(&event, arrival, false);
                }
                timeline.push(event);
                procs[p].to_recv -= 1;
            }
        }
    }

    let mut result = SimResult::new(timeline);
    result.forced_sends = forced_sends;
    result
}
