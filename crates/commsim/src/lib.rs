//! Simulation of LogGP communication steps.
//!
//! This crate implements the central contribution of Rugina & Schauser
//! (IPPS'98): given a *communication pattern* — a directed graph whose nodes
//! are processors and whose edges are messages with byte lengths — determine
//! the sequence and timing of the send and receive operations each processor
//! performs under the LogGP model.
//!
//! Two algorithms are provided:
//!
//! * [`standard::simulate`] — the paper's Figure 2 algorithm: every
//!   processor sends its messages as early as possible, subject to the
//!   extended gap rule, and *receives have priority over sends* (matching
//!   the Split-C active-message runtime the paper's application used);
//! * [`worstcase::simulate`] — the paper's §4.2 overestimation algorithm:
//!   every processor first waits for (and consumes) **all** of its incoming
//!   messages before transmitting any of its own. Cyclic patterns would
//!   deadlock; the algorithm breaks the deadlock by forcing randomly chosen
//!   message transmissions. The result upper-bounds the communication time
//!   a LogGP-faithful execution can exhibit.
//!
//! Both produce a [`Timeline`] of [`CommEvent`]s which can be rendered as an
//! ASCII Gantt chart ([`gantt::render`], reproducing the paper's Figures 4
//! and 5) and independently checked against the LogGP constraints
//! ([`validate::validate`]).
//!
//! # Example: the paper's sample pattern (Figure 3)
//!
//! ```
//! use commsim::{patterns, standard, worstcase, SimConfig, validate};
//! use loggp::presets;
//!
//! let pattern = patterns::figure3();
//! let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
//! let std_run = standard::simulate(&pattern, &cfg);
//! let wc_run = worstcase::simulate(&pattern, &cfg);
//! validate::validate(&pattern, &cfg, &std_run.timeline).unwrap();
//! validate::validate(&pattern, &cfg, &wc_run.timeline).unwrap();
//! // The overestimation algorithm never finishes earlier.
//! assert!(wc_run.finish >= std_run.finish);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod formulas;
pub mod gantt;
pub mod graph;
pub mod observe;
pub mod pattern;
pub mod patterns;
pub mod reference;
pub mod replay;
mod scratch;
pub mod standard;
pub mod stats;
pub mod timeline;
pub mod validate;
pub mod worstcase;

pub use faults::StepFaults;
pub use observe::StepTracer;
pub use pattern::{CommPattern, Message, MsgId, PatternError};
pub use replay::{Recording, ReplayAlgo, StepEnds};
pub use scratch::SimScratch;
pub use timeline::{CommEvent, SimResult, Timeline};

use loggp::{GapRule, LogGpParams};

/// Tie-breaking policy when several processors share the minimum current
/// simulation time in the standard algorithm (the paper: "one of them is
/// chosen randomly").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Deterministically pick the lowest-numbered processor (default; makes
    /// simulations reproducible without a seed).
    LowestId,
    /// Pick uniformly at random among the tied processors, as in the paper.
    /// Deterministic for a fixed [`SimConfig::seed`].
    Random,
}

/// Configuration shared by both simulation algorithms.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// The machine model.
    pub params: LogGpParams,
    /// Tie-breaking policy for the standard algorithm's min-time choice.
    pub tie_break: TieBreak,
    /// RNG seed used by [`TieBreak::Random`] and by the worst-case
    /// algorithm's deadlock breaking.
    pub seed: u64,
    /// Which consecutive-operation pairs the gap separates (the paper's
    /// extended rule by default; classic same-kind-only as an ablation).
    pub gap_rule: GapRule,
}

impl SimConfig {
    /// A configuration with deterministic tie-breaking, seed 0 and the
    /// paper's extended gap rule.
    pub fn new(params: LogGpParams) -> Self {
        SimConfig {
            params,
            tie_break: TieBreak::LowestId,
            seed: 0,
            gap_rule: GapRule::Extended,
        }
    }

    /// Switch to random tie-breaking with the given seed.
    pub fn with_random_ties(mut self, seed: u64) -> Self {
        self.tie_break = TieBreak::Random;
        self.seed = seed;
        self
    }

    /// Set the RNG seed (affects [`TieBreak::Random`] and worst-case
    /// deadlock breaking).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Use the classic same-kind-only gap rule instead of the paper's
    /// extended one (model ablation).
    pub fn with_classic_gap_rule(mut self) -> Self {
        self.gap_rule = GapRule::SameKindOnly;
        self
    }
}
