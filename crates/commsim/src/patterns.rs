//! Stock communication-pattern builders.
//!
//! Includes the paper's sample pattern (Figure 3) plus the collective
//! patterns used by the applications and the test suite.

use crate::pattern::CommPattern;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Message length used throughout the paper's §4 example: 11 bytes.
///
/// The scan reads "Messages being communicated have 11 bytes each". The
/// small size matters: it makes the first messages arrive within the gap
/// window (`o + L + (k−1)·G ≤ g`), which is precisely what lets the paper
/// observe "processor 6 handles first the two receives … before sending its
/// second message to processor 7" under the receive-priority rule, and it
/// puts the step completion near the reported ~70–76 µs on the Meiko CS-2
/// parameters.
pub const FIGURE3_BYTES: usize = 11;

/// The sample communication pattern of the paper's Figure 3.
///
/// The pattern arises in the Gaussian elimination algorithm "in which the
/// processors on several diagonals of the matrix are involved in each
/// communication step": a band of early processors feeds a band of later
/// ones, which forward results further. The scan of the paper does not
/// preserve the exact edge list, so this is a *reconstruction* with the
/// properties the text describes (10 processors; all messages 1100 bytes;
/// one processor receives two messages before sending its second message;
/// several processors receive two messages; the completion time on Meiko
/// CS-2 parameters lands near the reported ~76 µs — see EXPERIMENTS.md).
///
/// Edges (0-indexed processors):
/// `0→4 0→5 1→5 1→6 2→6 2→7 3→7 3→8 4→8 5→9 5→6 6→9 7→9`
pub fn figure3() -> CommPattern {
    let mut p = CommPattern::new(10);
    let b = FIGURE3_BYTES;
    // First diagonal band: processors 0..3 each feed two of 4..8.
    p.add(0, 4, b);
    p.add(0, 5, b);
    p.add(1, 5, b);
    p.add(1, 6, b);
    p.add(2, 6, b);
    p.add(2, 7, b);
    p.add(3, 7, b);
    p.add(3, 8, b);
    // Second band forwards along the wave.
    p.add(4, 8, b);
    p.add(5, 9, b);
    p.add(5, 6, b); // P5 receives two messages before this, its 2nd send
    p.add(6, 9, b);
    p.add(7, 9, b);
    p
}

/// Unidirectional ring: processor `i` sends `bytes` to `(i+1) mod n`.
/// Cyclic — exercises the worst-case algorithm's deadlock breaking.
pub fn ring(n: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    for i in 0..n {
        p.add(i, (i + 1) % n, bytes);
    }
    p
}

/// Every processor sends `bytes` to every other processor.
pub fn all_to_all(n: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    for src in 0..n {
        for off in 1..n {
            p.add(src, (src + off) % n, bytes);
        }
    }
    p
}

/// Linear broadcast: the root sends `bytes` to every other processor, one
/// message at a time (the naive broadcast LogP work analyses).
pub fn linear_broadcast(n: usize, root: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    for dst in 0..n {
        if dst != root {
            p.add(root, dst, bytes);
        }
    }
    p
}

/// Binomial-tree broadcast from processor 0: in round r, every processor
/// that already holds the datum forwards it to its partner `i + 2^r`.
pub fn binomial_broadcast(n: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    let mut round = 1usize;
    while round < n {
        for i in 0..round.min(n) {
            let dst = i + round;
            if dst < n {
                p.add(i, dst, bytes);
            }
        }
        round *= 2;
    }
    p
}

/// Gather: every non-root processor sends `bytes` to the root.
pub fn gather(n: usize, root: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    for src in 0..n {
        if src != root {
            p.add(src, root, bytes);
        }
    }
    p
}

/// Shift (circular transpose): processor `i` sends to `(i+k) mod n`.
pub fn shift(n: usize, k: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    for i in 0..n {
        let dst = (i + k) % n;
        p.add(i, dst, bytes);
    }
    p
}

/// Reduction to processor 0 along the mirror of the binomial broadcast
/// tree: in round `r` (counting down), processor `i + 2^r` sends its
/// partial result to `i`. The pattern is the broadcast reversed, so under
/// round-chained execution its cost equals the broadcast's.
pub fn binomial_reduce(n: usize, bytes: usize) -> CommPattern {
    let mut p = CommPattern::new(n);
    let mut round = 1usize;
    let mut rounds = Vec::new();
    while round < n {
        rounds.push(round);
        round *= 2;
    }
    for &round in rounds.iter().rev() {
        for i in 0..round.min(n) {
            let src = i + round;
            if src < n {
                p.add(src, i, bytes);
            }
        }
    }
    p
}

/// One dimension of a hypercube exchange: every processor swaps `bytes`
/// with its partner across bit `dim` (processors whose `dim`-th bit
/// differs). Requires `n` to be a power of two and `dim < log2(n)`.
pub fn hypercube_exchange(n: usize, dim: usize, bytes: usize) -> CommPattern {
    assert!(
        n.is_power_of_two(),
        "hypercube needs a power-of-two processor count"
    );
    assert!(
        1usize << dim < n,
        "dimension {dim} out of range for {n} processors"
    );
    let mut p = CommPattern::new(n);
    for i in 0..n {
        p.add(i, i ^ (1 << dim), bytes);
    }
    p
}

/// Scatter: the root sends a *distinct* `bytes`-sized piece to every other
/// processor (identical in shape to [`linear_broadcast`]; kept separate
/// because applications distinguish the two semantically).
pub fn scatter(n: usize, root: usize, bytes: usize) -> CommPattern {
    linear_broadcast(n, root, bytes)
}

/// A random pattern: `msgs` messages with endpoints drawn uniformly (self
/// messages allowed — they are ignored by the simulators, as in the paper)
/// and lengths in `1..=max_bytes`. Deterministic per seed.
pub fn random(n: usize, msgs: usize, max_bytes: usize, seed: u64) -> CommPattern {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = CommPattern::new(n);
    for _ in 0..msgs {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let bytes = rng.gen_range(1..=max_bytes.max(1));
        p.add(src, dst, bytes);
    }
    p
}

/// A random *acyclic* pattern: messages only flow from lower- to
/// higher-numbered processors, so the worst-case algorithm never deadlocks.
pub fn random_dag(n: usize, msgs: usize, max_bytes: usize, seed: u64) -> CommPattern {
    assert!(n >= 2, "need at least two processors for a DAG pattern");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = CommPattern::new(n);
    for _ in 0..msgs {
        let src = rng.gen_range(0..n - 1);
        let dst = rng.gen_range(src + 1..n);
        let bytes = rng.gen_range(1..=max_bytes.max(1));
        p.add(src, dst, bytes);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape() {
        let p = figure3();
        assert_eq!(p.procs(), 10);
        assert_eq!(p.len(), 13);
        assert!(p.messages().iter().all(|m| m.bytes == FIGURE3_BYTES));
        assert!(!p.has_cycle());
        // P5 receives two messages and sends two.
        assert_eq!(p.recv_counts()[5], 2);
        assert_eq!(p.send_counts()[5], 2);
        // P9 is the sink of the wave.
        assert_eq!(p.recv_counts()[9], 3);
        assert_eq!(p.send_counts()[9], 0);
    }

    #[test]
    fn ring_is_cyclic_others_not() {
        assert!(ring(4, 1).has_cycle());
        assert!(!binomial_broadcast(8, 1).has_cycle());
        assert!(!linear_broadcast(8, 0, 1).has_cycle());
        assert!(!gather(8, 0, 1).has_cycle());
        assert!(!random_dag(8, 30, 100, 3).has_cycle());
    }

    #[test]
    fn all_to_all_counts() {
        let p = all_to_all(5, 10);
        assert_eq!(p.len(), 20);
        assert_eq!(p.send_counts(), vec![4; 5]);
        assert_eq!(p.recv_counts(), vec![4; 5]);
    }

    #[test]
    fn binomial_broadcast_reaches_everyone() {
        for n in 1..20 {
            let p = binomial_broadcast(n, 8);
            let mut has = vec![false; n];
            if n > 0 {
                has[0] = true;
            }
            for m in p.messages() {
                assert!(has[m.src], "P{} sent before receiving (n={n})", m.src);
                has[m.dst] = true;
            }
            assert!(has.iter().all(|&h| h), "n={n}");
            if n > 1 {
                assert_eq!(p.len(), n - 1);
            }
        }
    }

    #[test]
    fn shift_wraps() {
        let p = shift(4, 1, 5);
        assert_eq!(p.messages()[3].dst, 0);
        assert!(p.has_cycle());
    }

    #[test]
    fn binomial_reduce_mirrors_broadcast() {
        for n in [1usize, 2, 5, 8, 13] {
            let bcast = binomial_broadcast(n, 7);
            let reduce = binomial_reduce(n, 7);
            assert_eq!(bcast.len(), reduce.len(), "n={n}");
            // Every broadcast edge appears reversed in the reduction.
            let mut fwd: Vec<(usize, usize)> =
                bcast.messages().iter().map(|m| (m.src, m.dst)).collect();
            let mut rev: Vec<(usize, usize)> =
                reduce.messages().iter().map(|m| (m.dst, m.src)).collect();
            fwd.sort_unstable();
            rev.sort_unstable();
            assert_eq!(fwd, rev, "n={n}");
        }
        // All partials end up at processor 0.
        let r = binomial_reduce(8, 1);
        assert_eq!(r.recv_counts()[0], 3);
    }

    #[test]
    fn hypercube_exchange_pairs() {
        let p = hypercube_exchange(8, 1, 10);
        assert_eq!(p.len(), 8);
        for m in p.messages() {
            assert_eq!(m.src ^ m.dst, 2);
        }
        assert!(p.has_cycle(), "exchanges are mutual");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn hypercube_rejects_odd_sizes() {
        let _ = hypercube_exchange(6, 0, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hypercube_rejects_big_dim() {
        let _ = hypercube_exchange(8, 3, 1);
    }

    #[test]
    fn scatter_is_root_fan_out() {
        let p = scatter(5, 2, 9);
        assert_eq!(p.send_counts()[2], 4);
        assert_eq!(p.recv_counts()[2], 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = random(6, 20, 1000, 9);
        let b = random(6, 20, 1000, 9);
        let c = random(6, 20, 1000, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 20);
    }

    #[test]
    fn random_dag_edges_go_forward() {
        let p = random_dag(10, 50, 64, 1);
        for m in p.messages() {
            assert!(m.src < m.dst);
        }
    }
}
