//! Independent checker of simulated timelines against the LogGP model.
//!
//! The simulation algorithms *construct* schedules; this module *verifies*
//! them, re-deriving every constraint from scratch so that a bug in the
//! simulator cannot hide in the checker. Used heavily by unit and property
//! tests, and available to downstream users who build their own schedules.

use crate::pattern::CommPattern;
use crate::timeline::Timeline;
use crate::SimConfig;
use loggp::{OpKind, Time};
use std::collections::BTreeMap;
use std::fmt;

/// What to check beyond the hard LogGP model rules.
#[derive(Clone, Copy, Debug)]
pub struct ValidateOptions {
    /// Require each processor's *sends* to appear in program order (a
    /// property of the standard algorithm; the worst-case algorithm
    /// preserves it per round but the checker would need round boundaries).
    pub check_send_program_order: bool,
    /// Require each processor's *receives* to be ordered by message arrival
    /// time (both algorithms produce this).
    pub check_recv_arrival_order: bool,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            check_send_program_order: true,
            check_recv_arrival_order: true,
        }
    }
}

/// A violated constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An operation's duration differs from the overhead `o`.
    WrongOverhead {
        /// Processor at fault.
        proc: usize,
        /// Message involved.
        msg_id: usize,
        /// Observed duration.
        got: Time,
    },
    /// Two consecutive operations at a processor start less than `g` apart.
    GapViolated {
        /// Processor at fault.
        proc: usize,
        /// Earlier message.
        first: usize,
        /// Later message.
        second: usize,
        /// Observed separation.
        separation: Time,
    },
    /// Two operations at a processor overlap (single-port rule).
    PortViolated {
        /// Processor at fault.
        proc: usize,
        /// Earlier message.
        first: usize,
        /// Later message.
        second: usize,
    },
    /// A receive starts before its message could have arrived.
    ReceivedBeforeArrival {
        /// Message involved.
        msg_id: usize,
        /// Earliest legal start.
        arrival: Time,
        /// Observed receive start.
        start: Time,
    },
    /// The timeline's messages don't match the pattern (missing/extra/dup).
    MessageMismatch {
        /// Explanation.
        detail: String,
    },
    /// Sends of a processor out of program order.
    SendOrder {
        /// Processor at fault.
        proc: usize,
        /// Earlier-sent message with the larger program index.
        first: usize,
        /// Later-sent message with the smaller program index.
        second: usize,
    },
    /// Receives of a processor out of arrival order.
    RecvOrder {
        /// Processor at fault.
        proc: usize,
        /// Earlier-received message with the later arrival.
        first: usize,
        /// Later-received message with the earlier arrival.
        second: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongOverhead { proc, msg_id, got } => {
                write!(f, "P{proc}: op for msg {msg_id} lasted {got}, not o")
            }
            Violation::GapViolated {
                proc,
                first,
                second,
                separation,
            } => write!(
                f,
                "P{proc}: ops for msgs {first},{second} start only {separation} apart (< g)"
            ),
            Violation::PortViolated {
                proc,
                first,
                second,
            } => {
                write!(f, "P{proc}: ops for msgs {first},{second} overlap")
            }
            Violation::ReceivedBeforeArrival {
                msg_id,
                arrival,
                start,
            } => {
                write!(
                    f,
                    "msg {msg_id} received at {start}, before arrival {arrival}"
                )
            }
            Violation::MessageMismatch { detail } => write!(f, "message mismatch: {detail}"),
            Violation::SendOrder {
                proc,
                first,
                second,
            } => {
                write!(
                    f,
                    "P{proc}: send of msg {first} before msg {second} breaks program order"
                )
            }
            Violation::RecvOrder {
                proc,
                first,
                second,
            } => {
                write!(
                    f,
                    "P{proc}: recv of msg {first} before msg {second} breaks arrival order"
                )
            }
        }
    }
}

/// Check `timeline` against the LogGP model for `pattern` with default
/// options. Returns all violations found (empty ⇒ valid).
pub fn validate(
    pattern: &CommPattern,
    cfg: &SimConfig,
    timeline: &Timeline,
) -> Result<(), Vec<Violation>> {
    validate_opts(pattern, cfg, timeline, &ValidateOptions::default())
}

/// [`validate`] with explicit options.
pub fn validate_opts(
    pattern: &CommPattern,
    cfg: &SimConfig,
    timeline: &Timeline,
    opts: &ValidateOptions,
) -> Result<(), Vec<Violation>> {
    let params = &cfg.params;
    let mut violations = Vec::new();

    // --- message accounting -------------------------------------------------
    // Both maps are iterated to emit violations; BTreeMap keeps diagnostic
    // order stable (message-id order) across runs.
    let expected: BTreeMap<usize, (usize, usize, usize)> = pattern
        .network_messages()
        .map(|m| (m.id, (m.src, m.dst, m.bytes)))
        .collect();
    let pairs = timeline.message_pairs();
    for (&id, &(src, dst, bytes)) in &expected {
        match pairs.get(&id) {
            Some((Some(s), Some(r))) => {
                if s.proc != src || r.proc != dst || s.bytes != bytes || r.bytes != bytes {
                    violations.push(Violation::MessageMismatch {
                        detail: format!("msg {id} endpoints/length differ from pattern"),
                    });
                }
            }
            _ => violations.push(Violation::MessageMismatch {
                detail: format!("msg {id} missing send or receive event"),
            }),
        }
    }
    for id in pairs.keys() {
        if !expected.contains_key(id) {
            violations.push(Violation::MessageMismatch {
                detail: format!("msg {id} not in pattern (self-message or phantom)"),
            });
        }
    }
    if timeline.len() != 2 * expected.len() {
        violations.push(Violation::MessageMismatch {
            detail: format!(
                "expected {} events (2 per message), found {}",
                2 * expected.len(),
                timeline.len()
            ),
        });
    }

    // --- arrival rule --------------------------------------------------------
    for (id, (send, recv)) in &pairs {
        if let (Some(s), Some(r)) = (send, recv) {
            let arrival = params.arrival_time(s.start, s.bytes);
            if r.start < arrival {
                violations.push(Violation::ReceivedBeforeArrival {
                    msg_id: *id,
                    arrival,
                    start: r.start,
                });
            }
        }
    }

    // --- per-processor rules -------------------------------------------------
    for (proc, evs) in timeline.sorted_by_proc().into_iter().enumerate() {
        for e in &evs {
            if e.end - e.start != params.overhead {
                violations.push(Violation::WrongOverhead {
                    proc,
                    msg_id: e.msg_id,
                    got: e.end - e.start,
                });
            }
        }
        // Single-port rule between all consecutive operations.
        for w in evs.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if b.start < a.end {
                violations.push(Violation::PortViolated {
                    proc,
                    first: a.msg_id,
                    second: b.msg_id,
                });
            }
        }
        // Gap rule: between all pairs (extended) or per kind (classic).
        match cfg.gap_rule {
            loggp::GapRule::Extended => {
                for w in evs.windows(2) {
                    let (a, b) = (&w[0], &w[1]);
                    let separation = b.start.saturating_sub(a.start);
                    if separation < params.gap {
                        violations.push(Violation::GapViolated {
                            proc,
                            first: a.msg_id,
                            second: b.msg_id,
                            separation,
                        });
                    }
                }
            }
            loggp::GapRule::SameKindOnly => {
                for kind in [OpKind::Send, OpKind::Recv] {
                    let same: Vec<_> = evs.iter().filter(|e| e.kind == kind).collect();
                    for w in same.windows(2) {
                        let separation = w[1].start.saturating_sub(w[0].start);
                        if separation < params.gap {
                            violations.push(Violation::GapViolated {
                                proc,
                                first: w[0].msg_id,
                                second: w[1].msg_id,
                                separation,
                            });
                        }
                    }
                }
            }
        }
        if opts.check_send_program_order {
            let sends: Vec<_> = evs.iter().filter(|e| e.kind == OpKind::Send).collect();
            for w in sends.windows(2) {
                if w[0].msg_id > w[1].msg_id {
                    violations.push(Violation::SendOrder {
                        proc,
                        first: w[0].msg_id,
                        second: w[1].msg_id,
                    });
                }
            }
        }
        if opts.check_recv_arrival_order {
            let recvs: Vec<_> = evs.iter().filter(|e| e.kind == OpKind::Recv).collect();
            for w in recvs.windows(2) {
                let arr = |e: &crate::timeline::CommEvent| {
                    pairs
                        .get(&e.msg_id)
                        .and_then(|(s, _)| s.as_ref())
                        .map(|s| params.arrival_time(s.start, s.bytes))
                };
                if let (Some(a0), Some(a1)) = (arr(w[0]), arr(w[1])) {
                    if a0 > a1 {
                        violations.push(Violation::RecvOrder {
                            proc,
                            first: w[0].msg_id,
                            second: w[1].msg_id,
                        });
                    }
                }
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::CommEvent;
    use loggp::presets;

    fn cfg2() -> SimConfig {
        SimConfig::new(presets::meiko_cs2(2))
    }

    fn one_msg_pattern() -> CommPattern {
        let mut p = CommPattern::new(2);
        p.add(0, 1, 100);
        p
    }

    /// A hand-built correct timeline for the one-message pattern.
    fn good_timeline(cfg: &SimConfig) -> Timeline {
        let o = cfg.params.overhead;
        let mut t = Timeline::new(2);
        t.push(CommEvent {
            proc: 0,
            kind: OpKind::Send,
            peer: 1,
            bytes: 100,
            msg_id: 0,
            start: Time::ZERO,
            end: o,
        });
        let arrival = cfg.params.arrival_time(Time::ZERO, 100);
        t.push(CommEvent {
            proc: 1,
            kind: OpKind::Recv,
            peer: 0,
            bytes: 100,
            msg_id: 0,
            start: arrival,
            end: arrival + o,
        });
        t
    }

    #[test]
    fn accepts_correct_timeline() {
        let cfg = cfg2();
        validate(&one_msg_pattern(), &cfg, &good_timeline(&cfg)).unwrap();
    }

    #[test]
    fn rejects_early_receive() {
        let cfg = cfg2();
        let mut t = good_timeline(&cfg);
        // Pull the receive one microsecond early.
        let mut bad = t.events()[1];
        bad.start -= Time::from_us(1.0);
        bad.end -= Time::from_us(1.0);
        let mut t2 = Timeline::new(2);
        t2.push(t.events()[0]);
        t2.push(bad);
        t = t2;
        let errs = validate(&one_msg_pattern(), &cfg, &t).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::ReceivedBeforeArrival { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_missing_receive() {
        let cfg = cfg2();
        let full = good_timeline(&cfg);
        let mut t = Timeline::new(2);
        t.push(full.events()[0]);
        let errs = validate(&one_msg_pattern(), &cfg, &t).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::MessageMismatch { .. })));
    }

    #[test]
    fn rejects_gap_violation() {
        let cfg = cfg2();
        let o = cfg.params.overhead;
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        pattern.add(0, 1, 1);
        let mut t = Timeline::new(2);
        // Two sends back-to-back with only `o` separation (o < g).
        for (i, start) in [(0usize, Time::ZERO), (1usize, o)] {
            t.push(CommEvent {
                proc: 0,
                kind: OpKind::Send,
                peer: 1,
                bytes: 1,
                msg_id: i,
                start,
                end: start + o,
            });
            let arrival = cfg.params.arrival_time(start, 1);
            t.push(CommEvent {
                proc: 1,
                kind: OpKind::Recv,
                peer: 0,
                bytes: 1,
                msg_id: i,
                start: arrival + cfg.params.gap * i as u64,
                end: arrival + cfg.params.gap * i as u64 + o,
            });
        }
        let errs = validate(&pattern, &cfg, &t).unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, Violation::GapViolated { proc: 0, .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_wrong_overhead_and_overlap() {
        let cfg = cfg2();
        let mut pattern = CommPattern::new(2);
        pattern.add(0, 1, 1);
        let mut t = Timeline::new(2);
        t.push(CommEvent {
            proc: 0,
            kind: OpKind::Send,
            peer: 1,
            bytes: 1,
            msg_id: 0,
            start: Time::ZERO,
            end: Time::from_us(1.0), // != o
        });
        let arrival = cfg.params.arrival_time(Time::ZERO, 1);
        t.push(CommEvent {
            proc: 1,
            kind: OpKind::Recv,
            peer: 0,
            bytes: 1,
            msg_id: 0,
            start: arrival,
            end: arrival + cfg.params.overhead,
        });
        let errs = validate(&pattern, &cfg, &t).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::WrongOverhead { .. })));
    }

    #[test]
    fn rejects_phantom_message() {
        let cfg = cfg2();
        let pattern = CommPattern::new(2); // empty!
        let t = good_timeline(&cfg);
        let errs = validate(&pattern, &cfg, &t).unwrap_err();
        assert!(errs.iter().any(
            |v| matches!(v, Violation::MessageMismatch { detail } if detail.contains("phantom") || detail.contains("not in pattern"))
        ));
    }

    #[test]
    fn diagnostic_order_is_stable_across_runs() {
        // Several missing receives + several phantom messages at once: the
        // violation list must come out in message-id order, every time
        // (previously it followed HashMap iteration order).
        let cfg = cfg2();
        let o = cfg.params.overhead;
        let mut pattern = CommPattern::new(2);
        for _ in 0..4 {
            pattern.add(0, 1, 1); // ids 0..4, receives never recorded
        }
        let mut t = Timeline::new(2);
        for id in [7usize, 5, 9, 6] {
            t.push(CommEvent {
                proc: 0,
                kind: OpKind::Send,
                peer: 1,
                bytes: 1,
                msg_id: id,
                start: Time::from_us(id as f64 * 20.0),
                end: Time::from_us(id as f64 * 20.0) + o,
            });
        }
        let first: Vec<String> = validate(&pattern, &cfg, &t)
            .unwrap_err()
            .iter()
            .map(|v| v.to_string())
            .collect();
        let missing: Vec<&String> = first.iter().filter(|s| s.contains("missing")).collect();
        let phantom: Vec<&String> = first.iter().filter(|s| s.contains("phantom")).collect();
        assert_eq!(missing.len(), 4);
        assert_eq!(phantom.len(), 4);
        // Message-id order within each diagnostic class.
        for (i, s) in missing.iter().enumerate() {
            assert!(s.contains(&format!("msg {i} ")), "{s}");
        }
        for (want, s) in [5usize, 6, 7, 9].iter().zip(&phantom) {
            assert!(s.contains(&format!("msg {want} ")), "{s}");
        }
        for _ in 0..10 {
            let again: Vec<String> = validate(&pattern, &cfg, &t)
                .unwrap_err()
                .iter()
                .map(|v| v.to_string())
                .collect();
            assert_eq!(again, first);
        }
    }

    #[test]
    fn violations_have_readable_display() {
        let v = Violation::GapViolated {
            proc: 3,
            first: 1,
            second: 2,
            separation: Time::from_us(4.0),
        };
        assert!(v.to_string().contains("P3"));
    }
}
