//! Closed-form LogGP running times for *regular* communication patterns —
//! the approach of the prior work the paper positions itself against
//! ("the program running time was expressed using explicit formulas"), and
//! a set of independent differential oracles for the simulator: for every
//! pattern with a known formula, the standard algorithm must reproduce the
//! formula exactly.
//!
//! All formulas assume the extended gap rule with `g ≥ o` (every preset
//! satisfies it; the functions assert it), idle receivers, and messages of
//! equal length `k` with wire time `w = (k−1)·G`.

use crate::pattern::CommPattern;
use crate::standard;
use crate::SimConfig;
use loggp::{LogGpParams, Time};

fn wire(params: &LogGpParams, bytes: usize) -> Time {
    params.wire_time(bytes)
}

fn assert_regular(params: &LogGpParams) {
    assert!(
        params.gap >= params.overhead,
        "closed forms here assume g >= o (as in LogP/LogGP and all presets)"
    );
}

/// Point-to-point time of one `k`-byte message: `o + (k−1)G + L + o`.
pub fn point_to_point(params: &LogGpParams, bytes: usize) -> Time {
    params.message_cost(bytes)
}

/// Linear (flat) broadcast of `k` bytes from a root to `p−1` receivers:
/// the root issues sends every `g`; the last message leaves at
/// `(p−2)·g`, arrives `o + w + L` later, and costs the receiver `o`:
///
/// `T = (p−2)·g + o + (k−1)G + L + o`   (for `p ≥ 2`).
pub fn linear_broadcast(params: &LogGpParams, p: usize, bytes: usize) -> Time {
    assert_regular(params);
    assert!(p >= 2, "broadcast needs at least two processors");
    params.gap * (p as u64 - 2) + params.message_cost(bytes)
}

/// Gather of `k` bytes from `p−1` senders to a root: all messages are sent
/// at time 0 and arrive simultaneously at `o + w + L`; the root's receives
/// then serialize at one per `g`:
///
/// `T = o + (k−1)G + L + (p−2)·g + o`   (for `p ≥ 2`).
pub fn gather(params: &LogGpParams, p: usize, bytes: usize) -> Time {
    assert_regular(params);
    assert!(p >= 2, "gather needs at least two processors");
    params.overhead
        + wire(params, bytes)
        + params.latency
        + params.gap * (p as u64 - 2)
        + params.overhead
}

/// Circular shift (every processor sends one `k`-byte message and receives
/// one): all sends start at 0; each receive starts at
/// `max(o + w + L, g)` (arrival vs. the gap after the send):
///
/// `T = max(o + (k−1)G + L, g) + o`.
pub fn shift(params: &LogGpParams, bytes: usize) -> Time {
    assert_regular(params);
    let arrival = params.overhead + wire(params, bytes) + params.latency;
    arrival.max(params.gap) + params.overhead
}

/// Binomial-tree broadcast of `k` bytes from processor 0 over `p`
/// processors, executed as **one communication step per round** (a
/// broadcast has a data dependence between rounds, so the oblivious
/// program for it is a multi-step program; within a single step the
/// simulators rightly let every send go eagerly).
///
/// Computed by the natural recursion under the round-chained semantics of
/// the whole-program simulator (fresh operation clocks per step, a
/// processor entering a step when its previous one ended): in round `r`
/// every holder `i < 2^r` sends to `i + 2^r` at its ready time; the
/// message arrives `o + (k−1)G + L` later; the destination receives at
/// `max(arrival, its ready)` and is ready `o` after that. Returns the
/// instant the last processor becomes ready.
pub fn binomial_broadcast(params: &LogGpParams, p: usize, bytes: usize) -> Time {
    assert_regular(params);
    assert!(p >= 1);
    let mut ready = vec![Time::ZERO; p];
    let mut round = 1usize;
    while round < p {
        for i in 0..round.min(p) {
            let dst = i + round;
            if dst >= p {
                continue;
            }
            let send_start = ready[i];
            let arrival = params.arrival_time(send_start, bytes);
            let recv_start = arrival.max(ready[dst]);
            ready[i] = send_start + params.overhead;
            ready[dst] = recv_start + params.overhead;
        }
        round *= 2;
    }
    ready.into_iter().max().unwrap_or(Time::ZERO)
}

/// The per-round communication patterns of the binomial broadcast used by
/// [`binomial_broadcast`] (round `r`: `i → i + 2^r`), for feeding the
/// simulators step by step.
pub fn binomial_broadcast_rounds(p: usize, bytes: usize) -> Vec<CommPattern> {
    let mut rounds = Vec::new();
    let mut round = 1usize;
    while round < p {
        let mut pat = CommPattern::new(p);
        for i in 0..round.min(p) {
            let dst = i + round;
            if dst < p {
                pat.add(i, dst, bytes);
            }
        }
        rounds.push(pat);
        round *= 2;
    }
    rounds
}

/// Lower bound for any schedule of an arbitrary pattern: no step can beat
/// its costliest message, nor the gap-limited operation rate of its
/// busiest processor.
pub fn lower_bound(params: &LogGpParams, pattern: &CommPattern) -> Time {
    let per_msg = pattern
        .network_messages()
        .map(|m| params.message_cost(m.bytes))
        .max()
        .unwrap_or(Time::ZERO);
    let sends = pattern.send_counts();
    let recvs = pattern.recv_counts();
    let per_proc = (0..pattern.procs())
        .map(|p| {
            let n = (sends[p] + recvs[p]) as u64;
            if n == 0 {
                Time::ZERO
            } else {
                params.gap * (n - 1) + params.overhead
            }
        })
        .max()
        .unwrap_or(Time::ZERO);
    per_msg.max(per_proc)
}

/// Convenience: run the standard simulator on `pattern` and return its
/// completion (used by the differential tests and the baseline bench).
pub fn simulated(params: &LogGpParams, pattern: &CommPattern) -> Time {
    standard::simulate(pattern, &SimConfig::new(*params)).finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns;
    use loggp::presets;

    fn machines() -> Vec<LogGpParams> {
        vec![
            presets::meiko_cs2(64),
            presets::intel_paragon(64),
            presets::myrinet_cluster(64),
            presets::ethernet_cluster(64),
        ]
    }

    #[test]
    fn point_to_point_matches_simulation() {
        for params in machines() {
            for bytes in [1, 64, 1100, 100_000] {
                let mut pat = CommPattern::new(2);
                pat.add(0, 1, bytes);
                assert_eq!(simulated(&params, &pat), point_to_point(&params, bytes));
            }
        }
    }

    #[test]
    fn linear_broadcast_matches_simulation() {
        for params in machines() {
            for p in [2usize, 3, 8, 17] {
                for bytes in [1, 1024] {
                    let pat = patterns::linear_broadcast(p, 0, bytes);
                    assert_eq!(
                        simulated(&params, &pat),
                        linear_broadcast(&params, p, bytes),
                        "p={p} bytes={bytes} on {params}"
                    );
                }
            }
        }
    }

    #[test]
    fn gather_matches_simulation() {
        for params in machines() {
            for p in [2usize, 5, 16] {
                for bytes in [1, 4096] {
                    let pat = patterns::gather(p, 0, bytes);
                    assert_eq!(
                        simulated(&params, &pat),
                        gather(&params, p, bytes),
                        "p={p} bytes={bytes} on {params}"
                    );
                }
            }
        }
    }

    #[test]
    fn shift_matches_simulation() {
        for params in machines() {
            for n in [2usize, 4, 9] {
                for k in [1usize, 3] {
                    for bytes in [1, 2000] {
                        if k % n == 0 {
                            continue; // self-shift: nothing on the network
                        }
                        let pat = patterns::shift(n, k, bytes);
                        assert_eq!(
                            simulated(&params, &pat),
                            shift(&params, bytes),
                            "n={n} k={k} bytes={bytes} on {params}"
                        );
                    }
                }
            }
        }
    }

    /// Chain the per-round patterns through the standard simulator the way
    /// the whole-program simulator does, and compare with the recursion.
    #[test]
    fn binomial_broadcast_matches_round_chained_simulation() {
        for params in machines() {
            for p in [1usize, 2, 3, 4, 7, 8, 16, 31] {
                for bytes in [1, 512] {
                    let cfg = SimConfig::new(params);
                    let mut ready = vec![Time::ZERO; p];
                    for pat in binomial_broadcast_rounds(p, bytes) {
                        let r = standard::simulate_from(&pat, &cfg, &ready);
                        for ev in r.timeline.events() {
                            ready[ev.proc] = ready[ev.proc].max(ev.end);
                        }
                    }
                    let sim = ready.into_iter().max().unwrap_or(Time::ZERO);
                    assert_eq!(
                        sim,
                        binomial_broadcast(&params, p, bytes),
                        "p={p} bytes={bytes} on {params}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        for params in machines() {
            for seed in 0..10 {
                let pat = patterns::random(8, 30, 4096, seed);
                assert!(simulated(&params, &pat) >= lower_bound(&params, &pat));
            }
            let a2a = patterns::all_to_all(8, 1024);
            assert!(simulated(&params, &a2a) >= lower_bound(&params, &a2a));
        }
    }

    #[test]
    fn broadcast_beats_linear_for_large_p() {
        // The whole point of tree broadcasts under LogGP.
        let params = presets::meiko_cs2(64);
        assert!(
            binomial_broadcast(&params, 32, 64) < linear_broadcast(&params, 32, 64),
            "binomial must beat linear at p=32"
        );
        // ... but not necessarily for tiny p where pipelining wins.
        assert_eq!(
            binomial_broadcast(&params, 2, 64),
            linear_broadcast(&params, 2, 64)
        );
    }

    #[test]
    #[should_panic(expected = "g >= o")]
    fn formulas_reject_g_below_o() {
        let bad = LogGpParams::from_us(1.0, 10.0, 2.0, 0.0, 4);
        let _ = linear_broadcast(&bad, 4, 10);
    }
}
