//! Property-based tests for the communication simulators.
//!
//! The key oracle is `commsim::validate`, an independent re-derivation of
//! every LogGP constraint: whatever pattern and parameters are thrown at
//! the simulators, the schedules they emit must satisfy the model.

use commsim::validate::{validate, validate_opts, ValidateOptions};
use commsim::{patterns, standard, worstcase, CommPattern, SimConfig, TieBreak};
use loggp::{LogGpParams, Time};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = LogGpParams> {
    (
        0u64..50_000, // L ns
        1u64..20_000, // o ns
        0u64..50_000, // gap surplus over o, ns
        0u64..100,    // G ns/byte
    )
        .prop_map(|(l, o, extra, g)| LogGpParams {
            latency: Time::from_ns(l),
            overhead: Time::from_ns(o),
            gap: Time::from_ns(o + extra),
            gap_per_byte: Time::from_ns(g),
            procs: 0, // fixed up by caller
        })
}

fn arb_pattern() -> impl Strategy<Value = CommPattern> {
    (2usize..12, 0usize..40, proptest::bool::ANY, any::<u64>()).prop_map(|(n, msgs, dag, seed)| {
        if dag {
            patterns::random_dag(n, msgs, 4096, seed)
        } else {
            patterns::random(n, msgs, 4096, seed)
        }
    })
}

fn wc_options() -> ValidateOptions {
    ValidateOptions {
        check_send_program_order: false,
        check_recv_arrival_order: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The standard algorithm always emits a LogGP-valid schedule, for any
    /// pattern (cyclic or not), parameters and tie-break policy.
    #[test]
    fn standard_schedules_are_valid(
        params in arb_params(),
        pattern in arb_pattern(),
        random_ties in proptest::bool::ANY,
        seed in any::<u64>(),
    ) {
        let params = params.with_procs(pattern.procs());
        let mut cfg = SimConfig::new(params).with_seed(seed);
        if random_ties {
            cfg.tie_break = TieBreak::Random;
        }
        let r = standard::simulate(&pattern, &cfg);
        if let Err(errs) = validate(&pattern, &cfg, &r.timeline) {
            prop_assert!(false, "violations: {errs:?}");
        }
        // Exactly two events per network message.
        prop_assert_eq!(r.timeline.len(), 2 * pattern.network_messages().count());
    }

    /// The worst-case algorithm always emits a LogGP-valid schedule too,
    /// breaking deadlocks when the pattern is cyclic.
    #[test]
    fn worstcase_schedules_are_valid(
        params in arb_params(),
        pattern in arb_pattern(),
        seed in any::<u64>(),
    ) {
        let params = params.with_procs(pattern.procs());
        let cfg = SimConfig::new(params).with_seed(seed);
        let r = worstcase::simulate(&pattern, &cfg);
        if let Err(errs) = validate_opts(&pattern, &cfg, &r.timeline, &wc_options()) {
            prop_assert!(false, "violations: {errs:?}");
        }
        prop_assert_eq!(r.timeline.len(), 2 * pattern.network_messages().count());
        if !pattern.has_cycle() {
            prop_assert_eq!(r.forced_sends, 0);
        }
    }

    /// On acyclic patterns, the overestimation algorithm never finishes
    /// before the standard one (it only ever *delays* sends) — the paper's
    /// upper-bound claim.
    #[test]
    fn worstcase_upper_bounds_standard_on_dags(
        params in arb_params(),
        (n, msgs, seed) in (2usize..10, 0usize..30, any::<u64>()),
    ) {
        let pattern = patterns::random_dag(n, msgs, 2048, seed);
        let params = params.with_procs(n);
        let cfg = SimConfig::new(params);
        let st = standard::simulate(&pattern, &cfg);
        let wc = worstcase::simulate(&pattern, &cfg);
        prop_assert!(
            wc.finish >= st.finish,
            "worst-case {} < standard {}", wc.finish, st.finish
        );
    }

    /// Under the classic (same-kind-only) gap rule, schedules are still
    /// valid against the rule-aware validator, and they never finish
    /// *later* than the extended rule's schedule on DAG patterns... in
    /// fact that bound is NOT sound (scheduling anomalies), so assert only
    /// validity plus the hard lower bounds.
    #[test]
    fn classic_gap_rule_schedules_valid(
        params in arb_params(),
        pattern in arb_pattern(),
    ) {
        let params = params.with_procs(pattern.procs());
        let cfg = SimConfig::new(params).with_classic_gap_rule();
        let r = standard::simulate(&pattern, &cfg);
        if let Err(errs) = validate(&pattern, &cfg, &r.timeline) {
            prop_assert!(false, "violations: {errs:?}");
        }
        for m in pattern.network_messages() {
            prop_assert!(r.finish >= params.message_cost(m.bytes));
        }
        let wc = worstcase::simulate(&pattern, &cfg);
        if let Err(errs) = validate_opts(&pattern, &cfg, &wc.timeline, &wc_options()) {
            prop_assert!(false, "wc violations: {errs:?}");
        }
    }

    /// A classic-rule schedule would generally violate the extended rule
    /// (mixed pairs squeezed to o < g) — the validator distinguishes the
    /// two models.
    #[test]
    fn rules_are_actually_different(seed in any::<u64>()) {
        // A pattern guaranteed to interleave kinds at one processor:
        // P1 receives then sends repeatedly.
        let mut pattern = CommPattern::new(3);
        for _ in 0..4 {
            pattern.add(0, 1, 1);
            pattern.add(1, 2, 1);
        }
        let params = loggp::presets::meiko_cs2(3);
        let classic = SimConfig::new(params).with_classic_gap_rule().with_seed(seed);
        let r = standard::simulate(&pattern, &classic);
        // Valid under classic...
        prop_assert!(validate(&pattern, &classic, &r.timeline).is_ok());
        // ...but the same timeline fails the extended validator.
        let extended = SimConfig::new(params).with_seed(seed);
        prop_assert!(validate(&pattern, &extended, &r.timeline).is_err());
    }

    /// Simulations are deterministic: same inputs, same timeline.
    #[test]
    fn simulations_are_deterministic(
        params in arb_params(),
        pattern in arb_pattern(),
        seed in any::<u64>(),
    ) {
        let params = params.with_procs(pattern.procs());
        let cfg = SimConfig::new(params).with_random_ties(seed);
        let a = standard::simulate(&pattern, &cfg);
        let b = standard::simulate(&pattern, &cfg);
        prop_assert_eq!(a.timeline.events(), b.timeline.events());
        let c = worstcase::simulate(&pattern, &cfg);
        let d = worstcase::simulate(&pattern, &cfg);
        prop_assert_eq!(c.timeline.events(), d.timeline.events());
    }

    /// NOTE: completion time is *not* monotone in the LogGP parameters —
    /// greedy receive-priority scheduling exhibits Graham-type anomalies
    /// (the paper notes a single late message "can completely change" the
    /// schedule; proptest found a concrete instance where increasing G
    /// shortened the step). What *does* hold are hard lower bounds:
    /// the step can never beat the cost of its most expensive message, nor
    /// the gap-limited operation rate of its busiest processor.
    #[test]
    fn completion_respects_lower_bounds(
        params in arb_params(),
        pattern in arb_pattern(),
    ) {
        let params = params.with_procs(pattern.procs());
        let cfg = SimConfig::new(params);
        let r = standard::simulate(&pattern, &cfg);
        for m in pattern.network_messages() {
            prop_assert!(r.finish >= params.message_cost(m.bytes),
                "finish {} < message cost {}", r.finish, params.message_cost(m.bytes));
        }
        let sends = pattern.send_counts();
        let recvs = pattern.recv_counts();
        for p in 0..pattern.procs() {
            let n = (sends[p] + recvs[p]) as u64;
            if n > 0 {
                let bound = params.gap * (n - 1) + params.overhead;
                prop_assert!(r.finish >= bound,
                    "finish {} < P{p} rate bound {}", r.finish, bound);
            }
        }
    }

    /// Per-processor busy time equals 2·o·(messages it handles) — every
    /// send and receive costs exactly o, nothing more, nothing less.
    #[test]
    fn busy_time_accounting(params in arb_params(), pattern in arb_pattern()) {
        let params = params.with_procs(pattern.procs());
        let cfg = SimConfig::new(params);
        let r = standard::simulate(&pattern, &cfg);
        let sends = pattern.send_counts();
        let recvs = pattern.recv_counts();
        for p in 0..pattern.procs() {
            let expect = params.overhead * (sends[p] + recvs[p]) as u64;
            prop_assert_eq!(r.timeline.busy_time(p), expect);
        }
    }

    /// Uniformly scaling all four time parameters scales every event time
    /// by the same factor (the model has no intrinsic time scale).
    #[test]
    fn time_scale_invariance(
        params in arb_params(),
        pattern in arb_pattern(),
        k in 2u64..5,
    ) {
        let params = params.with_procs(pattern.procs());
        let scaled = LogGpParams {
            latency: params.latency * k,
            overhead: params.overhead * k,
            gap: params.gap * k,
            gap_per_byte: params.gap_per_byte * k,
            procs: params.procs,
        };
        let a = standard::simulate(&pattern, &SimConfig::new(params));
        let b = standard::simulate(&pattern, &SimConfig::new(scaled));
        prop_assert_eq!(a.finish * k, b.finish);
        for (ea, eb) in a.timeline.events().iter().zip(b.timeline.events()) {
            prop_assert_eq!(ea.start * k, eb.start);
            prop_assert_eq!(ea.msg_id, eb.msg_id);
            prop_assert_eq!(ea.proc, eb.proc);
        }
    }
}
