//! Mutation tests for the independent validator: take a *valid* schedule,
//! break it in a specific way, and demand the validator notices. This
//! guards the guard — a validator that accepts everything would make the
//! simulator property tests vacuous.

use commsim::validate::{validate, Violation};
use commsim::{patterns, standard, CommEvent, CommPattern, SimConfig, Timeline};
use loggp::{presets, OpKind, Time};
use proptest::prelude::*;

fn valid_run(seed: u64) -> (CommPattern, SimConfig, Timeline) {
    let pattern = patterns::random_dag(6, 12, 2048, seed);
    let cfg = SimConfig::new(presets::meiko_cs2(6));
    let r = standard::simulate(&pattern, &cfg);
    (pattern, cfg, r.timeline)
}

fn rebuild(timeline: &Timeline, f: impl Fn(usize, CommEvent) -> Option<CommEvent>) -> Timeline {
    let mut out = Timeline::new(timeline.procs());
    for (i, ev) in timeline.events().iter().enumerate() {
        if let Some(ev) = f(i, *ev) {
            out.push(ev);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shifting any receive earlier than its message's arrival is caught.
    #[test]
    fn early_receive_detected(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let (pattern, cfg, timeline) = valid_run(seed);
        let recvs: Vec<usize> = timeline
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == OpKind::Recv)
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!recvs.is_empty());
        let victim = recvs[pick.index(recvs.len())];
        // Move the receive to time zero-ish: before any arrival is possible.
        let mutated = rebuild(&timeline, |i, mut ev| {
            if i == victim {
                ev.end -= ev.start;
                ev.start = Time::ZERO;
            }
            Some(ev)
        });
        let errs = validate(&pattern, &cfg, &mutated).unwrap_err();
        prop_assert!(
            errs.iter().any(|v| matches!(
                v,
                Violation::ReceivedBeforeArrival { .. }
                    | Violation::GapViolated { .. }
                    | Violation::PortViolated { .. }
                    | Violation::RecvOrder { .. }
            )),
            "mutation not detected: {errs:?}"
        );
    }

    /// Dropping any event is caught as a message mismatch.
    #[test]
    fn dropped_event_detected(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let (pattern, cfg, timeline) = valid_run(seed);
        prop_assume!(!timeline.is_empty());
        let victim = pick.index(timeline.len());
        let mutated = rebuild(&timeline, |i, ev| (i != victim).then_some(ev));
        let errs = validate(&pattern, &cfg, &mutated).unwrap_err();
        prop_assert!(errs.iter().any(|v| matches!(v, Violation::MessageMismatch { .. })), "not detected: {errs:?}");
    }

    /// Stretching or shrinking any operation's duration is caught.
    #[test]
    fn wrong_overhead_detected(
        seed in any::<u64>(),
        pick in any::<prop::sample::Index>(),
        stretch_ns in prop_oneof![Just(1u64), Just(500), Just(50_000)],
    ) {
        let (pattern, cfg, timeline) = valid_run(seed);
        prop_assume!(!timeline.is_empty());
        let victim = pick.index(timeline.len());
        let mutated = rebuild(&timeline, |i, mut ev| {
            if i == victim {
                ev.end += Time::from_ns(stretch_ns);
            }
            Some(ev)
        });
        let errs = validate(&pattern, &cfg, &mutated).unwrap_err();
        prop_assert!(errs.iter().any(|v| matches!(v, Violation::WrongOverhead { .. })), "not detected: {errs:?}");
    }

    /// Squeezing two consecutive operations of one processor together is
    /// caught by the gap (or port) rule.
    #[test]
    fn gap_squeeze_detected(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let (pattern, cfg, timeline) = valid_run(seed);
        // Find a processor with at least two operations.
        let mut candidates = Vec::new();
        for p in 0..timeline.procs() {
            let evs = timeline.events_for(p);
            if evs.len() >= 2 {
                candidates.push((p, evs[1].msg_id, evs[1].kind, evs[0].start));
            }
        }
        prop_assume!(!candidates.is_empty());
        let (proc, msg_id, kind, first_start) = candidates[pick.index(candidates.len())];
        // Slam the second op onto the first op's start time + 1ns.
        let mutated = rebuild(&timeline, |_, mut ev| {
            if ev.proc == proc && ev.msg_id == msg_id && ev.kind == kind {
                let dur = ev.end - ev.start;
                ev.start = first_start + Time::from_ns(1);
                ev.end = ev.start + dur;
            }
            Some(ev)
        });
        let errs = validate(&pattern, &cfg, &mutated).unwrap_err();
        prop_assert!(
            errs.iter().any(|v| matches!(
                v,
                Violation::GapViolated { .. }
                    | Violation::PortViolated { .. }
                    | Violation::ReceivedBeforeArrival { .. }
                    | Violation::SendOrder { .. }
                    | Violation::RecvOrder { .. }
            )),
            "mutation not detected: {errs:?}"
        );
    }

    /// Retargeting a message to a different destination processor is
    /// caught (the receive happens at the wrong place).
    #[test]
    fn retargeted_receive_detected(seed in any::<u64>(), pick in any::<prop::sample::Index>()) {
        let (pattern, cfg, timeline) = valid_run(seed);
        let recvs: Vec<usize> = timeline
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == OpKind::Recv)
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!recvs.is_empty());
        let victim = recvs[pick.index(recvs.len())];
        let procs = timeline.procs();
        let mutated = rebuild(&timeline, |i, mut ev| {
            if i == victim {
                ev.proc = (ev.proc + 1) % procs;
            }
            Some(ev)
        });
        let errs = validate(&pattern, &cfg, &mutated).unwrap_err();
        prop_assert!(errs.iter().any(|v| matches!(v, Violation::MessageMismatch { .. })),
            "mutation not detected: {errs:?}");
    }
}
