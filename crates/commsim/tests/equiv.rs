//! Differential equivalence suite: the optimized hot loops must be
//! **bit-identical** to the straightforward reference encodings in
//! `commsim::reference`, across every dimension that can change a
//! timeline — pattern shape, LogGP parameters, gap rule, tie-break policy
//! and seed, fault plans, and custom arrival hooks (including misbehaving
//! ones, which both sides clamp identically). A second group pins the
//! incremental-replay invariant: whenever `Recording::replay` accepts, its
//! output equals a full re-simulation, and the worst-case replay accepts
//! unconditionally.

use commsim::faults::StepFaults;
use commsim::{
    patterns, reference, replay, standard, worstcase, CommPattern, Message, SimConfig, SimScratch,
    TieBreak,
};
use loggp::{LogGpParams, Time};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = LogGpParams> {
    (
        0u64..50_000, // L ns
        1u64..20_000, // o ns
        0u64..50_000, // gap surplus over o, ns
        0u64..100,    // G ns/byte
    )
        .prop_map(|(l, o, extra, g)| LogGpParams {
            latency: Time::from_ns(l),
            overhead: Time::from_ns(o),
            gap: Time::from_ns(o + extra),
            gap_per_byte: Time::from_ns(g),
            procs: 0, // fixed up by caller
        })
}

fn arb_pattern() -> impl Strategy<Value = CommPattern> {
    (2usize..12, 0usize..40, proptest::bool::ANY, any::<u64>()).prop_map(|(n, msgs, dag, seed)| {
        if dag {
            patterns::random_dag(n, msgs, 4096, seed)
        } else {
            patterns::random(n, msgs, 4096, seed)
        }
    })
}

fn arb_ready() -> impl Strategy<Value = Vec<Time>> {
    proptest::collection::vec(0u64..100_000u64, 12..13)
        .prop_map(|v| v.into_iter().map(Time::from_ns).collect())
}

fn make_cfg(
    params: LogGpParams,
    procs: usize,
    random_ties: bool,
    classic: bool,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::new(params.with_procs(procs)).with_seed(seed);
    if random_ties {
        cfg.tie_break = TieBreak::Random;
    }
    if classic {
        cfg = cfg.with_classic_gap_rule();
    }
    cfg
}

/// Seed-driven fault plan: a pure function of the message id, as the
/// [`StepFaults`] contract requires.
struct HashDrops {
    seed: u64,
}

impl StepFaults for HashDrops {
    fn attempts(&self, msg: &Message) -> u32 {
        let h = (msg.id as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed);
        1 + ((h >> 33) % 3) as u32
    }
    fn rto(&self, attempt: u32) -> Time {
        Time::from_us(50.0) * (attempt as u64 + 1)
    }
}

fn assert_same(label: &str, new: &commsim::SimResult, old: &commsim::SimResult) {
    assert_eq!(
        new.timeline.events(),
        old.timeline.events(),
        "{label}: commit order diverged"
    );
    assert_eq!(new.finish, old.finish, "{label}: finish diverged");
    assert_eq!(
        new.forced_sends, old.forced_sends,
        "{label}: forced_sends diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized standard loop ≡ reference, across patterns × params ×
    /// gap rules × tie seeds × ready times, with the default arrival model
    /// and no faults.
    #[test]
    fn standard_matches_reference(
        params in arb_params(),
        pattern in arb_pattern(),
        random_ties in proptest::bool::ANY,
        classic in proptest::bool::ANY,
        seed in any::<u64>(),
        ready in arb_ready(),
    ) {
        let procs = pattern.procs();
        let cfg = make_cfg(params, procs, random_ties, classic, seed);
        let ready = &ready[..procs];
        let new = standard::simulate_from(&pattern, &cfg, ready);
        let old = reference::standard_simulate_from(&pattern, &cfg, ready);
        assert_same("standard", &new, &old);
    }

    /// Optimized worst-case loop ≡ reference under the same dimensions
    /// (cyclic patterns exercise the forced-send RNG path).
    #[test]
    fn worstcase_matches_reference(
        params in arb_params(),
        pattern in arb_pattern(),
        classic in proptest::bool::ANY,
        seed in any::<u64>(),
        ready in arb_ready(),
    ) {
        let procs = pattern.procs();
        let cfg = make_cfg(params, procs, false, classic, seed);
        let ready = &ready[..procs];
        let new = worstcase::simulate_from(&pattern, &cfg, ready);
        let old = reference::worstcase_simulate_from(&pattern, &cfg, ready);
        assert_same("worstcase", &new, &old);
    }

    /// Equivalence holds under fault injection and a custom (contract-
    /// obeying) arrival hook simultaneously.
    #[test]
    fn faulted_hooked_runs_match_reference(
        params in arb_params(),
        pattern in arb_pattern(),
        random_ties in proptest::bool::ANY,
        classic in proptest::bool::ANY,
        seed in any::<u64>(),
        ready in arb_ready(),
        fault_seed in any::<u64>(),
        jitter_ns in 0u64..10_000,
    ) {
        let procs = pattern.procs();
        let cfg = make_cfg(params, procs, random_ties, classic, seed);
        let ready = &ready[..procs];
        let faults = HashDrops { seed: fault_seed };
        let params = cfg.params;
        let hook = move |m: &Message, start: Time| {
            params.arrival_time(start, m.bytes) + Time::from_ns(jitter_ns * (m.id as u64 % 5))
        };

        let mut h1 = hook;
        let new_std = standard::simulate_faulted(
            &pattern, &cfg, ready, &mut h1, None, Some(&faults));
        let mut h2 = hook;
        let old_std = reference::standard_simulate_faulted(
            &pattern, &cfg, ready, &mut h2, None, Some(&faults));
        assert_same("standard+faults+hook", &new_std, &old_std);

        let mut h3 = hook;
        let new_wc = worstcase::simulate_faulted(
            &pattern, &cfg, ready, &mut h3, None, Some(&faults));
        let mut h4 = hook;
        let old_wc = reference::worstcase_simulate_faulted(
            &pattern, &cfg, ready, &mut h4, None, Some(&faults));
        assert_same("worstcase+faults+hook", &new_wc, &old_wc);
    }

    /// A *misbehaving* arrival hook (violating `arrival ≥ start + o`) is
    /// clamped identically by both encodings — release-mode soundness, not
    /// just debug asserts.
    #[test]
    fn misbehaving_hooks_clamp_identically(
        params in arb_params(),
        pattern in arb_pattern(),
        random_ties in proptest::bool::ANY,
        classic in proptest::bool::ANY,
        seed in any::<u64>(),
        ready in arb_ready(),
        shrink_den in 2u64..10,
    ) {
        let procs = pattern.procs();
        let cfg = make_cfg(params, procs, random_ties, classic, seed);
        let ready = &ready[..procs];
        let params = cfg.params;
        // Divides the true arrival: often lands before start + o.
        let hook = move |m: &Message, start: Time| {
            Time::from_ps(params.arrival_time(start, m.bytes).as_ps() / shrink_den)
        };
        let mut h1 = hook;
        let new = standard::simulate_hooked(&pattern, &cfg, ready, &mut h1);
        let mut h2 = hook;
        let old = reference::standard_simulate_faulted(&pattern, &cfg, ready, &mut h2, None, None);
        assert_same("standard+clamped-hook", &new, &old);
        let mut h3 = hook;
        let new_wc = worstcase::simulate_hooked(&pattern, &cfg, ready, &mut h3);
        let mut h4 = hook;
        let old_wc = reference::worstcase_simulate_faulted(&pattern, &cfg, ready, &mut h4, None, None);
        assert_same("worstcase+clamped-hook", &new_wc, &old_wc);
    }

    /// A reused scratch never changes results: interleaving differently
    /// shaped simulations through one scratch is bit-identical to fresh
    /// runs.
    #[test]
    fn scratch_reuse_matches_fresh(
        params in arb_params(),
        a in arb_pattern(),
        b in arb_pattern(),
        random_ties in proptest::bool::ANY,
        classic in proptest::bool::ANY,
        seed in any::<u64>(),
        ready in arb_ready(),
    ) {
        let mut scratch = SimScratch::new();
        for pattern in [&a, &b, &a] {
            let procs = pattern.procs();
            let cfg = make_cfg(params, procs, random_ties, classic, seed);
            let ready = &ready[..procs];
            let reused = standard::simulate_from_scratch(pattern, &cfg, ready, &mut scratch);
            let fresh = standard::simulate_from(pattern, &cfg, ready);
            assert_same("std scratch reuse", &reused, &fresh);
            let reused = worstcase::simulate_from_scratch(pattern, &cfg, ready, &mut scratch);
            let fresh = worstcase::simulate_from(pattern, &cfg, ready);
            assert_same("wc scratch reuse", &reused, &fresh);
        }
    }

    /// Incremental re-simulation ≡ full re-simulation for param-only
    /// changes: whenever the standard replay accepts a new parameter set,
    /// its timeline is bit-identical to simulating from scratch; recording
    /// itself is also bit-identical to a plain run, and replaying at the
    /// recorded parameters always accepts.
    #[test]
    fn standard_replay_equals_full_resim(
        pattern in arb_pattern(),
        base in arb_params(),
        alt in arb_params(),
        classic in proptest::bool::ANY,
        ready in arb_ready(),
    ) {
        let procs = pattern.procs();
        let base_cfg = make_cfg(base, procs, false, classic, 0);
        let ready = &ready[..procs];
        let mut scratch = SimScratch::new();
        let (recorded, rec) = replay::record_standard(&pattern, &base_cfg, ready, &mut scratch);
        let direct = standard::simulate_from(&pattern, &base_cfg, ready);
        assert_same("recording run", &recorded, &direct);

        // Replaying at the *same* params must always accept and agree.
        let same = rec.replay(&pattern, &base_cfg, ready, &mut scratch)
            .expect("replay at recorded params always valid");
        assert_same("replay@same", &same, &direct);

        // At different params, accept ⇒ bit-identical to a full run.
        let alt_cfg = make_cfg(alt, procs, false, classic, 0);
        if let Some(replayed) = rec.replay(&pattern, &alt_cfg, ready, &mut scratch) {
            let full = standard::simulate_from(&pattern, &alt_cfg, ready);
            assert_same("replay@alt", &replayed, &full);
        }
    }

    /// The worst-case replay is unconditional: any parameter change (same
    /// seed) replays exactly.
    #[test]
    fn worstcase_replay_equals_full_resim(
        pattern in arb_pattern(),
        base in arb_params(),
        alt in arb_params(),
        classic in proptest::bool::ANY,
        seed in any::<u64>(),
        ready in arb_ready(),
    ) {
        let procs = pattern.procs();
        let base_cfg = make_cfg(base, procs, false, classic, seed);
        let ready = &ready[..procs];
        let mut scratch = SimScratch::new();
        let (recorded, rec) = replay::record_worstcase(&pattern, &base_cfg, ready, &mut scratch);
        let direct = worstcase::simulate_from(&pattern, &base_cfg, ready);
        assert_same("wc recording run", &recorded, &direct);

        let alt_cfg = make_cfg(alt, procs, false, classic, seed);
        let replayed = rec.replay(&pattern, &alt_cfg, ready, &mut scratch)
            .expect("worst-case replay is unconditional for matching seeds");
        let full = worstcase::simulate_from(&pattern, &alt_cfg, ready);
        assert_same("wc replay@alt", &replayed, &full);
    }
}
