//! Integration tests for the trace hooks and the metrics bridge: the
//! traced simulators must (a) change nothing about the computed timeline,
//! (b) emit a complete, consistent event stream, and (c) agree with the
//! figures the `stats`/`gantt` render paths report.

use commsim::observe::StepTracer;
use commsim::{patterns, standard, stats, worstcase, CommPattern, SimConfig};
use loggp::{presets, Time};
use predsim_obs::{HorizonProfile, MemorySink, Registry, TraceEvent};

fn meiko_cfg(procs: usize) -> SimConfig {
    SimConfig::new(presets::meiko_cs2(procs))
}

fn loggp_arrival(cfg: &SimConfig) -> impl FnMut(&commsim::Message, Time) -> Time + '_ {
    move |m, start| cfg.params.arrival_time(start, m.bytes)
}

#[test]
fn tracing_does_not_change_the_standard_timeline() {
    let pattern = patterns::figure3();
    let cfg = meiko_cfg(pattern.procs());
    let ready = vec![Time::ZERO; pattern.procs()];
    let plain = standard::simulate(&pattern, &cfg);
    let sink = MemorySink::new();
    let tracer = StepTracer::new(&sink, 0);
    let traced = standard::simulate_traced(
        &pattern,
        &cfg,
        &ready,
        &mut loggp_arrival(&cfg),
        Some(&tracer),
    );
    assert_eq!(plain.timeline.events(), traced.timeline.events());
    assert_eq!(plain.finish, traced.finish);
    assert!(!sink.is_empty());
}

#[test]
fn tracing_does_not_change_the_worstcase_timeline() {
    let pattern = patterns::ring(6, 256);
    let cfg = meiko_cfg(6).with_seed(7);
    let ready = vec![Time::ZERO; 6];
    let plain = worstcase::simulate(&pattern, &cfg);
    let sink = MemorySink::new();
    let tracer = StepTracer::new(&sink, 3);
    let traced = worstcase::simulate_traced(
        &pattern,
        &cfg,
        &ready,
        &mut loggp_arrival(&cfg),
        Some(&tracer),
    );
    assert_eq!(plain.timeline.events(), traced.timeline.events());
    assert_eq!(plain.forced_sends, traced.forced_sends);
    // The cycle's deadlock-breaking transmissions are flagged in the trace.
    let forced = sink
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Send { forced: true, .. }))
        .count();
    assert_eq!(forced, traced.forced_sends);
}

#[test]
fn trace_covers_every_network_message() {
    let pattern = patterns::figure3();
    let cfg = meiko_cfg(pattern.procs());
    let ready = vec![Time::ZERO; pattern.procs()];
    let sink = MemorySink::new();
    let tracer = StepTracer::new(&sink, 0);
    let r = standard::simulate_traced(
        &pattern,
        &cfg,
        &ready,
        &mut loggp_arrival(&cfg),
        Some(&tracer),
    );
    let events = sink.events();
    let sends = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Send { .. }))
        .count();
    let recvs = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Recv { .. }))
        .count();
    let network = pattern.network_messages().count();
    assert_eq!(sends, network);
    assert_eq!(recvs, network);
    assert_eq!(r.timeline.len(), sends + recvs);
    // Every event's times agree with the committed timeline.
    for ev in &events {
        if let TraceEvent::Recv {
            arrival_ps,
            start_ps,
            end_ps,
            ..
        } = ev
        {
            assert!(start_ps >= arrival_ps, "receive before arrival: {ev:?}");
            assert!(end_ps > start_ps);
        }
    }
}

#[test]
fn gap_stalls_match_stats_queueing() {
    // gather(6, 0, 100): all senders hit P0 at once, so all but the first
    // message queue. The trace's GapStall events and the analytical
    // `stats::analyze` queueing decomposition must agree exactly.
    let pattern = patterns::gather(6, 0, 100);
    let cfg = meiko_cfg(6);
    let ready = vec![Time::ZERO; 6];
    let sink = MemorySink::new();
    let tracer = StepTracer::new(&sink, 0);
    let r = standard::simulate_traced(
        &pattern,
        &cfg,
        &ready,
        &mut loggp_arrival(&cfg),
        Some(&tracer),
    );
    let st = stats::analyze(&pattern, &cfg, &r.timeline);
    let stalled_total: u64 = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::GapStall { waited_ps, .. } => Some(*waited_ps),
            _ => None,
        })
        .sum();
    assert_eq!(Time::from_ps(stalled_total), st.total_queueing());
    assert!(stalled_total > 0);
}

#[test]
fn registry_figures_match_stats_and_gantt_on_figure3() {
    let pattern = patterns::figure3();
    let cfg = meiko_cfg(pattern.procs());
    let r = standard::simulate(&pattern, &cfg);
    let st = stats::analyze(&pattern, &cfg, &r.timeline);

    let registry = Registry::new();
    stats::record_metrics(&st, &registry);
    let snap = registry.snapshot();

    for ps in &st.procs {
        let proc = ps.proc.to_string();
        let labels: &[(&str, &str)] = &[("proc", &proc)];
        assert_eq!(
            snap.scalar("predsim_proc_busy_ps_total", labels),
            Some(ps.busy.as_ps()),
            "busy mismatch for P{proc}"
        );
        assert_eq!(
            snap.scalar("predsim_proc_idle_ps_total", labels),
            Some(ps.idle.as_ps()),
            "idle mismatch for P{proc}"
        );
        assert_eq!(
            snap.scalar("predsim_proc_sends_total", labels),
            Some(ps.sends as u64)
        );
        assert_eq!(
            snap.scalar("predsim_proc_recvs_total", labels),
            Some(ps.recvs as u64)
        );
        // The registry's busy figure is the same quantity the timeline
        // accessor (used by the gantt render path) reports.
        assert_eq!(
            snap.scalar("predsim_proc_busy_ps_total", labels),
            Some(r.timeline.busy_time(ps.proc).as_ps())
        );
    }
    assert_eq!(snap.scalar("predsim_steps_simulated_total", &[]), Some(1));
    assert_eq!(
        snap.scalar("predsim_step_completion_ps_max", &[]),
        Some(st.completion.as_ps())
    );
    assert_eq!(
        snap.scalar("predsim_queueing_ps_total", &[]),
        Some(st.total_queueing().as_ps())
    );
    assert_eq!(
        snap.histogram_totals("predsim_step_completion_ps"),
        Some((1, st.completion.as_ps()))
    );

    // Render paths still work and reflect the same completion time.
    let chart = commsim::gantt::render(&r.timeline, 72);
    assert!(
        chart.contains(&format!("completion: {}", st.completion)),
        "{chart}"
    );
    let prom = registry.render_prometheus();
    assert!(
        prom.contains("# TYPE predsim_proc_busy_ps_total counter"),
        "{prom}"
    );
}

#[test]
fn record_metrics_accumulates_across_steps() {
    let mut pattern = CommPattern::new(2);
    pattern.add(0, 1, 500);
    let cfg = meiko_cfg(2);
    let r = standard::simulate(&pattern, &cfg);
    let st = stats::analyze(&pattern, &cfg, &r.timeline);
    let registry = Registry::new();
    stats::record_metrics(&st, &registry);
    stats::record_metrics(&st, &registry);
    let snap = registry.snapshot();
    assert_eq!(snap.scalar("predsim_steps_simulated_total", &[]), Some(2));
    assert_eq!(
        snap.scalar("predsim_proc_busy_ps_total", &[("proc", "0")]),
        Some(2 * st.procs[0].busy.as_ps())
    );
}

#[test]
fn horizon_profile_from_manual_fronts() {
    // Front events are emitted by the core whole-program simulator; here we
    // check the aggregation downstream of commsim's per-proc completions.
    let pattern = patterns::figure3();
    let cfg = meiko_cfg(pattern.procs());
    let r = standard::simulate(&pattern, &cfg);
    let fronts: Vec<TraceEvent> = r
        .timeline
        .per_proc_completion()
        .into_iter()
        .enumerate()
        .map(|(proc, t)| TraceEvent::Front {
            step: 0,
            proc,
            ps: t.as_ps(),
        })
        .collect();
    let profile = HorizonProfile::from_events(&fronts);
    assert_eq!(profile.steps.len(), 1);
    assert_eq!(profile.steps[0].max, r.finish);
    assert!(profile.steps[0].spread > Time::ZERO);
}
