//! Property-based tests for the machine emulator.

use commsim::{patterns, SimConfig};
use loggp::{presets, Time};
use machine::{emulate, EmulatorConfig};
use predsim_core::{simulate_program, Program, SimOptions, Step, StepLoad};
use proptest::prelude::*;

fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..7, 1usize..6, any::<u64>()).prop_map(|(procs, steps, seed)| {
        let mut prog = Program::new(procs);
        for s in 0..steps {
            let step_seed = seed.wrapping_add(s as u64 * 0x9E37);
            let comp: Vec<Time> = (0..procs)
                .map(|p| Time::from_ns((step_seed.rotate_left(p as u32 * 7) % 50_000) * 20))
                .collect();
            let comm = patterns::random(procs, (step_seed % 6) as usize, 4096, step_seed);
            prog.push(Step::new(format!("s{s}")).with_comp(comp).with_comm(comm));
        }
        prog
    })
}

fn effects_off(procs: usize) -> EmulatorConfig {
    EmulatorConfig {
        cfg: SimConfig::new(presets::meiko_cs2(procs)),
        jitter_pct: 0,
        contention: false,
        shared_bus: false,
        self_copy_per_byte: Time::ZERO,
        iter_overhead: Time::ZERO,
        cache: None,
        l2: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With every real-machine effect switched off, the emulator *is* the
    /// predictor — on arbitrary programs.
    #[test]
    fn emulator_degenerates_to_predictor(prog in arb_program()) {
        let procs = prog.procs();
        let m = emulate(&prog, &[], &effects_off(procs));
        let p = simulate_program(
            &prog,
            &SimOptions::new(SimConfig::new(presets::meiko_cs2(procs))),
        );
        prop_assert_eq!(m.prediction.total, p.total);
        prop_assert_eq!(m.prediction.per_proc_finish, p.per_proc_finish);
        prop_assert_eq!(m.prediction.comm_time, p.comm_time);
        prop_assert_eq!(m.prediction.comp_time, p.comp_time);
    }

    /// Full effects: deterministic per seed, and the jitter stays within
    /// its advertised envelope relative to the jitter-free run (each
    /// flight scaled by at most ±8% can move the total, but never below
    /// the pure computation floor).
    #[test]
    fn emulator_deterministic_and_bounded(prog in arb_program(), seed in any::<u64>()) {
        let procs = prog.procs();
        let mut ecfg = EmulatorConfig::meiko_like(SimConfig::new(presets::meiko_cs2(procs)));
        ecfg.cfg = ecfg.cfg.with_seed(seed);
        let a = emulate(&prog, &[], &ecfg);
        let b = emulate(&prog, &[], &ecfg);
        prop_assert_eq!(a.prediction.total, b.prediction.total);
        prop_assert_eq!(&a.prediction.per_proc_comm, &b.prediction.per_proc_comm);
        prop_assert!(a.prediction.total >= a.prediction.comp_time);
    }

    /// Iteration overhead is linear: doubling the visit counts exactly
    /// doubles the charged overhead.
    #[test]
    fn iter_overhead_linear(prog in arb_program(), visits in 1u32..20) {
        let procs = prog.procs();
        let mk_loads = |v: u32| -> Vec<StepLoad> {
            prog.steps()
                .iter()
                .map(|_| {
                    let mut l = StepLoad::new(procs);
                    for p in 0..procs {
                        l.add_visits(p, v);
                    }
                    l
                })
                .collect()
        };
        let mut ecfg = effects_off(procs);
        ecfg.iter_overhead = Time::from_us(3.0);
        let once = emulate(&prog, &mk_loads(visits), &ecfg);
        let twice = emulate(&prog, &mk_loads(2 * visits), &ecfg);
        prop_assert_eq!(once.iter_overhead_time * 2, twice.iter_overhead_time);
    }

    /// Self-message accounting: total self-copy time equals the per-byte
    /// rate times the self bytes in the program.
    #[test]
    fn self_copy_accounting(prog in arb_program()) {
        let procs = prog.procs();
        let mut ecfg = effects_off(procs);
        ecfg.self_copy_per_byte = Time::from_ns(10);
        let m = emulate(&prog, &[], &ecfg);
        let self_bytes: u64 = prog
            .steps()
            .iter()
            .flat_map(|s| s.comm.messages().iter())
            .filter(|msg| msg.is_self_message())
            .map(|msg| msg.bytes as u64)
            .sum();
        prop_assert_eq!(m.self_copy_time, Time::from_ns(10) * self_bytes);
    }
}
