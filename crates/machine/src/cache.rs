//! A set-associative, LRU, write-allocate cache simulator.
//!
//! Deliberately simple — a single level, tag-only (no data) — but a *real*
//! simulator: every access walks the indexed set and updates LRU state, so
//! capacity and conflict behaviour emerge from the address stream rather
//! than from an analytic formula. The emulator drives one instance per
//! virtual processor with the block-touch traces the applications emit.

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed (including compulsory misses).
    pub misses: u64,
}

impl CacheStats {
    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    stamp: u64,
}

/// The cache. Addresses are plain `u64` byte addresses.
#[derive(Clone, Debug)]
pub struct Cache {
    line_bytes: usize,
    sets: usize,
    ways: usize,
    /// `sets × ways` entries; `None` = invalid.
    lines: Vec<Option<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// A cache of `size_bytes` total capacity with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    /// Panics unless `line_bytes` and the resulting set count are powers of
    /// two and the geometry divides evenly.
    pub fn new(size_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1);
        assert_eq!(
            size_bytes % (line_bytes * ways),
            0,
            "geometry must divide capacity"
        );
        let sets = size_bytes / (line_bytes * ways);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two (got {sets})"
        );
        Cache {
            line_bytes,
            sets,
            ways,
            lines: vec![None; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways * self.line_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Access one byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line_no = addr / self.line_bytes as u64;
        let set = (line_no % self.sets as u64) as usize;
        let tag = line_no / self.sets as u64;
        let base = set * self.ways;
        let ways = &mut self.lines[base..base + self.ways];

        // Hit?
        for l in ways.iter_mut().flatten() {
            if l.tag == tag {
                l.stamp = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: fill an invalid way or evict the LRU one.
        self.stats.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| l.map(|l| l.stamp).unwrap_or(0))
            .expect("ways >= 1");
        *victim = Some(Line {
            tag,
            stamp: self.clock,
        });
        false
    }

    /// Touch every line of `[base, base + len)`; returns the number of
    /// misses incurred.
    pub fn touch_range(&mut self, base: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let first = base / self.line_bytes as u64;
        let last = (base + len as u64 - 1) / self.line_bytes as u64;
        let mut misses = 0;
        for line in first..=last {
            if !self.access(line * self.line_bytes as u64) {
                misses += 1;
            }
        }
        misses
    }

    /// Invalidate everything (counters are kept).
    pub fn flush(&mut self) {
        self.lines.fill(None);
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A two-level cache hierarchy: misses in L1 probe L2; a line filled from
/// memory is installed in both levels (inclusive fill, no back-invalidate
/// — the common simple model).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    /// Accesses that hit L1.
    pub l1_hits: u64,
    /// L1 misses that hit L2.
    pub l2_hits: u64,
    /// Accesses that went to memory.
    pub mem_accesses: u64,
}

impl Hierarchy {
    /// Build from two caches; L2 must be at least as large as L1 and use
    /// the same line size.
    pub fn new(l1: Cache, l2: Cache) -> Self {
        assert!(l2.capacity() >= l1.capacity(), "L2 smaller than L1");
        assert_eq!(l1.line_bytes(), l2.line_bytes(), "mismatched line sizes");
        Hierarchy {
            l1,
            l2,
            l1_hits: 0,
            l2_hits: 0,
            mem_accesses: 0,
        }
    }

    /// Access one address; returns which level serviced it (1, 2) or 0 for
    /// memory.
    pub fn access(&mut self, addr: u64) -> u8 {
        if self.l1.access(addr) {
            self.l1_hits += 1;
            return 1;
        }
        if self.l2.access(addr) {
            self.l2_hits += 1;
            return 2;
        }
        self.mem_accesses += 1;
        0
    }

    /// Touch `[base, base + len)`; returns `(l2_fills, memory_fills)` —
    /// the L1-missing line counts by where they were serviced.
    pub fn touch_range(&mut self, base: u64, len: usize) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let line = self.l1.line_bytes() as u64;
        let first = base / line;
        let last = (base + len as u64 - 1) / line;
        let (mut from_l2, mut from_mem) = (0, 0);
        for l in first..=last {
            match self.access(l * line) {
                1 => {}
                2 => from_l2 += 1,
                _ => from_mem += 1,
            }
        }
        (from_l2, from_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = Cache::new(64 * 1024, 64, 4);
        assert_eq!(c.capacity(), 64 * 1024);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        let _ = Cache::new(1024, 48, 2);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = Cache::new(1024, 64, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 1 set of interest: three distinct tags mapping to set 0.
        let c_sets = 4;
        let mut c = Cache::new(c_sets * 64 * 2, 64, 2);
        let stride = (c_sets * 64) as u64; // same set, different tags
        assert!(!c.access(0));
        assert!(!c.access(stride));
        assert!(c.access(0)); // refresh tag 0 -> tag `stride` becomes LRU
        assert!(!c.access(2 * stride)); // evicts `stride`
        assert!(c.access(0)); // still resident
        assert!(!c.access(stride)); // was evicted
    }

    #[test]
    fn working_set_behaviour() {
        // A working set that fits is all hits after the first sweep; one
        // that exceeds capacity keeps missing under LRU + sequential sweep.
        let mut small = Cache::new(4096, 64, 4);
        for _ in 0..3 {
            small.touch_range(0, 2048);
        }
        assert_eq!(small.stats().misses, 2048 / 64); // compulsory only

        let mut big = Cache::new(4096, 64, 4);
        let mut misses = 0;
        for _ in 0..3 {
            misses = big.touch_range(0, 16384);
        }
        // Sweep larger than capacity with LRU: everything misses again.
        assert_eq!(misses, 16384 / 64);
    }

    #[test]
    fn touch_range_counts_lines() {
        let mut c = Cache::new(4096, 64, 4);
        assert_eq!(c.touch_range(0, 0), 0);
        assert_eq!(c.touch_range(10, 1), 1);
        assert_eq!(c.touch_range(0, 64), 0); // line 0 already resident
        assert_eq!(c.touch_range(0, 129), 2); // lines 1 and 2 new
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = Cache::new(1024, 64, 2);
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn hierarchy_levels_service_in_order() {
        // L1: 2 lines; L2: 16 lines.
        let mut h = Hierarchy::new(Cache::new(128, 64, 1), Cache::new(1024, 64, 2));
        assert_eq!(h.access(0), 0); // cold: memory
        assert_eq!(h.access(0), 1); // L1 hit
                                    // Evict line 0 from L1 by conflicting fills (direct-mapped, 2 sets:
                                    // line 0 maps to set 0, so touch other set-0 lines).
        assert_eq!(h.access(128), 0);
        assert_eq!(h.access(256), 0);
        // Line 0 fell out of L1 but is still in L2.
        assert_eq!(h.access(0), 2);
        assert_eq!(h.l1_hits, 1);
        assert_eq!(h.l2_hits, 1);
        assert_eq!(h.mem_accesses, 3);
    }

    #[test]
    fn hierarchy_touch_range_classifies_fills() {
        let mut h = Hierarchy::new(Cache::new(256, 64, 1), Cache::new(4096, 64, 2));
        let (l2, mem) = h.touch_range(0, 1024); // 16 lines, all cold
        assert_eq!((l2, mem), (0, 16));
        // Sweep again: 16 lines exceed the 4-line L1 but fit L2.
        let (l2, mem) = h.touch_range(0, 1024);
        assert_eq!(mem, 0);
        assert_eq!(l2, 16); // everything refills from L2 (L1 too small)
    }

    #[test]
    #[should_panic(expected = "L2 smaller")]
    fn hierarchy_rejects_inverted_sizes() {
        let _ = Hierarchy::new(Cache::new(1024, 64, 2), Cache::new(128, 64, 1));
    }

    #[test]
    fn miss_ratio() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}
