//! The substitute testbed: a deterministic machine emulator standing in for
//! the paper's Meiko CS-2.
//!
//! The paper validates its LogGP predictions against *measurements* on real
//! hardware. That hardware is unavailable, so this crate provides a richer
//! discrete-event emulator whose deviations from pure LogGP are exactly the
//! mechanisms the paper names when explaining measured-vs-predicted gaps:
//!
//! * **cache effects** ([`cache`]) — a set-associative LRU cache simulator
//!   driven by the block-touch traces of the application ("when processors
//!   are assigned many non-adjacent small blocks, the cache miss rate
//!   increases");
//! * **local transfers** — self-messages are charged a memory-copy cost
//!   ("our simple simulation does not take into account the message
//!   transfers from one processor to itself, which are local memory
//!   transfers in real execution");
//! * **iteration overhead** — a per-block-visit loop charge ("the overhead
//!   of iterating through the all blocks each processor is assigned to,
//!   which is not taken into account by our simple simulation");
//! * **network variance and contention** — seeded per-message jitter and
//!   per-destination link serialization ("the LogGP model gives an average
//!   behavior of the transmission of messages over the network, and not a
//!   precise one").
//!
//! [`emulator::emulate`] runs a [`predsim_core::Program`] under all of
//! these and returns "measured" series in the same shape as the
//! predictor's output, so the benchmark harness can plot the paper's
//! measured-vs-simulated figures. [`emulator::emulate_faulted`]
//! additionally injects a [`predsim_faults::FaultPlan`] into the emulated
//! hardware, so the calibration subsystem can fit against a degraded
//! testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod emulator;

pub use cache::{Cache, CacheStats};
pub use emulator::{emulate, emulate_faulted, CacheConfig, EmulatorConfig, Measurement};
