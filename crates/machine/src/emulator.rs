//! The discrete-event machine emulator producing "measured" running times.
//!
//! Structurally a superset of `predsim_core::simulate_program`: the same
//! alternation of computation and communication phases, but with the four
//! real-machine effects the pure LogGP predictor deliberately ignores
//! (see the crate docs). Everything is deterministic for a fixed seed.

use crate::cache::{Cache, Hierarchy};
use commsim::{standard, CommPattern, SimConfig, StepFaults};
use loggp::Time;
use predsim_core::{CompShaper, Prediction, Program, StepLoad, StepRecord};
use predsim_faults::{FaultPlan, FaultShaper, StepFaultView};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Per-processor cache configuration of the emulated node.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Penalty charged per missing line.
    pub miss_penalty: Time,
}

impl CacheConfig {
    /// A mid-90s workstation node: 128 KiB, 64-byte lines, 4-way, 500 ns
    /// per line miss (memory latency of the era; the penalty also absorbs
    /// the TLB and write-back traffic a tag-only model does not see).
    pub fn workstation() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            line_bytes: 64,
            ways: 4,
            miss_penalty: Time::from_ns(500),
        }
    }
}

/// Configuration of the emulated machine.
#[derive(Clone, Debug)]
pub struct EmulatorConfig {
    /// The base LogGP "hardware" (also supplies the RNG seed).
    pub cfg: SimConfig,
    /// Uniform per-message jitter on the network part (`(k−1)·G + L`) of
    /// the arrival time, in percent: each message's flight time is scaled
    /// by a factor drawn from `[1 − j/100, 1 + j/100]`. 0 disables.
    pub jitter_pct: u32,
    /// Serialize deliveries per destination: a message cannot finish
    /// arriving while the previous message to the same destination is
    /// still draining its wire time (single input link).
    pub contention: bool,
    /// Model a single shared medium (classic Ethernet): *all* wire times
    /// serialize globally, not just per destination. Implies the
    /// per-destination rule.
    pub shared_bus: bool,
    /// Cost per byte of a self-message (local memory copy), charged to the
    /// processor at the end of its communication section.
    pub self_copy_per_byte: Time,
    /// Loop overhead charged per block visit of the computation phase.
    pub iter_overhead: Time,
    /// Per-processor cache; `None` emulates the paper's "measured without
    /// caching" series (the dummy-instruction prefetch variant).
    pub cache: Option<CacheConfig>,
    /// Optional second cache level. When set (and `cache` is set), lines
    /// missing L1 but present in L2 cost `cache.miss_penalty`, and only
    /// true memory fills cost `l2.miss_penalty`.
    pub l2: Option<CacheConfig>,
}

impl EmulatorConfig {
    /// A CS-2-like testbed around the given LogGP model: 8% network
    /// jitter, link contention, 10 ns/byte local copies, 2 µs loop
    /// overhead per block visit, and the workstation cache.
    pub fn meiko_like(cfg: SimConfig) -> Self {
        EmulatorConfig {
            cfg,
            jitter_pct: 8,
            contention: true,
            shared_bus: false,
            self_copy_per_byte: Time::from_ns(10),
            iter_overhead: Time::from_us(2.0),
            cache: Some(CacheConfig::workstation()),
            l2: None,
        }
    }

    /// Disable the cache model (the paper's "measured w/o caching").
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self.l2 = None;
        self
    }

    /// Add a second cache level (e.g. the CS-2 node's external SRAM):
    /// `size_bytes` at `miss_penalty` per line fill from memory; L1 misses
    /// that hit L2 keep costing the L1 penalty.
    pub fn with_l2(mut self, size_bytes: usize, miss_penalty: Time) -> Self {
        let line = self.cache.map(|c| c.line_bytes).unwrap_or(64);
        self.l2 = Some(CacheConfig {
            size_bytes,
            line_bytes: line,
            ways: 8,
            miss_penalty,
        });
        self
    }
}

/// The emulator's output: "measured" times in the predictor's shape plus
/// the emulator-only statistics.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Totals and breakdowns, same semantics as the predictor's
    /// [`Prediction`].
    pub prediction: Prediction,
    /// Cache hits summed over processors (0 without a cache model).
    pub cache_hits: u64,
    /// Cache misses summed over processors.
    pub cache_misses: u64,
    /// Total time charged to cache misses.
    pub cache_penalty_time: Time,
    /// Total time charged to local (self-message) copies.
    pub self_copy_time: Time,
    /// Total time charged to per-block iteration overhead.
    pub iter_overhead_time: Time,
}

/// Run `prog` on the emulated machine. `loads` may be empty (no iteration
/// or cache charges) or must be parallel to `prog.steps()`.
pub fn emulate(prog: &Program, loads: &[StepLoad], ecfg: &EmulatorConfig) -> Measurement {
    emulate_faulted(prog, loads, ecfg, None)
}

/// [`emulate`] with a fault plan injected into the emulated hardware:
/// message drops cost retransmissions on top of the jitter/contention
/// arrival model, and transient slowdowns / fail-stop outages stretch
/// the computation phases. A `None` (or zero) plan reproduces
/// [`emulate`] exactly — calibrating against a faulted testbed uses this
/// entry point to produce degraded "measured" runs.
pub fn emulate_faulted(
    prog: &Program,
    loads: &[StepLoad],
    ecfg: &EmulatorConfig,
    faults: Option<&FaultPlan>,
) -> Measurement {
    assert!(
        loads.is_empty() || loads.len() == prog.len(),
        "loads must be empty or parallel to the program steps"
    );
    let procs = prog.procs();

    let mut ready = vec![Time::ZERO; procs];
    let mut per_proc_comp = vec![Time::ZERO; procs];
    let mut per_proc_comm = vec![Time::ZERO; procs];
    let mut steps = Vec::with_capacity(prog.len());
    let mut forced_sends = 0usize;

    enum CacheSim {
        One(Cache),
        Two(Box<Hierarchy>),
    }
    let mut caches: Vec<CacheSim> = match (&ecfg.cache, &ecfg.l2) {
        (Some(cc), None) => (0..procs)
            .map(|_| CacheSim::One(Cache::new(cc.size_bytes, cc.line_bytes, cc.ways)))
            .collect(),
        (Some(cc), Some(l2)) => (0..procs)
            .map(|_| {
                CacheSim::Two(Box::new(Hierarchy::new(
                    Cache::new(cc.size_bytes, cc.line_bytes, cc.ways),
                    Cache::new(l2.size_bytes, l2.line_bytes, l2.ways),
                )))
            })
            .collect(),
        _ => Vec::new(),
    };
    let mut cache_penalty_time = Time::ZERO;
    let mut self_copy_time = Time::ZERO;
    let mut iter_overhead_time = Time::ZERO;
    let mut shaper = faults.map(|plan| FaultShaper::new(plan, None));

    for (step_idx, step) in prog.steps().iter().enumerate() {
        let start = ready.iter().copied().min().unwrap_or(Time::ZERO);

        // ---- computation phase (+ iteration overhead + cache charges) ---
        let mut comp_end = ready.clone();
        for p in 0..procs {
            let mut charge = if step.comp.is_empty() {
                Time::ZERO
            } else {
                step.comp[p]
            };
            if let Some(load) = loads.get(step_idx) {
                let iter = ecfg.iter_overhead * load.visits[p] as u64;
                iter_overhead_time += iter;
                charge += iter;
                if let Some(cc) = &ecfg.cache {
                    let mut penalty = Time::ZERO;
                    for &(base, len) in &load.touches[p] {
                        match &mut caches[p] {
                            CacheSim::One(c) => {
                                penalty += cc.miss_penalty * c.touch_range(base, len as usize);
                            }
                            CacheSim::Two(h) => {
                                let (from_l2, from_mem) = h.touch_range(base, len as usize);
                                let l2cfg = ecfg.l2.as_ref().expect("l2 present");
                                penalty +=
                                    cc.miss_penalty * from_l2 + l2cfg.miss_penalty * from_mem;
                            }
                        }
                    }
                    cache_penalty_time += penalty;
                    charge += penalty;
                }
            }
            if let Some(sh) = shaper.as_mut() {
                // Slowdowns stretch everything the CPU does this phase
                // (base work, loop overhead and cache stalls alike);
                // outages add their fixed silence on top.
                charge = sh.comp_charge(step_idx, p, charge);
            }
            comp_end[p] = ready[p] + charge;
            per_proc_comp[p] += charge;
        }
        let comp_end_max = comp_end.iter().copied().max().unwrap_or(Time::ZERO);

        // ---- communication phase ----------------------------------------
        let (comm_end_max, mut next_ready) = if step.comm.is_empty() {
            (comp_end_max, comp_end.clone())
        } else {
            let result = simulate_comm(&step.comm, ecfg, step_idx as u64, &comp_end, faults);
            forced_sends += result.forced_sends;
            let mut comm_done = comp_end.clone();
            for ev in result.timeline.events() {
                comm_done[ev.proc] = comm_done[ev.proc].max(ev.end);
            }
            for p in 0..procs {
                per_proc_comm[p] += comm_done[p] - comp_end[p];
            }
            (
                comm_done.iter().copied().max().unwrap_or(comp_end_max),
                comm_done,
            )
        };

        // ---- local copies for self-messages ------------------------------
        for m in step.comm.messages() {
            if m.is_self_message() {
                let cost = ecfg.self_copy_per_byte * m.bytes as u64;
                self_copy_time += cost;
                per_proc_comm[m.src] += cost;
                next_ready[m.src] += cost;
            }
        }

        steps.push(StepRecord {
            label: step.label.clone(),
            start,
            comp_end: comp_end_max,
            comm_end: comm_end_max,
            forced_sends,
        });
        ready = next_ready;
    }

    let total = ready.iter().copied().max().unwrap_or(Time::ZERO);
    let (cache_hits, cache_misses) = caches.iter().fold((0, 0), |(h, m), c| match c {
        CacheSim::One(c) => (h + c.stats().hits, m + c.stats().misses),
        CacheSim::Two(hier) => (h + hier.l1_hits + hier.l2_hits, m + hier.mem_accesses),
    });

    Measurement {
        prediction: Prediction {
            total,
            comp_time: per_proc_comp.iter().copied().max().unwrap_or(Time::ZERO),
            comm_time: per_proc_comm.iter().copied().max().unwrap_or(Time::ZERO),
            per_proc_comp,
            per_proc_comm,
            per_proc_finish: ready,
            steps,
            forced_sends,
        },
        cache_hits,
        cache_misses,
        cache_penalty_time,
        self_copy_time,
        iter_overhead_time,
    }
}

/// One communication step under jitter + contention, via the hooked
/// standard algorithm (real executions behave like the eager,
/// receive-priority schedule, not like the overestimation).
fn simulate_comm(
    pattern: &CommPattern,
    ecfg: &EmulatorConfig,
    step_idx: u64,
    ready: &[Time],
    faults: Option<&FaultPlan>,
) -> commsim::SimResult {
    let params = ecfg.cfg.params;
    let jitter = ecfg.jitter_pct as i64;
    let contention = ecfg.contention;
    let shared_bus = ecfg.shared_bus;
    let mut link_free: HashMap<usize, Time> = HashMap::new();
    let mut bus_free = Time::ZERO;
    let mut rng = SmallRng::seed_from_u64(ecfg.cfg.seed ^ (0x9E37_79B9 ^ step_idx).rotate_left(17));
    let view = faults.map(|plan| StepFaultView::new(plan, step_idx));

    let mut arrival = |m: &commsim::Message, send_start: Time| {
        // Network part of the flight, jittered.
        let flight = params.wire_time(m.bytes) + params.latency;
        let factor_permille = if jitter == 0 {
            1000
        } else {
            // Clamp at zero: jitter_pct >= 100 can draw a factor below
            // -1000 permille, and a negative value cast to u64 would wrap
            // to ~2^64 and blow up the flight time.
            (1000 + rng.gen_range(-10 * jitter..=10 * jitter)).max(0) as u64
        };
        let flight = Time::from_ps(flight.as_ps() * factor_permille / 1000);
        let mut arrival = send_start + params.overhead + flight;
        if shared_bus {
            // One medium for everyone: each message's wire time occupies
            // the whole network.
            arrival = arrival.max(bus_free);
            bus_free = arrival + params.wire_time(m.bytes);
        }
        if contention {
            // The destination's input link drains one message at a time.
            // Applied after (not instead of) bus serialization when both
            // are enabled; a bus transfer also occupies the input link, so
            // link_free[dst] never exceeds bus_free and the combination
            // degenerates to the bus bound, but the drain is tracked so
            // the semantics are explicit rather than silently dropped.
            let free = link_free.entry(m.dst).or_insert(Time::ZERO);
            arrival = arrival.max(*free);
            *free = arrival + params.wire_time(m.bytes);
        }
        arrival
    };
    standard::simulate_faulted(
        pattern,
        &ecfg.cfg,
        ready,
        &mut arrival,
        None,
        view.as_ref().map(|v| v as &dyn StepFaults),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::patterns;
    use loggp::presets;
    use predsim_core::{simulate_program, SimOptions, Step};

    fn base_cfg(procs: usize) -> SimConfig {
        SimConfig::new(presets::meiko_cs2(procs))
    }

    /// An emulator with every extra effect switched off must agree exactly
    /// with the pure LogGP predictor.
    #[test]
    fn degenerates_to_predictor() {
        let mut prog = Program::new(4);
        let mut comm = CommPattern::new(4);
        comm.add(0, 1, 500);
        comm.add(2, 3, 700);
        comm.add(1, 3, 100);
        prog.push(
            Step::new("s")
                .with_comp(vec![Time::from_us(30.0); 4])
                .with_comm(comm),
        );
        let ecfg = EmulatorConfig {
            cfg: base_cfg(4),
            jitter_pct: 0,
            contention: false,
            shared_bus: false,
            self_copy_per_byte: Time::ZERO,
            iter_overhead: Time::ZERO,
            cache: None,
            l2: None,
        };
        let m = emulate(&prog, &[], &ecfg);
        let p = simulate_program(&prog, &SimOptions::new(base_cfg(4)));
        assert_eq!(m.prediction.total, p.total);
        assert_eq!(m.prediction.per_proc_finish, p.per_proc_finish);
        assert_eq!(m.prediction.comm_time, p.comm_time);
    }

    #[test]
    fn emulation_is_deterministic() {
        let mut prog = Program::new(6);
        prog.push(Step::new("c").with_comm(patterns::all_to_all(6, 256)));
        let ecfg = EmulatorConfig::meiko_like(base_cfg(6));
        let a = emulate(&prog, &[], &ecfg);
        let b = emulate(&prog, &[], &ecfg);
        assert_eq!(a.prediction.total, b.prediction.total);
        assert_eq!(a.prediction.per_proc_finish, b.prediction.per_proc_finish);
    }

    #[test]
    fn different_seeds_jitter_differently() {
        let mut prog = Program::new(4);
        prog.push(Step::new("c").with_comm(patterns::all_to_all(4, 4096)));
        let e1 = EmulatorConfig::meiko_like(base_cfg(4));
        let mut e2 = EmulatorConfig::meiko_like(base_cfg(4).with_seed(99));
        e2.cfg.tie_break = commsim::TieBreak::LowestId;
        let a = emulate(&prog, &[], &e1);
        let b = emulate(&prog, &[], &e2);
        assert_ne!(a.prediction.total, b.prediction.total);
    }

    #[test]
    fn contention_slows_fan_in() {
        // Many senders to one destination: serialized wire times make the
        // contended arrival strictly later for large messages.
        let mut prog = Program::new(8);
        prog.push(Step::new("fanin").with_comm(patterns::gather(8, 0, 8192)));
        let free = EmulatorConfig {
            cfg: base_cfg(8),
            jitter_pct: 0,
            contention: false,
            shared_bus: false,
            self_copy_per_byte: Time::ZERO,
            iter_overhead: Time::ZERO,
            cache: None,
            l2: None,
        };
        let mut contended = free.clone();
        contended.contention = true;
        let a = emulate(&prog, &[], &free);
        let b = emulate(&prog, &[], &contended);
        assert!(b.prediction.total >= a.prediction.total);
    }

    #[test]
    fn self_messages_charged_to_comm_section() {
        let mut prog = Program::new(2);
        let mut comm = CommPattern::new(2);
        comm.add(0, 0, 1_000_000); // 1 MB local copy
        prog.push(Step::new("local").with_comm(comm));
        let mut ecfg = EmulatorConfig::meiko_like(base_cfg(2));
        ecfg.jitter_pct = 0;
        let m = emulate(&prog, &[], &ecfg);
        let want = ecfg.self_copy_per_byte * 1_000_000;
        assert_eq!(m.self_copy_time, want);
        assert_eq!(m.prediction.per_proc_comm[0], want);
        assert_eq!(m.prediction.total, want);
    }

    #[test]
    fn iteration_overhead_scales_with_visits() {
        let mut prog = Program::new(2);
        prog.push(Step::new("w").with_comp(vec![Time::from_us(10.0); 2]));
        let mut load = StepLoad::new(2);
        load.add_visits(0, 7);
        let mut ecfg = EmulatorConfig::meiko_like(base_cfg(2));
        ecfg.cache = None;
        let m = emulate(&prog, &[load], &ecfg);
        assert_eq!(m.iter_overhead_time, ecfg.iter_overhead * 7);
        assert_eq!(
            m.prediction.per_proc_comp[0],
            Time::from_us(10.0) + ecfg.iter_overhead * 7
        );
        assert_eq!(m.prediction.per_proc_comp[1], Time::from_us(10.0));
    }

    #[test]
    fn cache_misses_penalize_computation() {
        // One processor re-touching a working set larger than the cache
        // pays a penalty every step; a fitting working set pays only
        // compulsory misses in the first step.
        let cc = CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 2,
            miss_penalty: Time::from_ns(100),
        };
        let block_bytes = 1024;
        let mk_prog = |blocks: u64| {
            let mut prog = Program::new(1);
            let mut loads = Vec::new();
            for s in 0..4 {
                prog.push(Step::new(format!("s{s}")).with_comp(vec![Time::from_us(1.0)]));
                let mut l = StepLoad::new(1);
                for b in 0..blocks {
                    l.touch(0, b * block_bytes as u64, block_bytes as u32);
                }
                loads.push(l);
            }
            (prog, loads)
        };
        let ecfg = EmulatorConfig {
            cfg: base_cfg(1),
            jitter_pct: 0,
            contention: false,
            shared_bus: false,
            self_copy_per_byte: Time::ZERO,
            iter_overhead: Time::ZERO,
            cache: Some(cc),
            l2: None,
        };
        let (small_prog, small_loads) = mk_prog(2); // 2 KB fits in 4 KB
        let small = emulate(&small_prog, &small_loads, &ecfg);
        let (big_prog, big_loads) = mk_prog(16); // 16 KB thrashes 4 KB
        let big = emulate(&big_prog, &big_loads, &ecfg);
        // Fitting: compulsory misses only (2 blocks * 16 lines).
        assert_eq!(small.cache_misses, 2 * (block_bytes as u64 / 64));
        // Thrashing: misses every step.
        assert_eq!(big.cache_misses, 4 * 16 * (block_bytes as u64 / 64));
        assert!(big.cache_penalty_time > small.cache_penalty_time);
    }

    #[test]
    fn jittered_emulation_stays_loggp_plausible() {
        // Even with jitter and contention, the completion can never beat
        // the jitter-free single-message lower bound minus the jitter
        // allowance.
        let mut prog = Program::new(2);
        let mut comm = CommPattern::new(2);
        comm.add(0, 1, 10_000);
        prog.push(Step::new("one").with_comm(comm));
        let ecfg = EmulatorConfig::meiko_like(base_cfg(2));
        let m = emulate(&prog, &[], &ecfg);
        let nominal = base_cfg(2).params.message_cost(10_000);
        let slack = nominal.as_ps() / 10; // 8% jitter < 10%
        assert!(m.prediction.total.as_ps() >= nominal.as_ps() - slack);
        assert!(m.prediction.total.as_ps() <= nominal.as_ps() + slack);
    }

    #[test]
    fn l2_reduces_repeat_sweep_penalty() {
        // Working set: 8 KB — thrashes a 4 KB L1 but fits a 64 KB L2.
        let mk = |l2: bool| {
            let mut prog = Program::new(1);
            let mut loads = Vec::new();
            for s in 0..3 {
                prog.push(Step::new(format!("s{s}")).with_comp(vec![Time::from_us(1.0)]));
                let mut l = StepLoad::new(1);
                l.touch(0, 0, 8192);
                loads.push(l);
            }
            let cc = CacheConfig {
                size_bytes: 4096,
                line_bytes: 64,
                ways: 2,
                miss_penalty: Time::from_ns(100),
            };
            let mut ecfg = EmulatorConfig {
                cfg: base_cfg(1),
                jitter_pct: 0,
                contention: false,
                shared_bus: false,
                self_copy_per_byte: Time::ZERO,
                iter_overhead: Time::ZERO,
                cache: Some(cc),
                l2: None,
            };
            if l2 {
                ecfg = ecfg.with_l2(64 * 1024, Time::from_us(1.0));
            }
            emulate(&prog, &loads, &ecfg)
        };
        let single = mk(false);
        let with_l2 = mk(true);
        // Single level: every sweep misses (128 lines x 3 sweeps x 100ns).
        assert_eq!(single.cache_penalty_time, Time::from_ns(100) * (3 * 128));
        // Hierarchy: first sweep pays the memory penalty, later sweeps are
        // serviced by L2 at the (cheaper here? no: L1 penalty 100ns) rate:
        // 128 lines from memory at 1us + 256 from L2 at 100ns.
        assert_eq!(
            with_l2.cache_penalty_time,
            Time::from_us(1.0) * 128 + Time::from_ns(100) * 256
        );
        assert_eq!(
            with_l2.cache_misses, 128,
            "only memory fills count as misses"
        );
    }

    #[test]
    fn shared_bus_serializes_everything() {
        // Disjoint pairs exchanging large messages: per-destination
        // contention sees no conflict, a shared bus serializes all wires.
        let mut prog = Program::new(8);
        let mut comm = CommPattern::new(8);
        for p in 0..4 {
            comm.add(p, p + 4, 64 * 1024);
        }
        prog.push(Step::new("pairs").with_comm(comm));
        let mut free = EmulatorConfig::meiko_like(base_cfg(8)).without_cache();
        free.jitter_pct = 0;
        let mut bus = free.clone();
        bus.shared_bus = true;
        let a = emulate(&prog, &[], &free);
        let b = emulate(&prog, &[], &bus);
        assert!(
            b.prediction.total > a.prediction.total,
            "bus {} should exceed switched {}",
            b.prediction.total,
            a.prediction.total
        );
        // Roughly 4 wire times on the bus vs 1 in the switched case.
        let wire = base_cfg(8).params.wire_time(64 * 1024);
        assert!(b.prediction.total >= a.prediction.total + wire * 2);
    }

    #[test]
    fn extreme_jitter_never_wraps_flight_times() {
        // jitter_pct = 100 can draw a factor of exactly 0 permille (free
        // flight); anything above 100 can draw a *negative* factor, which
        // used to wrap through the u64 cast and produce ~2^64 ps arrivals.
        // all_to_all(8) has 56 network messages, so at 150% jitter a
        // below-zero draw is overwhelmingly likely across seeds.
        for (jitter_pct, seeds) in [(100u32, 0..20u64), (150, 0..20)] {
            for seed in seeds {
                let mut prog = Program::new(8);
                prog.push(Step::new("a2a").with_comm(patterns::all_to_all(8, 4096)));
                let mut ecfg =
                    EmulatorConfig::meiko_like(base_cfg(8).with_seed(seed)).without_cache();
                ecfg.jitter_pct = jitter_pct;
                ecfg.contention = false;
                let m = emulate(&prog, &[], &ecfg);
                // Flight scale factor is at most (1000 + 10*jitter)/1000 =
                // 2.5x here; the whole step is bounded by a serialized
                // schedule of 56 maximally jittered messages.
                let worst_one = base_cfg(8).params.message_cost(4096) * 3;
                let bound = worst_one * 56;
                assert!(
                    m.prediction.total < bound,
                    "jitter {jitter_pct}% seed {seed}: total {} exceeds {bound} — wrapped flight",
                    m.prediction.total
                );
            }
        }
    }

    #[test]
    fn shared_bus_with_contention_equals_bus_alone() {
        // The input-link drain is subsumed by bus serialization (a bus
        // transfer occupies the destination link too), so enabling both
        // must behave exactly like the bus alone — and never be faster
        // than contention alone. Pre-fix, `contention` was silently
        // ignored whenever `shared_bus` was set.
        let mut prog = Program::new(8);
        let mut comm = CommPattern::new(8);
        for p in 0..4 {
            comm.add(p, p + 4, 64 * 1024);
        }
        comm.add(0, 7, 32 * 1024); // also exercise a shared destination
        comm.add(1, 7, 32 * 1024);
        prog.push(Step::new("mix").with_comm(comm));
        let mut base = EmulatorConfig::meiko_like(base_cfg(8)).without_cache();
        base.jitter_pct = 0;
        base.contention = false;

        let mut bus_only = base.clone();
        bus_only.shared_bus = true;
        let mut both = bus_only.clone();
        both.contention = true;
        let mut contention_only = base.clone();
        contention_only.contention = true;

        let bus = emulate(&prog, &[], &bus_only);
        let combined = emulate(&prog, &[], &both);
        let linked = emulate(&prog, &[], &contention_only);
        assert_eq!(
            combined.prediction.per_proc_finish, bus.prediction.per_proc_finish,
            "bus+contention must match the bus-alone schedule"
        );
        assert!(
            combined.prediction.total >= linked.prediction.total,
            "bus+contention {} cannot beat per-link contention {}",
            combined.prediction.total,
            linked.prediction.total
        );
    }

    #[test]
    fn zero_fault_plan_reproduces_emulate_exactly() {
        let mut prog = Program::new(4);
        prog.push(Step::new("a2a").with_comm(patterns::all_to_all(4, 1024)));
        let ecfg = EmulatorConfig::meiko_like(base_cfg(4));
        let plan =
            predsim_faults::FaultPlan::new(predsim_faults::FaultSpec::parse("none").unwrap(), 7);
        let clean = emulate(&prog, &[], &ecfg);
        let faulted = emulate_faulted(&prog, &[], &ecfg, Some(&plan));
        assert_eq!(faulted.prediction, clean.prediction);
    }

    #[test]
    fn drops_and_slowdowns_degrade_the_emulated_machine() {
        let mut prog = Program::new(4);
        for s in 0..4 {
            let mut c = CommPattern::new(4);
            for p in 0..4 {
                c.add(p, (p + 1) % 4, 2048);
            }
            prog.push(
                Step::new(format!("ring-{s}"))
                    .with_comp(vec![Time::from_us(20.0); 4])
                    .with_comm(c),
            );
        }
        let ecfg = EmulatorConfig::meiko_like(base_cfg(4));
        let clean = emulate(&prog, &[], &ecfg);
        let plan = predsim_faults::FaultPlan::new(
            predsim_faults::FaultSpec::parse("drop:0.5:100:6,slow:0.5:3").unwrap(),
            11,
        );
        let faulted = emulate_faulted(&prog, &[], &ecfg, Some(&plan));
        assert!(
            faulted.prediction.total > clean.prediction.total,
            "faults must cost time: {} vs {}",
            faulted.prediction.total,
            clean.prediction.total
        );
        // Determinism holds under faults too.
        let again = emulate_faulted(&prog, &[], &ecfg, Some(&plan));
        assert_eq!(again.prediction, faulted.prediction);
    }

    #[test]
    #[should_panic(expected = "parallel to the program steps")]
    fn loads_arity_checked() {
        let prog = {
            let mut p = Program::new(1);
            p.push(Step::new("s").with_comp(vec![Time::ZERO]));
            p
        };
        let ecfg = EmulatorConfig::meiko_like(base_cfg(1));
        let _ = emulate(&prog, &[StepLoad::new(1), StepLoad::new(1)], &ecfg);
    }
}
