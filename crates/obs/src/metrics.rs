//! The metrics registry: lock-free counters, gauges and fixed-bucket
//! histograms with Prometheus-style text exposition and a JSON dump.
//!
//! Registration (name → handle) takes a mutex once; every subsequent
//! update on the returned handle is a single relaxed atomic operation, so
//! instrumenting the simulators' hot paths costs nanoseconds. Metrics are
//! identified by a base name plus optional `key="value"` labels, exactly
//! as in the Prometheus exposition format.

use loggp::Time;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depth, cache size, ...).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (running maximum).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free exponentially weighted moving average over `u64` samples.
///
/// The smoothing factor is `1 / 2^shift` (shift 3 gives the classic
/// alpha = 1/8). State is a single `AtomicU64` updated with a CAS loop,
/// so feeders and readers never block each other; the first sample seeds
/// the average directly. Intended for online cost models (e.g. the serve
/// layer's ns-per-virtual-ps calibration), not for exposition — pair it
/// with a [`Gauge`] if the value should appear in `/metrics`.
#[derive(Debug)]
pub struct Ewma {
    /// Current average, or `u64::MAX` while unseeded.
    value: AtomicU64,
}

impl Default for Ewma {
    /// Same as [`Ewma::new`]: unseeded (a derived default would start
    /// the average at zero, which is a *seeded* value).
    fn default() -> Self {
        Ewma::new()
    }
}

impl Ewma {
    const EMPTY: u64 = u64::MAX;

    /// A fresh, unseeded average.
    pub fn new() -> Self {
        Ewma {
            value: AtomicU64::new(Self::EMPTY),
        }
    }

    /// Fold one sample in with weight `1 / 2^shift`.
    pub fn observe(&self, sample: u64, shift: u32) {
        let sample = sample.min(Self::EMPTY - 1);
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = if cur == Self::EMPTY {
                sample
            } else {
                // cur + (sample - cur) / 2^shift, in signed space so the
                // average can move down as well as up.
                let delta = (sample as i128 - cur as i128) >> shift;
                (cur as i128 + delta) as u64
            };
            match self
                .value
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current average, or `None` before the first sample.
    pub fn get(&self) -> Option<u64> {
        match self.value.load(Ordering::Relaxed) {
            Self::EMPTY => None,
            v => Some(v),
        }
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `<= bounds[i]`; one overflow bucket
/// catches the rest. Cumulative counts are computed at snapshot time, so
/// `observe` touches exactly one bucket plus sum and count.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a [`Time`] observation in ps.
    pub fn observe_time(&self, t: Time) {
        self.observe(t.as_ps());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }
}

/// `count` exponentially growing bucket bounds starting at `start`
/// (Prometheus's `exponential_buckets`).
pub fn exponential_buckets(start: u64, factor: u64, count: usize) -> Vec<u64> {
    assert!(start > 0 && factor > 1 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b = b.saturating_mul(factor);
    }
    bounds.dedup();
    bounds
}

/// Default bounds for host-side latencies in ns: 1 µs … ~1 s.
pub fn default_ns_buckets() -> Vec<u64> {
    exponential_buckets(1_000, 4, 10)
}

/// Default bounds for virtual times in ps: 1 ns … ~1 s.
pub fn default_ps_buckets() -> Vec<u64> {
    exponential_buckets(1_000, 8, 10)
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Clone, Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    handle: Handle,
}

/// The metric registry: a named collection of counters, gauges and
/// histograms. Cloning the returned `Arc` handles is the intended way to
/// hold hot-path references.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn labels_owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        mk: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut entries = self.entries.lock().expect("registry poisoned");
        let owned = labels_owned(labels);
        if let Some(e) = entries.iter().find(|e| e.name == name && e.labels == owned) {
            return e.handle.clone();
        }
        let handle = mk();
        entries.push(Entry {
            name: name.to_string(),
            labels: owned,
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Get or create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Get or create a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.get_or_insert(name, labels, help, || {
            Handle::Counter(Arc::new(Counter::default()))
        }) {
            Handle::Counter(c) => c,
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Get or create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Get or create a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, help, || {
            Handle::Gauge(Arc::new(Gauge::default()))
        }) {
            Handle::Gauge(g) => g,
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Get or create an unlabelled histogram with the given bucket bounds
    /// (the bounds of the first registration win).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], help, bounds)
    }

    /// Get or create a labelled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        bounds: &[u64],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, help, || {
            Handle::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Handle::Histogram(h) => h,
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// A point-in-time copy of every metric, in registration order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        MetricsSnapshot {
            metrics: entries
                .iter()
                .map(|e| MetricValue {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    help: e.help.clone(),
                    value: match &e.handle {
                        Handle::Counter(c) => SnapshotValue::Counter(c.get()),
                        Handle::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Handle::Histogram(h) => SnapshotValue::Histogram {
                            bounds: h.bounds.to_vec(),
                            buckets: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            sum: h.sum(),
                            count: h.count(),
                        },
                    },
                })
                .collect(),
        }
    }

    /// Prometheus text exposition of the current state.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// JSON dump of the current state.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A snapshot of one metric's value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state: per-bucket (non-cumulative) counts, with
    /// `buckets.len() == bounds.len() + 1` (the last is the overflow
    /// bucket).
    Histogram {
        /// Upper bounds, strictly increasing.
        bounds: Vec<u64>,
        /// Non-cumulative bucket counts (`bounds.len() + 1` entries).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

/// One metric in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricValue {
    /// Base metric name.
    pub name: String,
    /// `key=value` labels.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// The captured value.
    pub value: SnapshotValue,
}

/// A point-in-time copy of a [`Registry`], detached from the live
/// atomics — safe to ship in reports and across threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Captured metrics, in registration order.
    pub metrics: Vec<MetricValue>,
}

fn label_suffix(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
    {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

impl MetricsSnapshot {
    /// Value of the first counter or gauge matching `name` (and `labels`,
    /// when given) — the test-friendly accessor.
    pub fn scalar(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let owned = labels_owned(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name && (labels.is_empty() || m.labels == owned))
            .and_then(|m| match m.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => Some(v),
                SnapshotValue::Histogram { .. } => None,
            })
    }

    /// `(count, sum)` of the first histogram matching `name`.
    pub fn histogram_totals(&self, name: &str) -> Option<(u64, u64)> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .and_then(|m| match &m.value {
                SnapshotValue::Histogram { sum, count, .. } => Some((*count, *sum)),
                _ => None,
            })
    }

    /// Prometheus text exposition format (`# HELP` / `# TYPE` per family,
    /// cumulative `_bucket{le=...}` rows for histograms).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen_family: Vec<&str> = Vec::new();
        for m in &self.metrics {
            let type_name = match m.value {
                SnapshotValue::Counter(_) => "counter",
                SnapshotValue::Gauge(_) => "gauge",
                SnapshotValue::Histogram { .. } => "histogram",
            };
            if !seen_family.contains(&m.name.as_str()) {
                seen_family.push(&m.name);
                if !m.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                }
                let _ = writeln!(out, "# TYPE {} {}", m.name, type_name);
            }
            match &m.value {
                SnapshotValue::Counter(v) | SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", m.name, label_suffix(&m.labels, None));
                }
                SnapshotValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    let mut cumulative = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cumulative += b;
                        let le = match bounds.get(i) {
                            Some(bound) => bound.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            m.name,
                            label_suffix(&m.labels, Some(("le", &le)))
                        );
                    }
                    let suffix = label_suffix(&m.labels, None);
                    let _ = writeln!(out, "{}_sum{suffix} {sum}", m.name);
                    let _ = writeln!(out, "{}_count{suffix} {count}", m.name);
                }
            }
        }
        out
    }

    /// Strict-JSON dump (integers, strings, arrays, objects only; the
    /// overflow bucket's bound is `null`) — parseable by `predsim-lint`'s
    /// JSON parser.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", m.name);
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":\"{v}\"");
            }
            out.push_str("},");
            match &m.value {
                SnapshotValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                SnapshotValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                } => {
                    out.push_str("\"type\":\"histogram\",\"buckets\":[");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match bounds.get(j) {
                            Some(bound) => {
                                let _ = write!(out, "{{\"le\":{bound},\"count\":{b}}}");
                            }
                            None => {
                                let _ = write!(out, "{{\"le\":null,\"count\":{b}}}");
                            }
                        }
                    }
                    let _ = write!(out, "],\"sum\":{sum},\"count\":{count}");
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_on_first_sample_and_converges() {
        let e = Ewma::new();
        assert_eq!(e.get(), None);
        e.observe(1_000, 3);
        assert_eq!(e.get(), Some(1_000));
        for _ in 0..200 {
            e.observe(9_000, 3);
        }
        let v = e.get().unwrap();
        assert!((8_900..=9_000).contains(&v), "v = {v}");
        for _ in 0..200 {
            e.observe(100, 3);
        }
        let v = e.get().unwrap();
        assert!((100..=200).contains(&v), "v = {v}");
    }

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = Registry::new();
        let a = reg.counter("jobs_total", "jobs run");
        let b = reg.counter("jobs_total", "jobs run");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same handle behind both registrations");
        let g = reg.gauge("depth", "queue depth");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("jobs_total", &[]), Some(3));
        assert_eq!(snap.scalar("depth", &[]), Some(11));
        assert_eq!(snap.scalar("missing", &[]), None);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let reg = Registry::new();
        reg.counter_with("busy_ps", &[("proc", "0")], "busy")
            .add(10);
        reg.counter_with("busy_ps", &[("proc", "1")], "busy")
            .add(20);
        let snap = reg.snapshot();
        assert_eq!(snap.scalar("busy_ps", &[("proc", "0")]), Some(10));
        assert_eq!(snap.scalar("busy_ps", &[("proc", "1")]), Some(20));
        let prom = snap.to_prometheus();
        assert!(prom.contains("busy_ps{proc=\"0\"} 10"), "{prom}");
        assert!(prom.contains("busy_ps{proc=\"1\"} 20"), "{prom}");
        // One TYPE line for the family, not one per series.
        assert_eq!(prom.matches("# TYPE busy_ps counter").count(), 1);
    }

    #[test]
    fn histogram_buckets_and_exposition() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", "latency", &[10, 100, 1000]);
        for v in [5, 50, 500, 5000, 50] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5605);
        assert!((h.mean() - 1121.0).abs() < 1e-9);
        let prom = reg.render_prometheus();
        assert!(prom.contains("lat_ns_bucket{le=\"10\"} 1"), "{prom}");
        assert!(prom.contains("lat_ns_bucket{le=\"100\"} 3"), "{prom}");
        assert!(prom.contains("lat_ns_bucket{le=\"1000\"} 4"), "{prom}");
        assert!(prom.contains("lat_ns_bucket{le=\"+Inf\"} 5"), "{prom}");
        assert!(prom.contains("lat_ns_sum 5605"));
        assert!(prom.contains("lat_ns_count 5"));
        let snap = reg.snapshot();
        assert_eq!(snap.histogram_totals("lat_ns"), Some((5, 5605)));
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket() {
        let h = Histogram::new(&[10, 100]);
        h.observe(10); // `le` bounds are inclusive
        h.observe(11);
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1);
        h.observe_time(Time::from_ps(1_000));
        assert_eq!(h.buckets[2].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exponential_buckets_grow() {
        let b = exponential_buckets(1_000, 4, 5);
        assert_eq!(b, vec![1_000, 4_000, 16_000, 64_000, 256_000]);
        assert!(!default_ns_buckets().is_empty());
        assert!(!default_ps_buckets().is_empty());
    }

    #[test]
    fn json_dump_is_well_formed() {
        let reg = Registry::new();
        reg.counter("c", "a counter").inc();
        reg.gauge_with("g", &[("proc", "2")], "a gauge").set(9);
        reg.histogram("h", "a histogram", &[10]).observe(3);
        let json = reg.render_json();
        assert!(json.starts_with("{\"version\":1"));
        assert!(json.contains("\"type\":\"counter\",\"value\":1"), "{json}");
        assert!(json.contains("\"proc\":\"2\""), "{json}");
        assert!(json.contains("\"le\":null"), "{json}");
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }
}
