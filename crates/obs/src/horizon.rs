//! Virtual-time-horizon profiles and queue-depth analysis, computed from
//! a captured trace.
//!
//! Parallel discrete-event literature (Korniss et al., "Suppressing
//! Roughness of Virtual Times in Parallel Discrete-Event Simulations";
//! Shchur & Novotny, "On the Evolution of Time Horizons in Parallel and
//! Grid Simulations") treats the *virtual-time profile across processors*
//! as the key measurable of a parallel simulation: how far apart the
//! fastest and slowest processors drift step by step. The whole-program
//! predictor emits one [`TraceEvent::Front`] per processor per step; this
//! module folds them into that profile.

use crate::event::TraceEvent;
use loggp::Time;

/// The virtual-time front statistics of one program step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HorizonStep {
    /// Step index.
    pub step: u64,
    /// Slowest processor's virtual time after the step.
    pub min: Time,
    /// Fastest processor's virtual time after the step.
    pub max: Time,
    /// Mean front across processors.
    pub mean: Time,
    /// `max - min`: the roughness of the time horizon at this step.
    pub spread: Time,
}

/// The per-step min/max/mean virtual-time front across processors.
#[derive(Clone, Debug, Default)]
pub struct HorizonProfile {
    /// One entry per step that emitted fronts, in step order.
    pub steps: Vec<HorizonStep>,
}

impl HorizonProfile {
    /// Build the profile from [`TraceEvent::Front`] events (other events
    /// are ignored). Steps come back sorted by index.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut fronts: Vec<(u64, Vec<u64>)> = Vec::new();
        for ev in events {
            if let TraceEvent::Front { step, ps, .. } = ev {
                match fronts.binary_search_by_key(step, |(s, _)| *s) {
                    Ok(i) => fronts[i].1.push(*ps),
                    Err(i) => fronts.insert(i, (*step, vec![*ps])),
                }
            }
        }
        let steps = fronts
            .into_iter()
            .map(|(step, ps)| {
                let min = *ps.iter().min().expect("non-empty front");
                let max = *ps.iter().max().expect("non-empty front");
                let mean = ps.iter().sum::<u64>() / ps.len() as u64;
                HorizonStep {
                    step,
                    min: Time::from_ps(min),
                    max: Time::from_ps(max),
                    mean: Time::from_ps(mean),
                    spread: Time::from_ps(max - min),
                }
            })
            .collect();
        HorizonProfile { steps }
    }

    /// The largest spread over all steps (the roughest point of the
    /// horizon).
    pub fn max_spread(&self) -> Time {
        self.steps
            .iter()
            .map(|s| s.spread)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The step index with the largest spread, if any step exists.
    pub fn roughest_step(&self) -> Option<u64> {
        self.steps
            .iter()
            .max_by_key(|s| (s.spread, std::cmp::Reverse(s.step)))
            .map(|s| s.step)
    }

    /// ASCII rendering: one row per step, the `[min .. max]` band drawn
    /// over a time axis `width` columns wide, `*` marking the mean.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let width = width.max(10);
        let mut out = String::new();
        let Some(last) = self.steps.iter().map(|s| s.max).max() else {
            out.push_str("(no front events)\n");
            return out;
        };
        if last.is_zero() {
            out.push_str("(horizon never advanced)\n");
            return out;
        }
        let col = |t: Time| -> usize {
            ((t.as_ps() as u128 * (width as u128 - 1) / last.as_ps() as u128) as usize)
                .min(width - 1)
        };
        let _ = writeln!(
            out,
            "virtual-time horizon ({} steps, max spread {}):",
            self.steps.len(),
            self.max_spread()
        );
        for s in &self.steps {
            let mut row = vec![' '; width];
            let (c0, c1, cm) = (col(s.min), col(s.max), col(s.mean));
            for cell in row.iter_mut().take(c1 + 1).skip(c0) {
                *cell = '=';
            }
            row[c0] = '[';
            row[c1] = ']';
            row[cm] = '*';
            let _ = writeln!(
                out,
                "step {:>4} |{}| spread {}",
                s.step,
                row.iter().collect::<String>(),
                s.spread
            );
        }
        let _ = writeln!(
            out,
            "           0{}{last}",
            " ".repeat(width.saturating_sub(1))
        );
        out
    }
}

/// Per-destination maximum receive-queue depth, computed exactly from the
/// trace: a message occupies the destination's queue from its arrival
/// (`arrival_ps`) until its receive operation starts (`start_ps`).
///
/// Returns one entry per processor id up to the largest seen (processors
/// that received nothing report 0).
pub fn max_queue_depths(events: &[TraceEvent]) -> Vec<usize> {
    // (proc, time, delta); at equal times arrivals (+1) sort before
    // removals (-1) so an instantly received message still counts as
    // having been present.
    let mut marks: Vec<(usize, u64, i32)> = Vec::new();
    for ev in events {
        if let TraceEvent::Recv {
            proc,
            arrival_ps,
            start_ps,
            ..
        } = ev
        {
            marks.push((*proc, *arrival_ps, 1));
            marks.push((*proc, *start_ps, -1));
        }
    }
    let procs = marks.iter().map(|&(p, _, _)| p + 1).max().unwrap_or(0);
    let mut depths = vec![0usize; procs];
    for (p, slot) in depths.iter_mut().enumerate() {
        let mut own: Vec<(u64, i32)> = marks
            .iter()
            .filter(|&&(q, _, _)| q == p)
            .map(|&(_, t, d)| (t, d))
            .collect();
        own.sort_by_key(|&(t, d)| (t, std::cmp::Reverse(d)));
        let mut depth = 0i32;
        for (_, d) in own {
            depth += d;
            *slot = (*slot).max(depth as usize);
        }
    }
    depths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front(step: u64, proc: usize, ps: u64) -> TraceEvent {
        TraceEvent::Front { step, proc, ps }
    }

    #[test]
    fn profile_computes_min_max_mean_spread() {
        let events = vec![
            front(0, 0, 100),
            front(0, 1, 300),
            front(0, 2, 200),
            front(1, 0, 500),
            front(1, 1, 500),
            front(1, 2, 500),
        ];
        let profile = HorizonProfile::from_events(&events);
        assert_eq!(profile.steps.len(), 2);
        let s0 = profile.steps[0];
        assert_eq!(s0.min, Time::from_ps(100));
        assert_eq!(s0.max, Time::from_ps(300));
        assert_eq!(s0.mean, Time::from_ps(200));
        assert_eq!(s0.spread, Time::from_ps(200));
        let s1 = profile.steps[1];
        assert_eq!(s1.spread, Time::ZERO);
        assert_eq!(profile.max_spread(), Time::from_ps(200));
        assert_eq!(profile.roughest_step(), Some(0));
    }

    #[test]
    fn out_of_order_steps_are_sorted() {
        let events = vec![front(5, 0, 10), front(2, 0, 4), front(5, 1, 12)];
        let profile = HorizonProfile::from_events(&events);
        let idx: Vec<u64> = profile.steps.iter().map(|s| s.step).collect();
        assert_eq!(idx, vec![2, 5]);
    }

    #[test]
    fn render_draws_bands() {
        let events = vec![front(0, 0, 100), front(0, 1, 1000), front(1, 0, 2000)];
        let profile = HorizonProfile::from_events(&events);
        let text = profile.render(40);
        assert!(text.contains("step    0 |"), "{text}");
        assert!(text.contains('[') && text.contains(']') && text.contains('*'));
        assert!(HorizonProfile::default().render(40).contains("no front"));
    }

    #[test]
    fn queue_depths_count_overlapping_residency() {
        let recv = |proc: usize, arrival_ps: u64, start_ps: u64, msg_id: usize| TraceEvent::Recv {
            step: 0,
            proc,
            peer: 0,
            msg_id,
            bytes: 1,
            arrival_ps,
            start_ps,
            end_ps: start_ps + 1,
            drain: false,
        };
        // P1: three messages arrive at t=10 before any receive starts.
        let events = vec![
            recv(1, 10, 20, 0),
            recv(1, 10, 30, 1),
            recv(1, 10, 40, 2),
            // P2: back-to-back, never more than one pending.
            recv(2, 5, 5, 3),
            recv(2, 50, 60, 4),
        ];
        let depths = max_queue_depths(&events);
        assert_eq!(depths, vec![0, 3, 1]);
        assert!(max_queue_depths(&[]).is_empty());
    }
}
