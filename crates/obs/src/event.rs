//! Structured trace events and their JSONL serialization.
//!
//! Every event is one flat record; [`TraceEvent::to_json_line`] renders it
//! as a single strict-JSON object (integers, strings and booleans only —
//! exactly the subset `predsim-lint`'s parser accepts), so a JSONL trace
//! file round-trips through the workspace's own tooling.

use loggp::Time;

/// One observable occurrence inside the simulators or the engine.
///
/// Times are picoseconds of *virtual* (simulated) time except where a
/// field name says `wall_ns` (host wall-clock nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A committed send operation (`forced` marks the worst-case
    /// algorithm's deadlock-breaking transmissions).
    Send {
        /// Program step the operation belongs to.
        step: u64,
        /// Processor performing the send.
        proc: usize,
        /// Destination processor.
        peer: usize,
        /// Message id within the step's pattern.
        msg_id: usize,
        /// Message length in bytes.
        bytes: usize,
        /// Virtual time the send overhead starts.
        start_ps: u64,
        /// Virtual time the CPU is released.
        end_ps: u64,
        /// True for forced (deadlock-breaking) transmissions.
        forced: bool,
    },
    /// A committed receive operation.
    Recv {
        /// Program step the operation belongs to.
        step: u64,
        /// Processor performing the receive.
        proc: usize,
        /// Source processor.
        peer: usize,
        /// Message id within the step's pattern.
        msg_id: usize,
        /// Message length in bytes.
        bytes: usize,
        /// Virtual time the message became available at the destination.
        arrival_ps: u64,
        /// Virtual time the receive overhead starts.
        start_ps: u64,
        /// Virtual time the CPU is released.
        end_ps: u64,
        /// True when the receive happened in the standard algorithm's
        /// final drain phase (all sends done, receivers catching up).
        drain: bool,
    },
    /// A message sat in the destination's receive queue: the receive
    /// started strictly after the arrival (gap rule or competing work).
    GapStall {
        /// Program step.
        step: u64,
        /// Stalled (destination) processor.
        proc: usize,
        /// Message id that waited.
        msg_id: usize,
        /// Arrival time of the message.
        arrival_ps: u64,
        /// When its receive finally started.
        start_ps: u64,
        /// `start_ps - arrival_ps`.
        waited_ps: u64,
    },
    /// A processor's virtual-time front after a program step completes
    /// (its readiness for the next step). One event per processor per
    /// step; the horizon profile is computed from these.
    Front {
        /// Program step just completed.
        step: u64,
        /// Processor.
        proc: usize,
        /// The processor's virtual time after the step.
        ps: u64,
    },
    /// The engine dealt a job to a worker thread.
    WorkerAssign {
        /// Job index in submission order.
        job: u64,
        /// Worker thread index.
        worker: u64,
    },
    /// A batch job started executing.
    JobStart {
        /// Job index in submission order.
        job: u64,
        /// The job's label.
        label: String,
    },
    /// A batch job finished.
    JobFinish {
        /// Job index in submission order.
        job: u64,
        /// The job's label.
        label: String,
        /// Predicted total running time of the job, in ps (0 when the job
        /// crashed before producing a prediction).
        total_ps: u64,
        /// Host wall-clock the prediction took, in ns.
        wall_ns: u64,
        /// How the job ended: `"done"`, `"timed_out"` or `"crashed"`.
        outcome: String,
    },
    /// The memo cache answered a step lookup.
    MemoHit {
        /// Job index (u64::MAX when unknown).
        job: u64,
        /// Program step.
        step: u64,
    },
    /// The memo cache missed and the step was simulated.
    MemoMiss {
        /// Job index (u64::MAX when unknown).
        job: u64,
        /// Program step.
        step: u64,
    },
    /// A fault plan dropped one transmission attempt of a message; the
    /// sender will retransmit after its retransmission timeout.
    Drop {
        /// Program step.
        step: u64,
        /// Sending processor.
        proc: usize,
        /// Destination processor.
        peer: usize,
        /// Message id within the step's pattern.
        msg_id: usize,
        /// Zero-based index of the dropped transmission attempt.
        attempt: u64,
        /// Virtual time the dropped attempt was transmitted.
        at_ps: u64,
    },
    /// A retransmission of a previously dropped message attempt; the
    /// sender pays the full LogGP send cost (`o`, `g`, and eventually `L`)
    /// again.
    Retransmit {
        /// Program step.
        step: u64,
        /// Sending processor.
        proc: usize,
        /// Destination processor.
        peer: usize,
        /// Message id within the step's pattern.
        msg_id: usize,
        /// Zero-based index of this transmission attempt (≥ 1).
        attempt: u64,
        /// Retransmission timeout that was waited out before this attempt.
        rto_ps: u64,
        /// Virtual time the resend overhead starts.
        start_ps: u64,
        /// Virtual time the CPU is released.
        end_ps: u64,
    },
    /// A transient processor slowdown inflated a step's compute charge.
    Slowdown {
        /// Program step.
        step: u64,
        /// Slowed processor.
        proc: usize,
        /// Slowdown factor in percent (150 = 1.5× the base compute cost).
        factor_pct: u64,
        /// The step's base compute charge, in ps.
        base_ps: u64,
        /// Extra virtual time charged on top of the base, in ps.
        extra_ps: u64,
    },
    /// A processor fail-stopped at the beginning of a step: it is silent
    /// for the outage and its step readiness is pushed out accordingly.
    Fail {
        /// Program step at which the processor fails.
        step: u64,
        /// Failed processor.
        proc: usize,
        /// Length of the outage, in ps.
        outage_ps: u64,
    },
    /// A fail-stopped processor restarted; receives queued during the
    /// outage drain from here on.
    Restart {
        /// Program step at which the processor rejoins.
        step: u64,
        /// Restarted processor.
        proc: usize,
    },
}

/// Append `"key":<uint>` to `out`.
fn field_u64(out: &mut String, key: &str, v: u64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn field_bool(out: &mut String, key: &str, v: bool, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if v { "true" } else { "false" });
}

fn field_str(out: &mut String, key: &str, v: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl TraceEvent {
    /// The event's discriminator, as it appears in the JSON `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Send { .. } => "send",
            TraceEvent::Recv { .. } => "recv",
            TraceEvent::GapStall { .. } => "gap_stall",
            TraceEvent::Front { .. } => "front",
            TraceEvent::WorkerAssign { .. } => "worker_assign",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::JobFinish { .. } => "job_finish",
            TraceEvent::MemoHit { .. } => "memo_hit",
            TraceEvent::MemoMiss { .. } => "memo_miss",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::Slowdown { .. } => "slowdown",
            TraceEvent::Fail { .. } => "fail",
            TraceEvent::Restart { .. } => "restart",
        }
    }

    /// The event's virtual-time stamp (its latest ps field), where it has
    /// one; engine events carry no virtual time.
    pub fn ps(&self) -> Option<Time> {
        match *self {
            TraceEvent::Send { end_ps, .. } | TraceEvent::Recv { end_ps, .. } => {
                Some(Time::from_ps(end_ps))
            }
            TraceEvent::GapStall { start_ps, .. } => Some(Time::from_ps(start_ps)),
            TraceEvent::Front { ps, .. } => Some(Time::from_ps(ps)),
            TraceEvent::Drop { at_ps, .. } => Some(Time::from_ps(at_ps)),
            TraceEvent::Retransmit { end_ps, .. } => Some(Time::from_ps(end_ps)),
            _ => None,
        }
    }

    /// Serialize as one compact strict-JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        let mut first = true;
        let f = &mut first;
        field_str(&mut out, "ev", self.kind(), f);
        match self {
            TraceEvent::Send {
                step,
                proc,
                peer,
                msg_id,
                bytes,
                start_ps,
                end_ps,
                forced,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "peer", *peer as u64, f);
                field_u64(&mut out, "msg_id", *msg_id as u64, f);
                field_u64(&mut out, "bytes", *bytes as u64, f);
                field_u64(&mut out, "start_ps", *start_ps, f);
                field_u64(&mut out, "end_ps", *end_ps, f);
                field_bool(&mut out, "forced", *forced, f);
            }
            TraceEvent::Recv {
                step,
                proc,
                peer,
                msg_id,
                bytes,
                arrival_ps,
                start_ps,
                end_ps,
                drain,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "peer", *peer as u64, f);
                field_u64(&mut out, "msg_id", *msg_id as u64, f);
                field_u64(&mut out, "bytes", *bytes as u64, f);
                field_u64(&mut out, "arrival_ps", *arrival_ps, f);
                field_u64(&mut out, "start_ps", *start_ps, f);
                field_u64(&mut out, "end_ps", *end_ps, f);
                field_bool(&mut out, "drain", *drain, f);
            }
            TraceEvent::GapStall {
                step,
                proc,
                msg_id,
                arrival_ps,
                start_ps,
                waited_ps,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "msg_id", *msg_id as u64, f);
                field_u64(&mut out, "arrival_ps", *arrival_ps, f);
                field_u64(&mut out, "start_ps", *start_ps, f);
                field_u64(&mut out, "waited_ps", *waited_ps, f);
            }
            TraceEvent::Front { step, proc, ps } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "ps", *ps, f);
            }
            TraceEvent::WorkerAssign { job, worker } => {
                field_u64(&mut out, "job", *job, f);
                field_u64(&mut out, "worker", *worker, f);
            }
            TraceEvent::JobStart { job, label } => {
                field_u64(&mut out, "job", *job, f);
                field_str(&mut out, "label", label, f);
            }
            TraceEvent::JobFinish {
                job,
                label,
                total_ps,
                wall_ns,
                outcome,
            } => {
                field_u64(&mut out, "job", *job, f);
                field_str(&mut out, "label", label, f);
                field_u64(&mut out, "total_ps", *total_ps, f);
                field_u64(&mut out, "wall_ns", *wall_ns, f);
                field_str(&mut out, "outcome", outcome, f);
            }
            TraceEvent::MemoHit { job, step } | TraceEvent::MemoMiss { job, step } => {
                field_u64(&mut out, "job", *job, f);
                field_u64(&mut out, "step", *step, f);
            }
            TraceEvent::Drop {
                step,
                proc,
                peer,
                msg_id,
                attempt,
                at_ps,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "peer", *peer as u64, f);
                field_u64(&mut out, "msg_id", *msg_id as u64, f);
                field_u64(&mut out, "attempt", *attempt, f);
                field_u64(&mut out, "at_ps", *at_ps, f);
            }
            TraceEvent::Retransmit {
                step,
                proc,
                peer,
                msg_id,
                attempt,
                rto_ps,
                start_ps,
                end_ps,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "peer", *peer as u64, f);
                field_u64(&mut out, "msg_id", *msg_id as u64, f);
                field_u64(&mut out, "attempt", *attempt, f);
                field_u64(&mut out, "rto_ps", *rto_ps, f);
                field_u64(&mut out, "start_ps", *start_ps, f);
                field_u64(&mut out, "end_ps", *end_ps, f);
            }
            TraceEvent::Slowdown {
                step,
                proc,
                factor_pct,
                base_ps,
                extra_ps,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "factor_pct", *factor_pct, f);
                field_u64(&mut out, "base_ps", *base_ps, f);
                field_u64(&mut out, "extra_ps", *extra_ps, f);
            }
            TraceEvent::Fail {
                step,
                proc,
                outage_ps,
            } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
                field_u64(&mut out, "outage_ps", *outage_ps, f);
            }
            TraceEvent::Restart { step, proc } => {
                field_u64(&mut out, "step", *step, f);
                field_u64(&mut out, "proc", *proc as u64, f);
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_flat_objects() {
        let ev = TraceEvent::Send {
            step: 3,
            proc: 1,
            peer: 2,
            msg_id: 7,
            bytes: 1024,
            start_ps: 5_000_000,
            end_ps: 11_000_000,
            forced: false,
        };
        let line = ev.to_json_line();
        assert!(line.starts_with("{\"ev\":\"send\""), "{line}");
        assert!(line.contains("\"bytes\":1024"));
        assert!(line.contains("\"forced\":false"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn labels_are_escaped() {
        let ev = TraceEvent::JobStart {
            job: 0,
            label: "ge \"960\"\n@meiko\\".into(),
        };
        let line = ev.to_json_line();
        assert!(line.contains(r#"\"960\""#), "{line}");
        assert!(line.contains(r"\n"));
        assert!(line.contains(r"\\"));
    }

    #[test]
    fn kinds_and_ps_accessor() {
        let recv = TraceEvent::Recv {
            step: 0,
            proc: 0,
            peer: 1,
            msg_id: 0,
            bytes: 1,
            arrival_ps: 10,
            start_ps: 12,
            end_ps: 20,
            drain: true,
        };
        assert_eq!(recv.kind(), "recv");
        assert_eq!(recv.ps(), Some(Time::from_ps(20)));
        let assign = TraceEvent::WorkerAssign { job: 1, worker: 0 };
        assert_eq!(assign.kind(), "worker_assign");
        assert_eq!(assign.ps(), None);
    }

    #[test]
    fn fault_events_serialize_and_stamp() {
        let drop = TraceEvent::Drop {
            step: 2,
            proc: 0,
            peer: 3,
            msg_id: 5,
            attempt: 0,
            at_ps: 1_000,
        };
        assert_eq!(drop.kind(), "drop");
        assert_eq!(drop.ps(), Some(Time::from_ps(1_000)));
        let line = drop.to_json_line();
        assert!(line.starts_with("{\"ev\":\"drop\""), "{line}");
        assert!(line.contains("\"attempt\":0"), "{line}");

        let re = TraceEvent::Retransmit {
            step: 2,
            proc: 0,
            peer: 3,
            msg_id: 5,
            attempt: 1,
            rto_ps: 200_000_000,
            start_ps: 201_000_000,
            end_ps: 201_002_000,
        };
        assert_eq!(re.kind(), "retransmit");
        assert_eq!(re.ps(), Some(Time::from_ps(201_002_000)));
        assert!(re.to_json_line().contains("\"rto_ps\":200000000"));

        let slow = TraceEvent::Slowdown {
            step: 1,
            proc: 2,
            factor_pct: 250,
            base_ps: 100,
            extra_ps: 150,
        };
        assert_eq!(slow.kind(), "slowdown");
        assert_eq!(slow.ps(), None);
        assert!(slow.to_json_line().contains("\"factor_pct\":250"));

        let fail = TraceEvent::Fail {
            step: 3,
            proc: 0,
            outage_ps: 500_000_000,
        };
        assert_eq!(fail.kind(), "fail");
        assert!(fail.to_json_line().contains("\"outage_ps\":500000000"));

        let restart = TraceEvent::Restart { step: 3, proc: 0 };
        assert_eq!(restart.kind(), "restart");
        assert_eq!(
            restart.to_json_line(),
            "{\"ev\":\"restart\",\"step\":3,\"proc\":0}"
        );
    }

    #[test]
    fn job_finish_carries_outcome() {
        let ev = TraceEvent::JobFinish {
            job: 4,
            label: "ge".into(),
            total_ps: 0,
            wall_ns: 12,
            outcome: "crashed".into(),
        };
        assert!(ev.to_json_line().contains("\"outcome\":\"crashed\""));
    }
}
