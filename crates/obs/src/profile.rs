//! Wall-clock profiling hooks: scoped timer guards and per-phase
//! accounting.

use crate::metrics::{Counter, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Where a [`ScopedTimer`] deposits its elapsed nanoseconds on drop.
enum TimerTarget {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
    Cell(Arc<AtomicU64>),
}

/// An RAII guard that measures the wall-clock time of a scope and adds the
/// elapsed nanoseconds to its target when dropped.
///
/// ```
/// use predsim_obs::{Registry, ScopedTimer};
/// let reg = Registry::new();
/// let phase = reg.counter("phase_sim_ns", "time simulating");
/// {
///     let _t = ScopedTimer::counter(&phase);
///     // ... the work being profiled ...
/// }
/// assert!(phase.get() > 0 || phase.get() == 0); // recorded on drop
/// ```
pub struct ScopedTimer {
    start: Instant,
    target: TimerTarget,
}

impl ScopedTimer {
    /// Accumulate elapsed ns into a counter.
    pub fn counter(c: &Arc<Counter>) -> Self {
        ScopedTimer {
            start: Instant::now(),
            target: TimerTarget::Counter(Arc::clone(c)),
        }
    }

    /// Observe elapsed ns into a histogram (one observation per scope).
    pub fn histogram(h: &Arc<Histogram>) -> Self {
        ScopedTimer {
            start: Instant::now(),
            target: TimerTarget::Histogram(Arc::clone(h)),
        }
    }

    fn cell(cell: &Arc<AtomicU64>) -> Self {
        ScopedTimer {
            start: Instant::now(),
            target: TimerTarget::Cell(Arc::clone(cell)),
        }
    }

    /// Nanoseconds elapsed so far (the guard keeps running).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        match &self.target {
            TimerTarget::Counter(c) => c.add(ns),
            TimerTarget::Histogram(h) => h.observe(ns),
            TimerTarget::Cell(cell) => {
                cell.fetch_add(ns, Ordering::Relaxed);
            }
        }
    }
}

/// Per-phase wall-clock accounting: a small named set of nanosecond
/// accumulators, safe to update from many threads.
///
/// Phases are created on first use; [`PhaseProfile::report`] renders the
/// totals largest-first.
#[derive(Debug, Default)]
pub struct PhaseProfile {
    phases: std::sync::Mutex<Vec<(String, Arc<AtomicU64>)>>,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        PhaseProfile::default()
    }

    fn cell_of(&self, phase: &str) -> Arc<AtomicU64> {
        let mut phases = self.phases.lock().expect("profile poisoned");
        if let Some((_, cell)) = phases.iter().find(|(name, _)| name == phase) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(AtomicU64::new(0));
        phases.push((phase.to_string(), Arc::clone(&cell)));
        cell
    }

    /// Start timing `phase`; the elapsed time is added when the guard
    /// drops.
    pub fn enter(&self, phase: &str) -> ScopedTimer {
        ScopedTimer::cell(&self.cell_of(phase))
    }

    /// Add `ns` to `phase` directly (for externally measured spans).
    pub fn add_ns(&self, phase: &str, ns: u64) {
        self.cell_of(phase).fetch_add(ns, Ordering::Relaxed);
    }

    /// `(phase, total ns)` pairs, in creation order.
    pub fn totals(&self) -> Vec<(String, u64)> {
        self.phases
            .lock()
            .expect("profile poisoned")
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// Human-readable totals, largest first.
    pub fn report(&self) -> String {
        let mut totals = self.totals();
        totals.sort_by_key(|(_, ns)| std::cmp::Reverse(*ns));
        let mut out = String::new();
        for (name, ns) in totals {
            out.push_str(&format!("{name}: {:.3} ms\n", ns as f64 / 1e6));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn scoped_timer_records_into_counter_and_histogram() {
        let reg = Registry::new();
        let c = reg.counter("t_ns", "");
        let h = reg.histogram("h_ns", "", &[1_000_000_000]);
        {
            let _a = ScopedTimer::counter(&c);
            let _b = ScopedTimer::histogram(&h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(c.get() >= 1_000_000, "at least the slept ms: {}", c.get());
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000);
    }

    #[test]
    fn phase_profile_accumulates_per_phase() {
        let profile = PhaseProfile::new();
        profile.add_ns("build", 500);
        profile.add_ns("simulate", 2_000);
        profile.add_ns("build", 250);
        {
            let _t = profile.enter("simulate");
        }
        let totals = profile.totals();
        assert_eq!(totals[0].0, "build");
        assert_eq!(totals[0].1, 750);
        assert!(totals[1].1 >= 2_000);
        let report = profile.report();
        let first = report.lines().next().unwrap();
        assert!(first.starts_with("simulate:"), "largest first: {report}");
    }

    #[test]
    fn elapsed_ns_is_monotone() {
        let reg = Registry::new();
        let c = reg.counter("x_ns", "");
        let t = ScopedTimer::counter(&c);
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
