//! `predsim-obs` — the observability layer: event tracing, metrics and
//! profiling for the LogGP simulators.
//!
//! The paper's whole value proposition is that the simulator's internal
//! schedule — the per-processor send/receive sequences of Figure 2 —
//! explains *where the time goes*; this crate makes that schedule (and the
//! engine activity around it) observable instead of discarding it:
//!
//! * [`TraceEvent`] / [`TraceSink`] — a structured event stream. The
//!   simulators emit one event per committed send/receive (plus gap-stall
//!   and drain markers), the whole-program predictor emits per-step
//!   virtual-time fronts, and the batch engine emits job / worker / memo
//!   events. Sinks: [`MemorySink`] (in-process analysis), [`JsonlSink`]
//!   (one strict-JSON object per line, parseable by `predsim-lint`'s
//!   parser) and [`NullSink`].
//! * [`Registry`] — lock-free counters, gauges and fixed-bucket histograms
//!   with Prometheus-style text exposition and a JSON dump; updates are
//!   single atomic operations so instrumented hot paths stay cheap.
//! * [`ScopedTimer`] / [`PhaseProfile`] — wall-clock profiling guards used
//!   by the engine for per-phase accounting.
//! * [`HorizonProfile`] — the virtual-time-horizon profile across
//!   processors per step (min/max/mean front, à la Korniss et al.'s
//!   virtual-time roughness analyses), computed from the trace.
//!
//! The crate depends only on `loggp` (for [`loggp::Time`]); every consumer
//! of the simulators can therefore feed it without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod horizon;
pub mod metrics;
pub mod profile;
pub mod sink;

pub use event::TraceEvent;
pub use horizon::{max_queue_depths, HorizonProfile, HorizonStep};
pub use metrics::{
    default_ns_buckets, default_ps_buckets, exponential_buckets, Counter, Ewma, Gauge, Histogram,
    MetricsSnapshot, Registry,
};
pub use profile::{PhaseProfile, ScopedTimer};
pub use sink::{JsonlSink, MemorySink, NullSink, TraceSink};
