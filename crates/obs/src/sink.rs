//! Trace sinks: where emitted events go.

use crate::event::TraceEvent;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;

/// A consumer of [`TraceEvent`]s.
///
/// Sinks are shared by reference across simulator calls and engine worker
/// threads, so emission takes `&self` and implementations synchronize
/// internally. Emission must not influence simulation results — sinks
/// observe, they never steer.
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, ev: &TraceEvent);

    /// Flush buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// Discards everything (the disabled-tracing fast path).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _ev: &TraceEvent) {}
}

/// Collects events in memory, in emission order.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// True iff nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all captured events.
    pub fn clear(&self) {
        self.events.lock().expect("trace sink poisoned").clear();
    }

    /// Render every captured event as JSONL (one object per line, each
    /// line newline-terminated).
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().expect("trace sink poisoned");
        let mut out = String::new();
        for ev in events.iter() {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, ev: &TraceEvent) {
        self.events
            .lock()
            .expect("trace sink poisoned")
            .push(ev.clone());
    }
}

/// Streams events as JSONL to any writer (a file, a pipe, a buffer).
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<BufWriter<W>>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(BufWriter::new(writer)),
        }
    }

    /// Flush and hand the writer back.
    pub fn into_inner(self) -> io::Result<W> {
        self.writer
            .into_inner()
            .expect("trace sink poisoned")
            .into_inner()
            .map_err(|e| e.into_error())
    }
}

impl JsonlSink<std::fs::File> {
    /// Create (truncating) `path` and stream events into it.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, ev: &TraceEvent) {
        let mut w = self.writer.lock().expect("trace sink poisoned");
        // Trace output is best-effort: an unwritable sink must not abort
        // the simulation that is being observed.
        let _ = writeln!(w, "{}", ev.to_json_line());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("trace sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front(step: u64, proc: usize, ps: u64) -> TraceEvent {
        TraceEvent::Front { step, proc, ps }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&front(0, 0, 5));
        sink.emit(&front(0, 1, 9));
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1], front(0, 1, 9));
        assert_eq!(sink.to_jsonl().lines().count(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.emit(&front(1, 2, 77));
        sink.emit(&front(1, 3, 78));
        sink.flush();
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn null_sink_accepts_everything() {
        let sink = NullSink;
        sink.emit(&front(0, 0, 0));
        sink.flush();
    }
}
