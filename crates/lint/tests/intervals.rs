//! Soundness suite for the cost-interval interpreter: the headline
//! guarantee is that the static bracket surrounds both simulators,
//!
//! ```text
//! static_lo <= simulate_standard  <= static_hi
//! static_lo <= simulate_worst_case <= static_hi
//! ```
//!
//! under every machine preset, both gap rules, random tie-breaking and
//! any seed — for the shipped generators and for random programs. The
//! shipped generators additionally satisfy the paper's full ordering
//! `static_lo <= standard <= worst_case <= static_hi`; see
//! [`worst_case_can_undercut_standard_across_steps`] for why the middle
//! inequality is not asserted for arbitrary multi-step programs. Plus
//! fixtures for the `PS06xx` pass family and the emit-time span-ordering
//! regression.

use commsim::{patterns, SimConfig};
use loggp::{presets, LogGpParams, Time};
use predsim_core::simulate::{Overlap, Synchronization};
use predsim_core::{simulate_program, Program, SimOptions, Step};
use predsim_lint::interval::{analyze, BoundsConfig};
use predsim_lint::{check_program, Code, LintOptions, ProgramView, Severity};
use proptest::prelude::*;

/// Assert the static bracket around BOTH simulators for one program under
/// one configuration:
///
/// ```text
/// static_lo <= simulate_standard <= static_hi
/// static_lo <= simulate_worst_case <= static_hi
/// ```
///
/// Deliberately NOT asserted here: `standard <= worst_case`. That middle
/// inequality is only a theorem for a single communication pattern started
/// from a *uniform* per-processor entry front (which is what the paper and
/// the per-pattern props in `commsim` cover). Across a multi-step program
/// the computation phases stagger each step's entry front, and the
/// worst-case algorithm's receive-first schedule can then finish a
/// processor *earlier* than the standard schedule — see
/// [`worst_case_can_undercut_standard_across_steps`] for a pinned
/// counterexample. The static bracket must therefore hold around each
/// simulator independently, which is exactly what it guarantees.
fn assert_chain(
    label: &str,
    program: &Program,
    cfg: SimConfig,
    sync: Synchronization,
    overlap: Overlap,
) {
    let (bounds, std, wc) = run_all(program, cfg, sync, overlap);
    assert!(
        bounds.lo <= std.total,
        "{label}: static_lo {} > standard {}",
        bounds.lo,
        std.total
    );
    assert!(
        std.total <= bounds.hi,
        "{label}: standard {} > static_hi {}",
        std.total,
        bounds.hi
    );
    assert!(
        bounds.lo <= wc.total,
        "{label}: static_lo {} > worst-case {}",
        bounds.lo,
        wc.total
    );
    assert!(
        wc.total <= bounds.hi,
        "{label}: worst-case {} > static_hi {}",
        wc.total,
        bounds.hi
    );
}

/// [`assert_chain`] plus the paper's full ordering
/// `lo <= std <= wc <= hi`. Used for the shipped generator programs, whose
/// regular step structure keeps the worst-case algorithm dominant (the
/// `bench` and `apsp` crates already pin this for GE and APSP).
fn assert_full_chain(label: &str, program: &Program, cfg: SimConfig) {
    let (_, std, wc) = run_all(program, cfg, Synchronization::PerProcessor, Overlap::None);
    assert!(
        std.total <= wc.total,
        "{label}: standard {} > worst-case {}",
        std.total,
        wc.total
    );
    assert_chain(
        label,
        program,
        cfg,
        Synchronization::PerProcessor,
        Overlap::None,
    );
}

fn run_all(
    program: &Program,
    cfg: SimConfig,
    sync: Synchronization,
    overlap: Overlap,
) -> (
    predsim_lint::ProgramBounds,
    predsim_core::Prediction,
    predsim_core::Prediction,
) {
    let bounds_cfg = BoundsConfig::new(cfg.params)
        .with_sync(sync)
        .with_overlap(overlap);
    let bounds = analyze(&ProgramView::of(program), &bounds_cfg)
        .unwrap_or_else(|| panic!("analyze refused a well-formed program"));
    let mut opts = SimOptions::new(cfg).with_barrier_if(sync);
    if matches!(overlap, Overlap::RecvOnly) {
        opts = opts.with_overlap();
    }
    let std = simulate_program(program, &opts);
    let wc = simulate_program(program, &opts.worst_case());
    (bounds, std, wc)
}

/// Small shim so the chain helper can request a barrier conditionally.
trait WithBarrierIf {
    fn with_barrier_if(self, sync: Synchronization) -> Self;
}

impl WithBarrierIf for SimOptions {
    fn with_barrier_if(self, sync: Synchronization) -> Self {
        match sync {
            Synchronization::Barrier => self.with_barrier(),
            Synchronization::PerProcessor => self,
        }
    }
}

// ---------------------------------------------------------------------------
// Shipped generators x every machine preset.
// ---------------------------------------------------------------------------

#[test]
fn generator_programs_are_bracketed_under_every_preset() {
    let cost = blockops::AnalyticCost::paper_default();
    let mut programs: Vec<(String, Program)> = Vec::new();
    for layout in [
        &predsim_core::Diagonal::new(8) as &dyn predsim_core::Layout,
        &predsim_core::RowCyclic::new(8),
        &predsim_core::ColCyclic::new(8),
    ] {
        programs.push((
            format!("ge/{}", layout.name()),
            gauss::generate(240, 24, layout, &cost).program,
        ));
        programs.push((
            format!("apsp/{}", layout.name()),
            apsp::generate(120, 24, layout, &cost).program,
        ));
    }
    programs.push(("cannon".into(), cannon::generate(64, 4, &cost).program));
    programs.push(("stencil".into(), stencil::generate(64, 8, 4, 500).program));

    for (name, program) in &programs {
        for preset in presets::all(program.procs()) {
            let label = format!("{name} on {}", preset.name);
            let cfg = SimConfig::new(preset.params);
            assert_full_chain(&label, program, cfg);
        }
    }
}

#[test]
fn generator_programs_are_bracketed_under_model_variations() {
    let cost = blockops::AnalyticCost::paper_default();
    let layout = predsim_core::Diagonal::new(8);
    let ge = gauss::generate(240, 24, &layout, &cost).program;
    for preset in [presets::meiko_cs2(8), presets::intel_paragon(8)] {
        for classic in [false, true] {
            for sync in [Synchronization::PerProcessor, Synchronization::Barrier] {
                for overlap in [Overlap::None, Overlap::RecvOnly] {
                    let mut cfg = SimConfig::new(preset);
                    if classic {
                        cfg = cfg.with_classic_gap_rule();
                    }
                    let label = format!("ge classic={classic} sync={sync:?} overlap={overlap:?}");
                    assert_chain(&label, &ge, cfg, sync, overlap);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Random traces: programs, machines, seeds, gap rules, tie-breaking.
// ---------------------------------------------------------------------------

fn arb_params() -> impl Strategy<Value = LogGpParams> {
    (
        0u64..50_000, // L ns
        1u64..20_000, // o ns
        0u64..50_000, // gap surplus over o, ns
        0u64..100,    // G ns/byte
    )
        .prop_map(|(l, o, extra, g)| LogGpParams {
            latency: Time::from_ns(l),
            overhead: Time::from_ns(o),
            gap: Time::from_ns(o + extra),
            gap_per_byte: Time::from_ns(g),
            procs: 0, // fixed up by caller
        })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..8, 1usize..5, any::<u64>()).prop_map(|(procs, steps, seed)| {
        let mut program = Program::new(procs);
        for s in 0..steps {
            let mix = seed.rotate_left(s as u32);
            let comp: Vec<Time> = (0..procs)
                .map(|p| Time::from_ns((mix >> (p % 16)) & 0xffff))
                .collect();
            let pattern = patterns::random(procs, (mix % 20) as usize, 2048, mix);
            let mut step = Step::new(format!("s{s}")).with_comp(comp);
            if !pattern.is_empty() {
                step = step.with_comm(pattern);
            }
            program.push(step);
        }
        program
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The headline chain holds for arbitrary programs (cycles and forced
    /// transmissions included) under arbitrary machines, seeds, both gap
    /// rules and random tie-breaking.
    #[test]
    fn random_programs_are_bracketed(
        program in arb_program(),
        params in arb_params(),
        seed in any::<u64>(),
        classic_gap in proptest::bool::ANY,
        random_ties in proptest::bool::ANY,
        barrier in proptest::bool::ANY,
        recv_only in proptest::bool::ANY,
    ) {
        let params = params.with_procs(program.procs());
        let mut cfg = SimConfig::new(params).with_seed(seed);
        if classic_gap {
            cfg = cfg.with_classic_gap_rule();
        }
        if random_ties {
            cfg = cfg.with_random_ties(seed);
        }
        let sync = if barrier { Synchronization::Barrier } else { Synchronization::PerProcessor };
        let overlap = if recv_only { Overlap::RecvOnly } else { Overlap::None };
        assert_chain("random program", &program, cfg, sync, overlap);
    }

    /// The interpreter agrees with itself: per-proc intervals are ordered,
    /// per-step intervals are monotone along the program, and the
    /// critical path has exactly one span per step.
    #[test]
    fn interval_structure_is_coherent(
        program in arb_program(),
        params in arb_params(),
    ) {
        let params = params.with_procs(program.procs());
        let b = analyze(&ProgramView::of(&program), &BoundsConfig::new(params)).unwrap();
        prop_assert!(b.lo <= b.hi);
        for &(lo, hi) in &b.per_proc {
            prop_assert!(lo <= hi);
        }
        let mut prev = (Time::ZERO, Time::ZERO);
        for s in &b.steps {
            prop_assert!(s.lo_end <= s.hi_end, "step {}: lo > hi", s.step);
            prop_assert!(s.lo_end >= prev.0 && s.hi_end >= prev.1, "step {}: not monotone", s.step);
            prev = (s.lo_end, s.hi_end);
        }
        prop_assert_eq!(b.critical_path.len(), program.len());
        prop_assert_eq!(b.hi, b.steps.last().map(|s| s.hi_end).unwrap_or(Time::ZERO));
    }
}

// ---------------------------------------------------------------------------
// PS06xx fixtures: each code fires on a crafted program.
// ---------------------------------------------------------------------------

fn find(report: &predsim_lint::Report, code: Code) -> &predsim_lint::Diagnostic {
    report
        .diagnostics()
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code} in:\n{}", report.render()))
}

#[test]
fn ps0601_static_imbalance() {
    // One processor computes 100x the others across every step.
    let mut program = Program::new(4);
    for s in 0..4 {
        let mut comp = vec![Time::from_us(1.0); 4];
        comp[2] = Time::from_us(100.0);
        program.push(Step::new(format!("skew{s}")).with_comp(comp));
    }
    let report = check_program(
        &program,
        &LintOptions::default().with_params(presets::meiko_cs2(4)),
    );
    let d = find(&report, Code::StaticImbalance);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.proc, Some(2));
    assert!(d.message.contains("imbalanced"), "{}", d.message);
}

#[test]
fn ps0602_contention_hotspot_on_gather() {
    let params = LogGpParams {
        latency: Time::from_us(1.0),
        overhead: Time::from_us(1.0),
        gap: Time::from_us(50.0),
        gap_per_byte: Time::ZERO,
        procs: 8,
    };
    let mut program = Program::new(8);
    program.push(Step::new("gather").with_comm(patterns::gather(8, 0, 64)));
    let report = check_program(&program, &LintOptions::default().with_params(params));
    let d = find(&report, Code::ContentionHotspot);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.proc, Some(0));
    assert!(d.message.contains("gap-serialized"), "{}", d.message);
}

#[test]
fn ps0603_bandwidth_dominated_big_messages() {
    let params = LogGpParams {
        latency: Time::from_ns(100),
        overhead: Time::from_ns(100),
        gap: Time::from_ns(100),
        gap_per_byte: Time::from_ns(50),
        procs: 2,
    };
    let mut pattern = commsim::CommPattern::new(2);
    pattern.add(0, 1, 1 << 20);
    let mut program = Program::new(2);
    program.push(Step::new("bulk").with_comm(pattern));
    let report = check_program(&program, &LintOptions::default().with_params(params));
    let d = find(&report, Code::BandwidthDominated);
    assert_eq!(d.severity, Severity::Info);
    assert!(
        d.notes.iter().any(|n| n.contains("block size")),
        "{:?}",
        d.notes
    );
}

#[test]
fn ps0604_divergence_risk_on_cyclic_fan_in() {
    // A dense all-to-all ring-of-rings: everything is reachable from a
    // cycle, so the ceiling blob dwarfs the floor.
    let mut pattern = commsim::CommPattern::new(6);
    for src in 0..6usize {
        for dst in 0..6usize {
            if src != dst {
                pattern.add(src, dst, 4096);
            }
        }
    }
    let mut program = Program::new(6);
    program.push(Step::new("all2all").with_comm(pattern));
    let report = check_program(
        &program,
        &LintOptions::default()
            .with_params(presets::meiko_cs2(6))
            .with_divergence_ratio(4.0),
    );
    let d = find(&report, Code::DivergenceRisk);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.is_program(), "whole-program finding");
}

#[test]
fn faulted_analyses_still_bracket_nothing_extra() {
    // The PS06xx pass runs on the fault-free program model; a fault window
    // must not change the static findings (bounds are computed without
    // faults — callers report intervals as unavailable for faulted jobs).
    let mut program = Program::new(4);
    program.push(Step::new("x").with_comm(patterns::gather(4, 0, 64)));
    let opts = LintOptions::default().with_params(presets::meiko_cs2(4));
    let with_faults = opts
        .clone()
        .with_fault_windows(vec![predsim_lint::FaultWindow { proc: 1, step: 0 }]);
    let plain: Vec<_> = check_program(&program, &opts)
        .diagnostics()
        .iter()
        .filter(|d| d.code.as_str().starts_with("PS06"))
        .cloned()
        .collect();
    let faulted: Vec<_> = check_program(&program, &with_faults)
        .diagnostics()
        .iter()
        .filter(|d| d.code.as_str().starts_with("PS06"))
        .cloned()
        .collect();
    assert_eq!(plain, faulted);
}

// ---------------------------------------------------------------------------
// Satellite: span ordering is fixed at emit time, not per render.
// ---------------------------------------------------------------------------

#[test]
fn fan_in_sender_lists_are_sorted_regardless_of_message_order() {
    // Same gather, two message insertion orders: the rendered sender list
    // and the full JSON must be byte-identical.
    let mut forward = commsim::CommPattern::new(6);
    for src in 1..6 {
        forward.add(src, 0, 64);
    }
    let mut backward = commsim::CommPattern::new(6);
    for src in (1..6).rev() {
        backward.add(src, 0, 64);
    }
    let opts = LintOptions::default()
        .with_params(presets::meiko_cs2(6))
        .with_fanin_threshold(4);
    let render = |pattern: &commsim::CommPattern| {
        let mut program = Program::new(6);
        program.push(Step::new("gather").with_comm(pattern.clone()));
        let report = check_program(&program, &opts);
        (report.render(), report.to_json())
    };
    let (text_f, json_f) = render(&forward);
    let (text_b, json_b) = render(&backward);
    assert!(text_f.contains("senders: P1, P2, P3, P4, P5"), "{text_f}");
    assert_eq!(text_f, text_b, "sender order must not leak message order");
    assert_eq!(json_f, json_b);
}

#[test]
fn report_json_order_is_stable_across_renders_and_sorts() {
    let mut program = Program::new(5);
    program.push(
        Step::new("mix")
            .with_comp(vec![
                Time::from_us(1.0),
                Time::from_us(40.0),
                Time::from_us(1.0),
                Time::from_us(1.0),
                Time::from_us(1.0),
            ])
            .with_comm(patterns::gather(5, 1, 64)),
    );
    let opts = LintOptions::default()
        .with_params(presets::meiko_cs2(5))
        .with_fanin_threshold(3);
    let mut report = check_program(&program, &opts);
    let first = report.to_json();
    // Rendering twice changes nothing.
    assert_eq!(report.to_json(), first);
    // Sorting again (the sort already ran once at emit time) is a no-op:
    // the order is a total, stable one.
    report.sort();
    assert_eq!(report.to_json(), first);
}

// ---------------------------------------------------------------------------
// Why assert_chain does not assert `standard <= worst_case`.
// ---------------------------------------------------------------------------

/// Pinned counterexample: across steps, the worst-case algorithm can
/// finish *below* the standard one. Both algorithms enter the final step
/// with identical fronts, but worst-case's receive-first schedule lets the
/// bottleneck processor finish its receives (and therefore the step)
/// earlier than standard's interleaved send/receive schedule. Per-pattern
/// dominance from a uniform front — which `commsim`'s props pin — does not
/// compose over staggered fronts. The static bracket must (and does) hold
/// around each algorithm independently.
#[test]
fn worst_case_can_undercut_standard_across_steps() {
    let params = LogGpParams {
        latency: Time::from_ns(38),
        overhead: Time::from_ns(113),
        gap: Time::from_ns(120),
        gap_per_byte: Time::from_ns(1),
        procs: 4,
    };
    let seed = 1u64;
    let mut program = Program::new(4);
    for s in 0..3u64 {
        let mix = seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .rotate_left(s as u32 * 11);
        let comp: Vec<Time> = (0..4)
            .map(|p| Time::from_ns((mix >> (p % 16)) & 0xffff))
            .collect();
        let pattern = patterns::random(4, 6, 2048, mix);
        program.push(
            Step::new(format!("s{s}"))
                .with_comp(comp)
                .with_comm(pattern),
        );
    }
    let cfg = SimConfig::new(params).with_seed(seed);
    let (bounds, std, wc) = run_all(&program, cfg, Synchronization::PerProcessor, Overlap::None);
    assert!(
        wc.total < std.total,
        "counterexample evaporated (simulator behaviour changed?): wc {} vs std {}",
        wc.total,
        std.total
    );
    // The bracket still holds around both.
    assert!(bounds.lo <= wc.total && std.total <= bounds.hi);
}
