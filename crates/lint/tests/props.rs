//! Property and fixture tests for the analyzer.
//!
//! Two families:
//!
//! * properties — an error-free report really does mean the program
//!   simulates under both algorithms, and the LogGP serialization bound
//!   really is a lower bound on every simulated schedule;
//! * fixtures — every published `PSxxxx` code has a program that triggers
//!   it, and its rendering carries the pieces a user needs (code, span,
//!   message).

use commsim::{patterns, standard, worstcase, CommPattern, SimConfig};
use loggp::{presets, LogGpParams, Time};
use predsim_core::{simulate_program, CommAlgo, Program, SimOptions, Step};
use predsim_lint::{
    check_pattern, check_program, check_steps, step_lower_bound, Code, LintOptions, Severity,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = LogGpParams> {
    (
        0u64..50_000, // L ns
        1u64..20_000, // o ns
        0u64..50_000, // gap surplus over o, ns
        0u64..100,    // G ns/byte
    )
        .prop_map(|(l, o, extra, g)| LogGpParams {
            latency: Time::from_ns(l),
            overhead: Time::from_ns(o),
            gap: Time::from_ns(o + extra),
            gap_per_byte: Time::from_ns(g),
            procs: 0, // fixed up by caller
        })
}

fn arb_pattern() -> impl Strategy<Value = CommPattern> {
    (2usize..10, 0usize..30, proptest::bool::ANY, any::<u64>()).prop_map(|(n, msgs, dag, seed)| {
        if dag {
            patterns::random_dag(n, msgs, 4096, seed)
        } else {
            patterns::random(n, msgs, 4096, seed)
        }
    })
}

/// A random multi-step program over `procs` processors, built from random
/// patterns and computation phases.
fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..8, 1usize..5, any::<u64>()).prop_map(|(procs, steps, seed)| {
        let mut program = Program::new(procs);
        for s in 0..steps {
            let mix = seed.rotate_left(s as u32);
            let comp: Vec<Time> = (0..procs)
                .map(|p| Time::from_ns((mix >> (p % 16)) & 0xffff))
                .collect();
            let pattern = patterns::random(procs, (mix % 20) as usize, 2048, mix);
            let mut step = Step::new(format!("s{s}")).with_comp(comp);
            if !pattern.is_empty() {
                step = step.with_comm(pattern);
            }
            program.push(step);
        }
        program
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// An error-free report under the chosen algorithm means the program
    /// simulates fine under that algorithm — and `Program`-built inputs
    /// are in fact always error-free under `Standard` (construction
    /// already enforces the structural invariants the analyzer promotes to
    /// errors).
    #[test]
    fn error_free_programs_simulate_under_both_algorithms(
        program in arb_program(),
        params in arb_params(),
    ) {
        let params = params.with_procs(program.procs());
        let report = check_program(&program, &LintOptions::default().with_params(params));
        prop_assert!(!report.has_errors(), "unexpected errors:\n{}", report.render());

        for algo in [CommAlgo::Standard, CommAlgo::WorstCase] {
            let mut opts = SimOptions::new(SimConfig::new(params));
            if algo == CommAlgo::WorstCase {
                opts = opts.worst_case();
            }
            let pred = simulate_program(&program, &opts);
            prop_assert!(pred.total >= Time::ZERO);
        }
    }

    /// The static serialization bound never exceeds what either simulator
    /// actually needs for the step — it is a true lower bound, cyclic
    /// patterns and forced transmissions included.
    #[test]
    fn static_bound_is_a_lower_bound_for_both_simulators(
        pattern in arb_pattern(),
        params in arb_params(),
        seed in any::<u64>(),
    ) {
        let params = params.with_procs(pattern.procs());
        let bound = step_lower_bound(&pattern, &params);
        let cfg = SimConfig::new(params).with_seed(seed);
        let std_finish = standard::simulate(&pattern, &cfg).finish;
        let wc_finish = worstcase::simulate(&pattern, &cfg).finish;
        prop_assert!(bound <= std_finish, "bound {bound} > standard finish {std_finish}");
        prop_assert!(bound <= wc_finish, "bound {bound} > worst-case finish {wc_finish}");
    }

    /// Deadlock reports agree exactly with the pattern-level cycle test,
    /// and severity tracks the algorithm being checked for.
    #[test]
    fn deadlock_reports_match_has_cycle(pattern in arb_pattern()) {
        let std_report = check_pattern(&pattern, &LintOptions::default());
        let wc_report = check_pattern(
            &pattern,
            &LintOptions::default().with_algo(CommAlgo::WorstCase),
        );
        let cyclic = pattern.has_cycle();
        let std_cycles = std_report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::DeadlockCycle)
            .count();
        let wc_cycles = wc_report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::DeadlockCycle)
            .count();
        prop_assert_eq!(std_cycles > 0, cyclic);
        prop_assert_eq!(wc_cycles, std_cycles);
        prop_assert_eq!(wc_report.has_errors(), cyclic);
        for d in std_report.diagnostics() {
            if d.code == Code::DeadlockCycle {
                prop_assert_eq!(d.severity, Severity::Warning);
            }
        }
    }

    /// Reports survive the JSON round trip bit-for-bit, whatever the
    /// program threw into them.
    #[test]
    fn json_round_trip_is_lossless(
        program in arb_program(),
        params in arb_params(),
        worst_case in proptest::bool::ANY,
    ) {
        let params = params.with_procs(program.procs());
        let mut opts = LintOptions::default().with_params(params);
        if worst_case {
            opts = opts.with_algo(CommAlgo::WorstCase);
        }
        let report = check_program(&program, &opts);
        let back = predsim_lint::Report::from_json(&report.to_json()).unwrap();
        prop_assert_eq!(back, report);
    }
}

// ---------------------------------------------------------------------------
// Per-code fixtures: every published code fires and renders readably.
// ---------------------------------------------------------------------------

fn find(report: &predsim_lint::Report, code: Code) -> &predsim_lint::Diagnostic {
    report
        .diagnostics()
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code} in:\n{}", report.render()))
}

#[test]
fn ps0101_zero_processors() {
    let report = check_steps(0, &[], &LintOptions::default());
    let d = find(&report, Code::ZeroProcessors);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.render().contains("error[PS0101]"), "{}", d.render());
    assert!(d.render().contains("zero processors"), "{}", d.render());
}

#[test]
fn ps0102_comp_arity_mismatch() {
    let steps = [Step::new("lopsided").with_comp(vec![Time::from_us(1.0); 3])];
    let report = check_steps(4, &steps, &LintOptions::default());
    let d = find(&report, Code::CompArityMismatch);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.step, Some(0));
    assert!(
        d.render().contains("3 entries for 4 processors"),
        "{}",
        d.render()
    );
}

#[test]
fn ps0103_and_ps0104_pattern_mismatch_and_out_of_range() {
    // A pattern over six processors attached to a four-processor program:
    // the arity is wrong (PS0103) and its message endpoints P4/P5 point
    // outside the program (PS0104).
    let mut wide = CommPattern::new(6);
    wide.add(4, 5, 128);
    let steps = [Step::new("wide").with_comm(wide)];
    let report = check_steps(4, &steps, &LintOptions::default());

    let d = find(&report, Code::PatternProcsMismatch);
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.render().contains("6 processors, program has 4"),
        "{}",
        d.render()
    );

    let d = find(&report, Code::ProcOutOfRange);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.span.msg, Some(0));
    assert!(d.render().contains("P4"), "{}", d.render());
}

#[test]
fn ps0105_self_messages_are_one_info_per_step() {
    let mut pattern = CommPattern::new(3);
    pattern.add(0, 0, 64);
    pattern.add(1, 1, 64);
    pattern.add(0, 1, 64);
    let report = check_pattern(&pattern, &LintOptions::default());
    let d = find(&report, Code::SelfMessages);
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("2 self-message(s)"), "{}", d.message);
    assert_eq!(
        report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::SelfMessages)
            .count(),
        1,
        "aggregated per step"
    );
}

#[test]
fn ps0106_zero_byte_messages() {
    let mut pattern = CommPattern::new(2);
    pattern.add(0, 1, 0);
    let report = check_pattern(&pattern, &LintOptions::default());
    let d = find(&report, Code::ZeroByteMessages);
    assert_eq!(d.severity, Severity::Info);
    assert!(d.render().contains("zero-byte"), "{}", d.render());
}

#[test]
fn ps0107_empty_step() {
    let steps = [Step::new("nothing")];
    let report = check_steps(2, &steps, &LintOptions::default());
    let d = find(&report, Code::EmptyStep);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.span.step_label.as_deref(), Some("nothing"));
}

#[test]
fn ps0201_deadlock_names_the_cycle_and_bounds_forced_sends() {
    // Two disjoint rings in one step: two SCCs, so the worst-case
    // simulator needs at least two forced transmissions.
    let mut pattern = CommPattern::new(6);
    for (src, dst) in [(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)] {
        pattern.add(src, dst, 256);
    }
    let opts = LintOptions::default().with_algo(CommAlgo::WorstCase);
    let report = check_pattern(&pattern, &opts);
    let cycles: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == Code::DeadlockCycle)
        .collect();
    assert_eq!(cycles.len(), 2);
    assert!(cycles.iter().all(|d| d.severity == Severity::Error));
    let all = report.render();
    assert!(all.contains("P0 -> P1 -> P0"), "{all}");
    assert!(all.contains("P2 -> P3 -> P4 -> P2"), "{all}");
    assert!(all.contains("forced_sends >= 2"), "{all}");

    // And the claimed lower bound is honest: the simulator really forces
    // at least that many transmissions.
    let cfg = SimConfig::new(presets::meiko_cs2(6));
    assert!(worstcase::simulate(&pattern, &cfg).forced_sends >= 2);
}

#[test]
fn ps0301_fan_in_hotspot_on_gather() {
    let pattern = patterns::gather(8, 0, 512);
    let opts = LintOptions::default().with_params(presets::meiko_cs2(8));
    let report = check_pattern(&pattern, &opts);
    let d = find(&report, Code::FanInHotspot);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.proc, Some(0));
    assert!(d.message.contains("7 distinct senders"), "{}", d.message);
    assert!(
        d.notes.iter().any(|n| n.contains("serializes")),
        "{:?}",
        d.notes
    );
}

#[test]
fn ps0302_comm_imbalance() {
    // A 16-way gather: the root's serialization bound dwarfs the
    // single-message bound of the leaves. (Note max/mean is capped by the
    // number of active processors, so a wide machine is needed to clear
    // the 4x default.)
    let pattern = patterns::gather(16, 0, 512);
    let params = LogGpParams {
        latency: Time::from_us(1.0),
        overhead: Time::from_us(1.0),
        gap: Time::from_us(10.0),
        gap_per_byte: Time::ZERO,
        procs: 16,
    };
    let opts = LintOptions::default().with_params(params);
    let report = check_pattern(&pattern, &opts);
    let d = find(&report, Code::CommImbalance);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.proc, Some(0));
    assert!(d.message.contains("imbalanced"), "{}", d.message);
}

#[test]
fn ps0303_comp_imbalance_is_one_diagnostic_per_program() {
    let mut program = Program::new(8);
    for s in 0..10 {
        let mut comp = vec![Time::from_us(1.0); 8];
        comp[0] = Time::from_us(100.0);
        program.push(Step::new(format!("skewed {s}")).with_comp(comp));
    }
    let report = check_program(&program, &LintOptions::default());
    let imbalances: Vec<_> = report
        .diagnostics()
        .iter()
        .filter(|d| d.code == Code::CompImbalance)
        .collect();
    assert_eq!(imbalances.len(), 1, "aggregated:\n{}", report.render());
    assert_eq!(imbalances[0].severity, Severity::Info);
    assert!(
        imbalances[0].message.contains("10 of 10"),
        "{}",
        imbalances[0].message
    );
}

#[test]
fn ps0304_unused_processors() {
    let mut pattern = CommPattern::new(8);
    pattern.add(0, 1, 64);
    let mut program = Program::new(8);
    program.push(Step::new("tiny").with_comm(pattern));
    let report = check_program(&program, &LintOptions::default());
    let d = find(&report, Code::UnusedProcessor);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("6 of 8"), "{}", d.message);
    assert!(d.message.contains("P2"), "{}", d.message);
}

// PS0501 (bad job spec) lives at the engine boundary; its fixture is in
// `predsim-engine`'s tests to avoid a dev-dependency cycle.

#[test]
fn every_code_fires_somewhere_and_describes_itself() {
    // The fixtures above cover each code; this guards the table itself.
    for code in Code::ALL {
        assert!(code.as_str().starts_with("PS"));
        assert!(!code.description().is_empty());
        assert_eq!(Code::parse(code.as_str()), Some(code));
    }
}

// ---------------------------------------------------------------------------
// The shipped example generators are error-clean.
// ---------------------------------------------------------------------------

fn assert_error_clean(label: &str, program: &Program) {
    let opts = LintOptions::default().with_params(presets::meiko_cs2(program.procs()));
    let report = check_program(program, &opts);
    assert!(
        !report.has_errors(),
        "{label} has lint errors:\n{}",
        report.render()
    );
}

#[test]
fn shipped_generators_are_error_clean() {
    let cost = blockops::AnalyticCost::paper_default();
    for layout in [
        &predsim_core::Diagonal::new(8) as &dyn predsim_core::Layout,
        &predsim_core::RowCyclic::new(8),
        &predsim_core::ColCyclic::new(8),
    ] {
        let ge = gauss::generate(240, 24, layout, &cost);
        assert_error_clean(&format!("ge/{}", layout.name()), &ge.program);
        let fw = apsp::generate(120, 24, layout, &cost);
        assert_error_clean(&format!("apsp/{}", layout.name()), &fw.program);
    }
    assert_error_clean("cannon", &cannon::generate(64, 4, &cost).program);
    assert_error_clean("stencil", &stencil::generate(64, 8, 4, 500).program);
}
