//! `predsim-lint`: a static analyzer for predsim programs.
//!
//! The simulators in this workspace answer "how long will this program
//! take?"; this crate answers "should you trust that question?" — without
//! running a simulation. It inspects a [`Program`]'s step sequence and
//! communication patterns and emits [`Diagnostic`]s with stable `PSxxxx`
//! codes at three severities:
//!
//! * **well-formedness** (`PS01xx`): structural defects and oddities —
//!   zero processors, arity mismatches, out-of-range processor ids,
//!   self-messages, zero-byte messages, empty steps;
//! * **deadlock** (`PS02xx`): processor cycles in a communication step.
//!   The paper's worst-case algorithm (§4.2) has every processor receive
//!   everything before sending anything, so a cycle stalls it until
//!   transmissions are forced — an error when checking for
//!   [`CommAlgo::WorstCase`], a warning otherwise (the standard algorithm
//!   handles cycles eagerly);
//! * **LogGP lower bounds** (`PS03xx`): per-step serialization analysis.
//!   A processor moving `m = max(sends, recvs)` messages occupies its
//!   network port for at least `(m-1)·g + 2o + L` before the step can
//!   complete, which exposes fan-in hotspots and load imbalance directly
//!   from the pattern;
//! * **fault analysis** (`PS04xx`): given fail-stop fault windows
//!   ([`LintOptions::fault_windows`]), flag steps whose receive counts
//!   wait on a processor that is down during that step — a warning by
//!   default, an error under [`LintOptions::strict_faults`];
//! * **cost intervals** (`PS06xx`): performance lints derived from the
//!   [`interval`] abstract interpreter's simulation-free `[lo, hi]`
//!   brackets — static load imbalance, gap-serialized contention
//!   hotspots, bandwidth-dominated steps and uselessly wide brackets.
//!
//! Analyses are [`Pass`]es over a [`ProgramView`]; [`check_program`] runs
//! the default registry and returns a sorted [`Report`] that renders
//! rustc-style text or machine-readable JSON.
//!
//! ```
//! use predsim_lint::{check_pattern, LintOptions, Code};
//! use predsim_core::CommAlgo;
//! use commsim::patterns;
//!
//! let ring = patterns::ring(4, 1024);
//! let opts = LintOptions::default().with_algo(CommAlgo::WorstCase);
//! let report = check_pattern(&ring, &opts);
//! assert!(report.has_errors());
//! assert_eq!(report.diagnostics()[0].code, Code::DeadlockCycle);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod interval;
pub mod json;
pub mod passes;

pub use diag::{Code, Diagnostic, Report, Severity, Span};
pub use interval::{analyze, Bottleneck, BoundsConfig, ProgramBounds};
pub use passes::bounds::{proc_bounds, step_lower_bound};

use loggp::LogGpParams;
use predsim_core::simulate::CommAlgo;
use predsim_core::{Program, Step};

/// A read-only view of the program under analysis. Passes see this instead
/// of [`Program`] so callers can also lint raw step slices (e.g. while a
/// program is still being assembled) without constructing one.
#[derive(Clone, Copy)]
pub struct ProgramView<'a> {
    /// Declared processor count.
    pub procs: usize,
    /// The step sequence.
    pub steps: &'a [Step],
}

impl<'a> ProgramView<'a> {
    /// View a finished program.
    pub fn of(program: &'a Program) -> Self {
        ProgramView {
            procs: program.procs(),
            steps: program.steps(),
        }
    }
}

/// A fail-stop fault window: processor `proc` is down during step `step`.
///
/// Plain data on purpose — the lint crate does not depend on the fault
/// subsystem; callers (the engine, the CLI) translate their fault plans
/// into windows before linting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// The failed processor.
    pub proc: usize,
    /// The 0-based step index during which it is down.
    pub step: usize,
}

/// Tunables for a lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Machine parameters for the LogGP lower-bound analyses (`PS0301`,
    /// `PS0302`). `None` disables the parameter-dependent checks.
    pub params: Option<LogGpParams>,
    /// Which simulation algorithm the program is being checked *for*. A
    /// communication cycle is an error under [`CommAlgo::WorstCase`]
    /// (guaranteed deadlock-and-force behaviour) and a warning otherwise.
    pub algo: CommAlgo,
    /// Minimum number of distinct senders into one processor in one step
    /// before a fan-in hotspot (`PS0301`) is reported.
    pub fanin_threshold: usize,
    /// `max / mean` ratio above which per-step communication bounds
    /// (`PS0302`) and per-program computation load (`PS0303`) count as
    /// imbalanced.
    pub imbalance_ratio: f64,
    /// Fail-stop fault windows to check receive satisfiability against
    /// (`PS0401`). Empty disables the fault analysis.
    pub fault_windows: Vec<FaultWindow>,
    /// Report `PS0401` starvation as an error instead of a warning.
    pub strict_faults: bool,
    /// `hi / lo` ratio above which the whole-program static interval
    /// counts as a divergence risk (`PS0604`).
    pub divergence_ratio: f64,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            params: None,
            algo: CommAlgo::Standard,
            fanin_threshold: 4,
            imbalance_ratio: 4.0,
            fault_windows: Vec::new(),
            strict_faults: false,
            divergence_ratio: 8.0,
        }
    }
}

impl LintOptions {
    /// These options with machine parameters supplied.
    pub fn with_params(mut self, params: LogGpParams) -> Self {
        self.params = Some(params);
        self
    }

    /// These options checking for `algo`.
    pub fn with_algo(mut self, algo: CommAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// These options with a different fan-in threshold.
    pub fn with_fanin_threshold(mut self, threshold: usize) -> Self {
        self.fanin_threshold = threshold;
        self
    }

    /// These options with a different imbalance ratio.
    pub fn with_imbalance_ratio(mut self, ratio: f64) -> Self {
        self.imbalance_ratio = ratio;
        self
    }

    /// These options checking receive satisfiability against fail-stop
    /// `windows` (`PS0401`).
    pub fn with_fault_windows(mut self, windows: Vec<FaultWindow>) -> Self {
        self.fault_windows = windows;
        self
    }

    /// These options reporting fault starvation as errors.
    pub fn with_strict_faults(mut self) -> Self {
        self.strict_faults = true;
        self
    }

    /// These options with a different divergence-risk ratio (`PS0604`).
    pub fn with_divergence_ratio(mut self, ratio: f64) -> Self {
        self.divergence_ratio = ratio;
        self
    }
}

/// One analysis. Implementations are stateless; a pass reads the view and
/// appends diagnostics to the report.
pub trait Pass {
    /// Short stable name (used in docs and `--help`).
    fn name(&self) -> &'static str;

    /// The codes this pass can emit.
    fn codes(&self) -> &'static [Code];

    /// Run the analysis.
    fn run(&self, view: &ProgramView<'_>, opts: &LintOptions, report: &mut Report);
}

/// The default pass registry, in execution order: well-formedness, then
/// deadlock, then LogGP bounds.
pub fn default_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(passes::wellformed::WellFormed),
        Box::new(passes::deadlock::Deadlock),
        Box::new(passes::bounds::LogGpBounds),
        Box::new(passes::bounds::CostIntervals),
        Box::new(passes::faults::FaultStarvation),
    ]
}

/// Run the default passes over a raw step slice.
pub fn check_steps(procs: usize, steps: &[Step], opts: &LintOptions) -> Report {
    let view = ProgramView { procs, steps };
    let mut report = Report::new();
    for pass in default_passes() {
        pass.run(&view, opts, &mut report);
    }
    report.sort();
    report
}

/// Run the default passes over a program.
pub fn check_program(program: &Program, opts: &LintOptions) -> Report {
    check_steps(program.procs(), program.steps(), opts)
}

/// Lint a single communication pattern, as if it were a one-step program.
pub fn check_pattern(pattern: &commsim::CommPattern, opts: &LintOptions) -> Report {
    let step = Step::new("pattern").with_comm(pattern.clone());
    check_steps(pattern.procs(), std::slice::from_ref(&step), opts)
}
