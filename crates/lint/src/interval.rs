//! Cost-interval abstract interpretation: simulation-free `[lo, hi]`
//! virtual-time brackets under a LogGP machine.
//!
//! The simulators bracket a program's measured running time between the
//! standard and worst-case algorithms; this module brackets the *simulation
//! itself* without running it. [`analyze`] walks each step's communication
//! dependence graph and folds per-processor intervals through the same
//! step sequence [`predsim_core::simulate_program`] uses, producing
//!
//! * `lo` — a provable floor for the standard algorithm: every term is a
//!   consequence of commit mechanics both algorithms share (a processor's
//!   consecutive same-kind operations start at least `max(g, o)` apart
//!   under both the extended and the classic gap rule; a receive never
//!   starts before its message arrives; sends leave in program order);
//! * `hi` — a provable ceiling for the worst-case algorithm: on acyclic
//!   patterns the processors are walked in topological order with
//!   receive/send ladders (an operation becomes ready at most
//!   `max(g, o)` after the previous operation's start, under either gap
//!   rule); on patterns that can force transmissions, every processor
//!   reachable from a cycle is folded into one *blob* whose ceiling
//!   charges each message `2·max(g,o) + G·(k-1) + L` on top of the blob's
//!   entry time — a potential argument that holds for any forcing order
//!   and any seed.
//!
//! The interpreter also attributes the ceiling: each step's dominant chain
//! is classified by its largest LogGP term ([`Bottleneck`]) and chained
//! into a static critical path of `proc:step` spans.
//!
//! Soundness (enforced by the property suite in `tests/intervals.rs`):
//! `lo ≤ simulate_standard ≤ hi` and `lo ≤ simulate_worst_case ≤ hi` for
//! every machine, both gap rules, any seed — with faults disabled. The
//! bracket holds around each simulator *independently*: the middle
//! inequality `standard ≤ worst_case` is not a theorem for multi-step
//! programs (staggered entry fronts can let the receive-first schedule
//! finish early; the suite pins a counterexample) and is asserted only
//! for the shipped generators. Fault injection
//! inflates computation charges unpredictably, so faulted jobs must report
//! intervals as unavailable rather than unsound; callers gate on that.

use crate::json::Value;
use crate::ProgramView;
use commsim::graph::tarjan_sccs;
use commsim::{CommPattern, Message};
use loggp::{LogGpParams, Time};
use predsim_core::simulate::{Overlap, Synchronization};
use std::collections::VecDeque;

/// Which LogGP term dominates a step's static ceiling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// Computation charges dominate.
    Compute,
    /// The wire latency `L` dominates.
    Latency,
    /// Send/receive overheads `o` dominate.
    Overhead,
    /// Gap serialization (`g` between port operations) dominates.
    Gap,
    /// Per-byte bandwidth (`G·(k-1)` wire time) dominates.
    Bandwidth,
}

impl Bottleneck {
    /// Lower-case name, as used in JSON and rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            Bottleneck::Compute => "compute",
            Bottleneck::Latency => "latency",
            Bottleneck::Overhead => "overhead",
            Bottleneck::Gap => "gap",
            Bottleneck::Bandwidth => "bandwidth",
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-term accumulator carried along the ceiling's dominant chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Computation charges on the chain.
    pub comp: Time,
    /// Sum of `L` terms.
    pub latency: Time,
    /// Sum of `o` terms.
    pub overhead: Time,
    /// Sum of `max(g, o)` separation terms.
    pub gap: Time,
    /// Sum of `G·(k-1)` wire-time terms.
    pub wire: Time,
}

impl Breakdown {
    /// The largest component. Ties resolve in the order compute, gap,
    /// bandwidth, latency, overhead; an all-zero breakdown is compute.
    pub fn dominant(&self) -> Bottleneck {
        let mut best = (self.comp, Bottleneck::Compute);
        for (t, b) in [
            (self.gap, Bottleneck::Gap),
            (self.wire, Bottleneck::Bandwidth),
            (self.latency, Bottleneck::Latency),
            (self.overhead, Bottleneck::Overhead),
        ] {
            if t > best.0 {
                best = (t, b);
            }
        }
        best.1
    }

    /// Sum of all components.
    pub fn total(&self) -> Time {
        self.comp + self.latency + self.overhead + self.gap + self.wire
    }
}

/// A point on the ceiling's chain: a time, the terms that built it this
/// step, and the processor whose step-entry readiness seeded the chain.
#[derive(Clone, Copy)]
struct Cost {
    t: Time,
    brk: Breakdown,
    from: usize,
}

impl Cost {
    fn seed(t: Time, from: usize) -> Cost {
        Cost {
            t,
            brk: Breakdown::default(),
            from,
        }
    }

    fn max(self, other: Cost) -> Cost {
        if other.t > self.t {
            other
        } else {
            self
        }
    }

    fn comp(mut self, t: Time) -> Cost {
        self.t += t;
        self.brk.comp += t;
        self
    }

    fn latency(mut self, t: Time) -> Cost {
        self.t += t;
        self.brk.latency += t;
        self
    }

    fn overhead(mut self, t: Time) -> Cost {
        self.t += t;
        self.brk.overhead += t;
        self
    }

    fn gap(mut self, t: Time) -> Cost {
        self.t += t;
        self.brk.gap += t;
        self
    }

    fn wire(mut self, t: Time) -> Cost {
        self.t += t;
        self.brk.wire += t;
        self
    }
}

/// Configuration of a bounds run: the machine and the step-chaining
/// extensions the simulation would use. The bracket covers both
/// communication algorithms, both gap rules and every seed, so none of
/// those appear here.
#[derive(Clone, Copy, Debug)]
pub struct BoundsConfig {
    /// The machine model.
    pub params: LogGpParams,
    /// Step synchronization (mirrored from the simulation options).
    pub sync: Synchronization,
    /// Communication/computation overlap (mirrored likewise).
    pub overlap: Overlap,
}

impl BoundsConfig {
    /// Paper defaults: per-processor chaining, no overlap.
    pub fn new(params: LogGpParams) -> BoundsConfig {
        BoundsConfig {
            params,
            sync: Synchronization::PerProcessor,
            overlap: Overlap::None,
        }
    }

    /// This configuration with BSP-style barrier synchronization.
    pub fn with_sync(mut self, sync: Synchronization) -> BoundsConfig {
        self.sync = sync;
        self
    }

    /// This configuration with a different overlap extension.
    pub fn with_overlap(mut self, overlap: Overlap) -> BoundsConfig {
        self.overlap = overlap;
        self
    }
}

/// Static interval of one step, cumulative from program start.
#[derive(Clone, Debug)]
pub struct StepBounds {
    /// 0-based step index.
    pub step: usize,
    /// The step's label.
    pub label: String,
    /// Floor on the program front after this step.
    pub lo_end: Time,
    /// Ceiling on the program front after this step.
    pub hi_end: Time,
    /// Ceiling growth contributed by this step (`hi_end - previous`).
    pub span_hi: Time,
    /// The LogGP term dominating the step's ceiling chain.
    pub class: Bottleneck,
    /// The processor the ceiling chain ends on.
    pub proc: usize,
    /// The dominant chain's per-term decomposition for this step.
    pub breakdown: Breakdown,
}

/// One `proc:step` span of the static critical path.
#[derive(Clone, Debug)]
pub struct PathSpan {
    /// 0-based step index.
    pub step: usize,
    /// The step's label.
    pub label: String,
    /// The processor carrying the ceiling chain through this step.
    pub proc: usize,
    /// The term dominating that processor's chain in this step.
    pub class: Bottleneck,
}

/// Whole-program result of the cost-interval interpreter.
#[derive(Clone, Debug)]
pub struct ProgramBounds {
    /// Provable floor on the standard algorithm's total.
    pub lo: Time,
    /// Provable ceiling on the worst-case algorithm's total.
    pub hi: Time,
    /// Final per-processor `[lo, hi]` finish intervals.
    pub per_proc: Vec<(Time, Time)>,
    /// Per-step cumulative intervals with bottleneck attribution.
    pub steps: Vec<StepBounds>,
    /// The chain of `proc:step` spans realizing the ceiling.
    pub critical_path: Vec<PathSpan>,
}

fn time_value(t: Time) -> Value {
    Value::Int(t.as_ps().min(i64::MAX as u64) as i64)
}

impl ProgramBounds {
    /// Whether a total lies inside the program interval. Every simulated
    /// total — standard or worst-case — must satisfy this; the serve
    /// layer's degraded tiers and the chaos soak use it to check that an
    /// estimate-only answer still brackets the true prediction.
    pub fn contains(&self, total: Time) -> bool {
        self.lo <= total && total <= self.hi
    }

    /// The interval as a JSON object (the `--bounds --json` /
    /// `/v1/estimate` wire schema; both surfaces render this same value,
    /// byte for byte).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("static_lo_ps".into(), time_value(self.lo)),
            ("static_hi_ps".into(), time_value(self.hi)),
            (
                "per_proc".into(),
                Value::Array(
                    self.per_proc
                        .iter()
                        .enumerate()
                        .map(|(p, &(lo, hi))| {
                            Value::Object(vec![
                                ("proc".into(), Value::Int(p as i64)),
                                ("lo_ps".into(), time_value(lo)),
                                ("hi_ps".into(), time_value(hi)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "steps".into(),
                Value::Array(
                    self.steps
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("step".into(), Value::Int(s.step as i64)),
                                ("label".into(), Value::Str(s.label.clone())),
                                ("lo_ps".into(), time_value(s.lo_end)),
                                ("hi_ps".into(), time_value(s.hi_end)),
                                ("span_ps".into(), time_value(s.span_hi)),
                                ("class".into(), Value::Str(s.class.as_str().into())),
                                ("proc".into(), Value::Int(s.proc as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "critical_path".into(),
                Value::Array(
                    self.critical_path
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("step".into(), Value::Int(s.step as i64)),
                                ("label".into(), Value::Str(s.label.clone())),
                                ("proc".into(), Value::Int(s.proc as i64)),
                                ("class".into(), Value::Str(s.class.as_str().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable rendering for `predsim check --bounds`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "static bounds: [{}, {}]", self.lo, self.hi);
        let spread = if self.lo.is_zero() {
            None
        } else {
            Some(self.hi.as_us_f64() / self.lo.as_us_f64())
        };
        match spread {
            Some(r) => {
                let _ = writeln!(out, "  bracket spread: {r:.2}x");
            }
            None => {
                let _ = writeln!(out, "  bracket spread: unbounded (floor is zero)");
            }
        }
        if !self.critical_path.is_empty() {
            let spans: Vec<String> = self
                .critical_path
                .iter()
                .map(|s| format!("P{}:step {} ('{}') [{}]", s.proc, s.step, s.label, s.class))
                .collect();
            let rendered = if spans.len() > 12 {
                format!(
                    "{} -> ... -> {}",
                    spans[..6].join(" -> "),
                    spans[spans.len() - 6..].join(" -> ")
                )
            } else {
                spans.join(" -> ")
            };
            let _ = writeln!(
                out,
                "  critical path ({} spans): {rendered}",
                self.critical_path.len()
            );
        }
        for s in &self.steps {
            let _ = writeln!(
                out,
                "  step {:>3} ('{}'): [{}, {}]  +{}  {}-bound at P{}",
                s.step, s.label, s.lo_end, s.hi_end, s.span_hi, s.class, s.proc
            );
        }
        out
    }
}

/// Per-processor floor of one communication step.
struct CommLo {
    done: Vec<Time>,
    recv_done: Vec<Time>,
}

/// Reusable per-step buffers. The interpreter visits many small steps,
/// and its profile was dominated by the per-step `Vec<Vec<_>>` churn —
/// every proc-indexed buffer therefore lives here and is cleared with
/// its capacity kept between steps.
struct Scratch {
    /// Per-proc FIFO send queues (what [`CommPattern::send_queues`]
    /// builds, without the per-step allocation).
    queues: Vec<VecDeque<Message>>,
    /// Per-proc network receive counts.
    recvs: Vec<usize>,
    /// Per-proc successor lists of the processor graph.
    adj: Vec<Vec<usize>>,
    /// Floor pass: lower-bounded arrival times per destination.
    arr_lo: Vec<Vec<Time>>,
    /// Ceiling pass: upper-bounded arrival costs per destination.
    arrivals: Vec<Vec<Cost>>,
    /// Ceiling pass: per-component successor lists (≤ procs entries).
    comp_succ: Vec<Vec<usize>>,
}

impl Scratch {
    fn new(procs: usize) -> Scratch {
        Scratch {
            queues: vec![VecDeque::new(); procs],
            recvs: vec![0; procs],
            adj: vec![Vec::new(); procs],
            arr_lo: vec![Vec::new(); procs],
            arrivals: vec![Vec::new(); procs],
            comp_succ: vec![Vec::new(); procs],
        }
    }

    /// Index one pattern's messages into the queues, receive counts, and
    /// adjacency lists, clearing whatever the previous step left behind.
    fn load(&mut self, pattern: &CommPattern) {
        for q in &mut self.queues {
            q.clear();
        }
        for v in &mut self.adj {
            v.clear();
        }
        for v in &mut self.arr_lo {
            v.clear();
        }
        for v in &mut self.arrivals {
            v.clear();
        }
        self.recvs.fill(0);
        for m in pattern.network_messages() {
            self.queues[m.src].push_back(*m);
            self.recvs[m.dst] += 1;
            self.adj[m.src].push(m.dst);
        }
    }
}

/// Floor of a communication step: receive ladders over lower-bounded
/// arrivals plus FIFO send chains, all built from separations both gap
/// rules guarantee for consecutive same-kind operations.
fn comm_step_lo(scratch: &mut Scratch, params: &LogGpParams, entry: &[Time]) -> CommLo {
    let Scratch { queues, arr_lo, .. } = scratch;
    let procs = queues.len();
    let sep = params.op_separation();
    let o = params.overhead;

    // Lower-bounded arrivals: the k-th message q sends leaves no earlier
    // than k separations after q is ready, then costs o + wire + L.
    for (q, queue) in queues.iter().enumerate() {
        for (k, m) in queue.iter().enumerate() {
            let arrive = entry[q]
                + sep.saturating_mul(k as u64)
                + o
                + params.wire_time(m.bytes)
                + params.latency;
            arr_lo[m.dst].push(arrive);
        }
    }

    let mut done = entry.to_vec();
    let mut recv_done = entry.to_vec();
    for p in 0..procs {
        let s = queues[p].len();
        if s > 0 {
            // Last send ends no earlier than s-1 separations plus its o.
            done[p] = done[p].max(entry[p] + sep.saturating_mul(s as u64 - 1) + o);
        }
        let r = arr_lo[p].len();
        if r > 0 {
            // Sorted actual arrivals dominate sorted lower bounds
            // pointwise; after the j-th smallest arrival at least r-1-j
            // receives remain, each a separation apart.
            arr_lo[p].sort();
            let mut last = entry[p] + sep.saturating_mul(r as u64 - 1);
            for (j, &a) in arr_lo[p].iter().enumerate() {
                last = last.max(a + sep.saturating_mul((r - 1 - j) as u64));
            }
            let end = last + o;
            done[p] = done[p].max(end);
            recv_done[p] = recv_done[p].max(end);
        }
    }
    CommLo { done, recv_done }
}

/// Per-processor ceiling of one communication step.
struct CommHi {
    done: Vec<Cost>,
    recv_done: Vec<Cost>,
}

/// Ceiling of a communication step. Processors whose ancestry is fully
/// acyclic are walked in topological order with receive/send ladders; the
/// rest — every processor reachable from a nontrivial SCC, where the
/// worst-case algorithm's forced transmissions can land — collapse into
/// one blob charged `2·sep + wire + L` per touching message.
fn comm_step_hi(scratch: &mut Scratch, params: &LogGpParams, entry: &[Cost]) -> CommHi {
    let Scratch {
        queues,
        recvs,
        adj,
        arrivals,
        comp_succ,
        ..
    } = scratch;
    let procs = queues.len();
    let sep = params.op_separation();
    let o = params.overhead;

    let scc = tarjan_sccs(adj);
    let ncomps = scc.components.len();
    // Taint: nontrivial components and everything they reach. Forced
    // transmissions can only pick a victim while some cycle is starving
    // the round, and only processors downstream of a cycle can be blocked
    // then — fully-acyclic ancestries always drain without forcing.
    let mut tainted: Vec<bool> = scc.components.iter().map(|c| c.len() > 1).collect();
    for v in &mut comp_succ[..ncomps] {
        v.clear();
    }
    for queue in queues.iter() {
        for m in queue {
            let (a, b) = (scc.comp_of[m.src], scc.comp_of[m.dst]);
            if a != b {
                comp_succ[a].push(b);
            }
        }
    }
    // Components come out of Tarjan in reverse topological order, so a
    // descending index walk visits sources first.
    for c in (0..ncomps).rev() {
        if tainted[c] {
            for s in 0..comp_succ[c].len() {
                tainted[comp_succ[c][s]] = true;
            }
        }
    }

    let mut done = entry.to_vec();
    let mut recv_done = entry.to_vec();

    for c in (0..ncomps).rev() {
        if tainted[c] {
            continue;
        }
        let p = scc.components[c][0];
        let r = recvs[p];
        let s = queues[p].len();
        // All arrivals are bounded by A; receive i+1 starts at most one
        // separation after receive i, so the last receive ends by
        // A + (r-1)·sep + o.
        let mut a = entry[p];
        for &arr in &arrivals[p] {
            a = a.max(arr);
        }
        let rd = if r > 0 {
            a.gap(sep.saturating_mul(r as u64 - 1)).overhead(o)
        } else {
            entry[p]
        };
        // Under worst-case semantics sends wait for the last receive; the
        // first send is ready at most one separation later.
        let first_send = if s > 0 {
            if r > 0 {
                rd.gap(sep)
            } else {
                entry[p]
            }
        } else {
            rd
        };
        for (j, m) in queues[p].iter().enumerate() {
            let arr = first_send
                .gap(sep.saturating_mul(j as u64))
                .overhead(o)
                .wire(params.wire_time(m.bytes))
                .latency(params.latency);
            arrivals[m.dst].push(arr);
        }
        let sd = if s > 0 {
            first_send.gap(sep.saturating_mul(s as u64 - 1)).overhead(o)
        } else {
            rd
        };
        done[p] = entry[p].max(rd).max(sd);
        recv_done[p] = entry[p].max(rd);
    }

    if tainted.iter().any(|&t| t) {
        // Blob potential argument: relative to the blob's entry frontier,
        // committing a send raises the frontier by at most sep, and the
        // matching receive by at most sep + wire + L — for any commit
        // order, forced or not, under either gap rule.
        let mut base: Option<Cost> = None;
        for p in 0..procs {
            if !tainted[scc.comp_of[p]] {
                continue;
            }
            let mut c = entry[p];
            for &arr in &arrivals[p] {
                c = c.max(arr);
            }
            base = Some(match base {
                Some(b) => b.max(c),
                None => c,
            });
        }
        let mut total = base.expect("tainted component implies a tainted proc");
        for queue in queues.iter() {
            for m in queue {
                if tainted[scc.comp_of[m.src]] || tainted[scc.comp_of[m.dst]] {
                    total = total
                        .gap(sep.saturating_mul(2))
                        .wire(params.wire_time(m.bytes))
                        .latency(params.latency);
                }
            }
        }
        for p in 0..procs {
            if tainted[scc.comp_of[p]] {
                done[p] = total;
                recv_done[p] = total;
            }
        }
    }

    CommHi { done, recv_done }
}

/// Run the cost-interval interpreter over a program view.
///
/// Returns `None` when the view is malformed (zero processors, arity or
/// range defects a [`crate::check_program`] run would report as errors) —
/// bounds over malformed programs would be meaningless, not just loose.
pub fn analyze(view: &ProgramView<'_>, cfg: &BoundsConfig) -> Option<ProgramBounds> {
    let procs = view.procs;
    if procs == 0 {
        return None;
    }
    for step in view.steps {
        if !step.comp.is_empty() && step.comp.len() != procs {
            return None;
        }
        if !step.comm.is_empty() {
            if step.comm.procs() != procs {
                return None;
            }
            for m in step.comm.messages() {
                if m.src >= procs || m.dst >= procs {
                    return None;
                }
            }
        }
    }

    let params = &cfg.params;
    let mut scratch = Scratch::new(procs);
    let mut lo = vec![Time::ZERO; procs];
    let mut hi = vec![Time::ZERO; procs];
    let mut steps_out: Vec<StepBounds> = Vec::with_capacity(view.steps.len());
    // Per step, per proc: which processor's entry readiness seeded the
    // ceiling chain, and the chain's dominant term — the critical path's
    // backpointers.
    let mut origins: Vec<Vec<usize>> = Vec::with_capacity(view.steps.len());
    let mut classes: Vec<Vec<Bottleneck>> = Vec::with_capacity(view.steps.len());
    let mut prev_hi_end = Time::ZERO;

    for (i, step) in view.steps.iter().enumerate() {
        // Computation phase: charges are exact (fault-free), so both ends
        // of the interval advance by the same amount.
        let mut lo_c: Vec<Time> = Vec::with_capacity(procs);
        let mut hi_c: Vec<Cost> = Vec::with_capacity(procs);
        for p in 0..procs {
            let base = if step.comp.is_empty() {
                Time::ZERO
            } else {
                step.comp[p]
            };
            lo_c.push(lo[p] + base);
            hi_c.push(Cost::seed(hi[p], p).comp(base));
        }

        // Communication phase.
        let (lo_done, lo_recv, hi_done, hi_recv) = if step.comm.is_empty() {
            (lo_c.clone(), lo_c.clone(), hi_c.clone(), hi_c.clone())
        } else {
            // One indexing pass serves both the floor and the ceiling.
            scratch.load(&step.comm);
            let l = comm_step_lo(&mut scratch, params, &lo_c);
            let h = comm_step_hi(&mut scratch, params, &hi_c);
            (l.done, l.recv_done, h.done, h.recv_done)
        };

        let (lo_base, hi_base) = match cfg.overlap {
            Overlap::None => (lo_done, hi_done),
            Overlap::RecvOnly => (lo_recv, hi_recv),
        };

        // Step attribution happens before synchronization (the barrier
        // does not change the maximum).
        let argmax = hi_base
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.t)
            .map(|(p, _)| p)
            .unwrap_or(0);
        let hi_end = hi_base[argmax].t;
        let lo_end = lo_base.iter().copied().max().unwrap_or(Time::ZERO);
        steps_out.push(StepBounds {
            step: i,
            label: step.label.clone(),
            lo_end,
            hi_end,
            span_hi: hi_end.saturating_sub(prev_hi_end),
            class: hi_base[argmax].brk.dominant(),
            proc: argmax,
            breakdown: hi_base[argmax].brk,
        });
        prev_hi_end = hi_end;

        let (lo_next, hi_next): (Vec<Time>, Vec<Cost>) = match cfg.sync {
            Synchronization::PerProcessor => (lo_base, hi_base),
            Synchronization::Barrier => {
                let hmax = hi_base
                    .iter()
                    .copied()
                    .reduce(Cost::max)
                    .expect("procs > 0");
                (vec![lo_end; procs], vec![hmax; procs])
            }
        };
        origins.push(hi_next.iter().map(|c| c.from).collect());
        classes.push(hi_next.iter().map(|c| c.brk.dominant()).collect());

        lo = lo_next;
        hi = hi_next.iter().map(|c| c.t).collect();
    }

    let final_argmax = hi
        .iter()
        .enumerate()
        .max_by_key(|(_, t)| **t)
        .map(|(p, _)| p)
        .unwrap_or(0);
    let mut critical_path = Vec::with_capacity(view.steps.len());
    let mut p = final_argmax;
    for t in (0..view.steps.len()).rev() {
        critical_path.push(PathSpan {
            step: t,
            label: view.steps[t].label.clone(),
            proc: p,
            class: classes[t][p],
        });
        p = origins[t][p];
    }
    critical_path.reverse();

    Some(ProgramBounds {
        lo: lo.iter().copied().max().unwrap_or(Time::ZERO),
        hi: hi.iter().copied().max().unwrap_or(Time::ZERO),
        per_proc: lo.into_iter().zip(hi).collect(),
        steps: steps_out,
        critical_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use commsim::{patterns, SimConfig};
    use loggp::presets;
    use predsim_core::{simulate_program, Program, SimOptions, Step};

    fn bracket(program: &Program, params: LogGpParams) -> (Time, Time, Time, Time) {
        let cfg = BoundsConfig::new(params);
        let b = analyze(&ProgramView::of(program), &cfg).expect("well-formed");
        let std = simulate_program(program, &SimOptions::new(SimConfig::new(params)));
        let wc = simulate_program(
            program,
            &SimOptions::new(SimConfig::new(params)).worst_case(),
        );
        (b.lo, std.total, wc.total, b.hi)
    }

    #[test]
    fn brackets_a_simple_exchange() {
        let mut pattern = CommPattern::new(4);
        pattern.add(0, 1, 1024);
        pattern.add(2, 3, 1024);
        let mut program = Program::new(4);
        program.push(
            Step::new("swap")
                .with_comp(vec![Time::from_us(5.0); 4])
                .with_comm(pattern),
        );
        let (lo, std, wc, hi) = bracket(&program, presets::meiko_cs2(4));
        assert!(lo <= std, "lo {lo} > std {std}");
        assert!(std <= wc, "std {std} > wc {wc}");
        assert!(wc <= hi, "wc {wc} > hi {hi}");
        assert!(
            lo > Time::from_us(5.0),
            "comp + message must lift the floor"
        );
    }

    #[test]
    fn brackets_cyclic_patterns_with_forced_sends() {
        let mut program = Program::new(5);
        program.push(Step::new("ring").with_comm(patterns::ring(5, 2048)));
        for seed in 0..8u64 {
            let params = presets::meiko_cs2(5);
            let cfg = SimConfig::new(params).with_seed(seed);
            let b = analyze(&ProgramView::of(&program), &BoundsConfig::new(params)).unwrap();
            let std = simulate_program(&program, &SimOptions::new(cfg));
            let wc = simulate_program(&program, &SimOptions::new(cfg).worst_case());
            assert!(
                b.lo <= std.total,
                "seed {seed}: lo {} > std {}",
                b.lo,
                std.total
            );
            assert!(
                wc.total <= b.hi,
                "seed {seed}: wc {} > hi {}",
                wc.total,
                b.hi
            );
        }
    }

    #[test]
    fn gather_is_gap_bound_on_a_gapy_machine() {
        let params = LogGpParams {
            latency: Time::from_us(1.0),
            overhead: Time::from_us(1.0),
            gap: Time::from_us(50.0),
            gap_per_byte: Time::ZERO,
            procs: 8,
        };
        let mut program = Program::new(8);
        program.push(Step::new("gather").with_comm(patterns::gather(8, 0, 64)));
        let b = analyze(&ProgramView::of(&program), &BoundsConfig::new(params)).unwrap();
        assert_eq!(b.steps.len(), 1);
        assert_eq!(b.steps[0].class, Bottleneck::Gap);
        assert_eq!(b.steps[0].proc, 0, "root of the gather dominates");
    }

    #[test]
    fn compute_only_programs_have_exact_intervals() {
        let mut program = Program::new(3);
        program.push(Step::new("a").with_comp(vec![
            Time::from_us(1.0),
            Time::from_us(9.0),
            Time::from_us(2.0),
        ]));
        program.push(Step::new("b").with_comp(vec![
            Time::from_us(4.0),
            Time::from_us(1.0),
            Time::from_us(1.0),
        ]));
        let params = presets::meiko_cs2(3);
        let b = analyze(&ProgramView::of(&program), &BoundsConfig::new(params)).unwrap();
        assert_eq!(b.lo, b.hi, "no communication, no nondeterminism");
        assert_eq!(b.lo, Time::from_us(10.0));
        assert_eq!(b.per_proc[1], (Time::from_us(10.0), Time::from_us(10.0)));
        assert_eq!(b.critical_path.len(), 2);
        assert_eq!(b.critical_path[0].proc, 1, "P1's comp dominates both steps");
        assert!(b
            .critical_path
            .iter()
            .all(|s| s.class == Bottleneck::Compute));
    }

    #[test]
    fn barrier_sync_tightens_nothing_but_stays_sound() {
        let mut program = Program::new(4);
        program.push(
            Step::new("x")
                .with_comp(vec![Time::from_us(3.0); 4])
                .with_comm(patterns::ring(4, 512)),
        );
        program.push(Step::new("y").with_comp(vec![Time::from_us(1.0); 4]));
        let params = presets::meiko_cs2(4);
        for sync in [Synchronization::PerProcessor, Synchronization::Barrier] {
            let cfg = BoundsConfig::new(params).with_sync(sync);
            let b = analyze(&ProgramView::of(&program), &cfg).unwrap();
            let mut opts = SimOptions::new(SimConfig::new(params));
            if sync == Synchronization::Barrier {
                opts = opts.with_barrier();
            }
            let std = simulate_program(&program, &opts);
            let wc = simulate_program(&program, &opts.worst_case());
            assert!(b.lo <= std.total);
            assert!(wc.total <= b.hi);
        }
    }

    #[test]
    fn json_value_round_trips_through_the_dialect() {
        let mut program = Program::new(2);
        program.push(Step::new("m").with_comm(patterns::ring(2, 256)));
        let b = analyze(
            &ProgramView::of(&program),
            &BoundsConfig::new(presets::meiko_cs2(2)),
        )
        .unwrap();
        let v = b.to_value();
        let parsed = crate::json::parse(&v.to_compact()).unwrap();
        assert_eq!(parsed, v);
        assert!(v.get("static_lo_ps").and_then(Value::as_int).unwrap() > 0);
        assert!(
            v.get("static_hi_ps").and_then(Value::as_int).unwrap()
                >= v.get("static_lo_ps").and_then(Value::as_int).unwrap()
        );
        let text = b.render();
        assert!(text.contains("static bounds:"), "{text}");
        assert!(text.contains("critical path"), "{text}");
    }

    #[test]
    fn malformed_views_are_refused() {
        assert!(analyze(
            &ProgramView {
                procs: 0,
                steps: &[]
            },
            &BoundsConfig::new(presets::meiko_cs2(1))
        )
        .is_none());
        let steps = [Step::new("lopsided").with_comp(vec![Time::from_us(1.0); 3])];
        assert!(analyze(
            &ProgramView {
                procs: 4,
                steps: &steps
            },
            &BoundsConfig::new(presets::meiko_cs2(4))
        )
        .is_none());
        let mut wide = CommPattern::new(6);
        wide.add(4, 5, 128);
        let steps = [Step::new("wide").with_comm(wide)];
        assert!(analyze(
            &ProgramView {
                procs: 4,
                steps: &steps
            },
            &BoundsConfig::new(presets::meiko_cs2(4))
        )
        .is_none());
    }
}
