//! A minimal hand-rolled JSON value, printer and parser — the
//! **project-wide wire format**.
//!
//! The workspace deliberately carries no serialization dependency, so every
//! machine-readable surface is built on this module: the analyzer's
//! `predsim check --json` reports, the engine's checkpoint journal lines,
//! the JSONL trace-event streams of `predsim-obs`, and the request and
//! response bodies of the `predsim-serve` HTTP API. It supports exactly
//! what those schemas need: null, booleans, integers, strings, arrays and
//! objects (with preserved key order). The parser is a strict
//! recursive-descent reader of the same subset — floats are rejected,
//! which is fine because the schemas never emit them (times travel as
//! integer picoseconds, host durations as integer nanoseconds).
//!
//! Build a document with the [`Value`] constructors and render it:
//!
//! ```
//! use predsim_lint::json::Value;
//!
//! let doc = Value::Object(vec![
//!     ("source".into(), Value::Str("ge:240,24,diagonal,8".into())),
//!     ("worst_case".into(), Value::Bool(false)),
//!     ("seed".into(), Value::Int(7)),
//! ]);
//! assert_eq!(
//!     doc.to_compact(),
//!     r#"{"source":"ge:240,24,diagonal,8","worst_case":false,"seed":7}"#
//! );
//! ```
//!
//! Parse one back and pick it apart with the typed accessors:
//!
//! ```
//! use predsim_lint::json::{parse, Value};
//!
//! let v = parse(r#"{"jobs":[{"source":"cannon:64,4","machine":"meiko"}]}"#).unwrap();
//! let jobs = v.get("jobs").and_then(Value::as_array).unwrap();
//! assert_eq!(jobs.len(), 1);
//! assert_eq!(
//!     jobs[0].get("source").and_then(Value::as_str),
//!     Some("cannon:64,4")
//! );
//! assert!(parse("{\"t\": 1.5}").is_err(), "floats are not in the dialect");
//! ```

use std::fmt::Write as _;

/// A JSON value over the subset the diagnostic schema uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the schema has no floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved and significant for output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    ///
    /// ```
    /// use predsim_lint::json::{parse, Value};
    /// let v = parse(r#"{"worst_case":true}"#).unwrap();
    /// assert_eq!(v.get("worst_case").and_then(Value::as_bool), Some(true));
    /// assert_eq!(v.get("missing").and_then(Value::as_bool), None);
    /// ```
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the diagnostic schema"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<i64>().ok())
            .map(Value::Int)
            .ok_or_else(|| self.err("bad integer"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar. The input is a &str, so
                    // boundaries are always valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

use crate::diag::{Code, Diagnostic, Report, Severity, Span};

fn opt_usize(n: Option<usize>) -> Value {
    match n {
        Some(n) => Value::Int(n as i64),
        None => Value::Null,
    }
}

fn get_opt_usize(v: &Value, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(n)) if *n >= 0 => Ok(Some(*n as usize)),
        Some(other) => Err(format!(
            "field '{key}': expected a non-negative integer, got {other:?}"
        )),
    }
}

fn get_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

impl Diagnostic {
    /// This diagnostic as a JSON object (the documented schema).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".into(), Value::Str(self.code.as_str().into())),
            ("severity".into(), Value::Str(self.severity.as_str().into())),
            ("message".into(), Value::Str(self.message.clone())),
            ("step".into(), opt_usize(self.span.step)),
            (
                "step_label".into(),
                match &self.span.step_label {
                    Some(l) => Value::Str(l.clone()),
                    None => Value::Null,
                },
            ),
            ("proc".into(), opt_usize(self.span.proc)),
            ("msg".into(), opt_usize(self.span.msg)),
            (
                "notes".into(),
                Value::Array(self.notes.iter().cloned().map(Value::Str).collect()),
            ),
        ])
    }

    /// Parse a diagnostic back from its JSON object.
    pub fn from_value(v: &Value) -> Result<Diagnostic, String> {
        let code_str = get_str(v, "code")?;
        let code = Code::parse(&code_str).ok_or_else(|| format!("unknown code '{code_str}'"))?;
        let sev_str = get_str(v, "severity")?;
        let severity =
            Severity::parse(&sev_str).ok_or_else(|| format!("unknown severity '{sev_str}'"))?;
        let span = Span {
            step: get_opt_usize(v, "step")?,
            step_label: match v.get("step_label") {
                None | Some(Value::Null) => None,
                Some(Value::Str(s)) => Some(s.clone()),
                Some(other) => {
                    return Err(format!(
                        "field 'step_label': expected a string, got {other:?}"
                    ))
                }
            },
            proc: get_opt_usize(v, "proc")?,
            msg: get_opt_usize(v, "msg")?,
        };
        let notes = match v.get("notes") {
            None | Some(Value::Null) => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(|n| {
                    n.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "non-string note".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(other) => return Err(format!("field 'notes': expected an array, got {other:?}")),
        };
        Ok(Diagnostic {
            code,
            severity,
            message: get_str(v, "message")?,
            span,
            notes,
        })
    }
}

impl Report {
    /// This report as a JSON object: severity tallies plus the diagnostic
    /// array, in report order.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "errors".into(),
                Value::Int(self.count(Severity::Error) as i64),
            ),
            (
                "warnings".into(),
                Value::Int(self.count(Severity::Warning) as i64),
            ),
            (
                "infos".into(),
                Value::Int(self.count(Severity::Info) as i64),
            ),
            (
                "diagnostics".into(),
                Value::Array(
                    self.diagnostics()
                        .iter()
                        .map(Diagnostic::to_value)
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON (the machine-readable output of `predsim check
    /// --json`).
    pub fn to_json(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parse a report back from [`Report::to_json`] output. The severity
    /// tallies in the input are ignored (they are derived data).
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = parse(text).map_err(|e| e.to_string())?;
        Report::from_value(&v)
    }

    /// Parse a report from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<Report, String> {
        let items = v
            .get("diagnostics")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing 'diagnostics' array".to_string())?;
        let mut report = Report::new();
        for item in items {
            report.push(Diagnostic::from_value(item)?);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("ring".into())),
            ("errors".into(), Value::Int(2)),
            ("clean".into(), Value::Bool(false)),
            ("proc".into(), Value::Null),
            (
                "steps".into(),
                Value::Array(vec![Value::Int(0), Value::Int(-3)]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("none".into(), Value::Object(vec![])),
        ]);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}π".into());
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(
            parse("\"\\u00e9\\u0041\"").unwrap(),
            Value::Str("éA".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1.5",
            "1e3",
            "[1] x",
            "\"abc",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 1, \"b\": \"x\", \"c\": [true]}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_int), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("a").and_then(Value::as_bool), None);
        assert_eq!(
            v.get("c")
                .and_then(Value::as_array)
                .and_then(|c| c[0].as_bool()),
            Some(true)
        );
        assert_eq!(
            v.get("c").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Int(3).get("a"), None);
    }

    #[test]
    fn pretty_layout_is_indented() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::Int(1)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(
                Code::DeadlockCycle,
                Severity::Error,
                Span::step(2, "rotate \"a\""),
                "cycle among 4 processors",
            )
            .with_note("cycle: P0 -> P1 -> P0"),
        );
        r.push(Diagnostic::new(
            Code::UnusedProcessor,
            Severity::Warning,
            Span::program().with_proc(7),
            "P7 never used",
        ));
        let text = r.to_json();
        let back = Report::from_json(&text).unwrap();
        assert_eq!(back, r);
        assert!(text.contains("\"errors\": 1"), "{text}");
        assert!(
            text.contains("\"step_label\": \"rotate \\\"a\\\"\""),
            "{text}"
        );
    }

    #[test]
    fn report_from_json_rejects_garbage() {
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("{\"diagnostics\": [{}]}").is_err());
        assert!(Report::from_json(
            "{\"diagnostics\": [{\"code\": \"PS9999\", \"severity\": \"error\", \
             \"message\": \"x\"}]}"
        )
        .is_err());
        assert!(Report::from_json(
            "{\"diagnostics\": [{\"code\": \"PS0101\", \"severity\": \"fatal\", \
             \"message\": \"x\"}]}"
        )
        .is_err());
        // Minimal valid diagnostic: optional span fields may be absent.
        let r = Report::from_json(
            "{\"diagnostics\": [{\"code\": \"PS0101\", \"severity\": \"error\", \
             \"message\": \"x\"}]}",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.diagnostics()[0].span.is_program());
    }
}
