//! The diagnostics model: stable codes, severities, spans and reports.
//!
//! Every finding of the analyzer is a [`Diagnostic`]: a stable `PSxxxx`
//! [`Code`], a [`Severity`], a human message, a [`Span`] locating the
//! finding inside the program (step / processor / message), and free-form
//! notes. A [`Report`] collects diagnostics and renders them either
//! rustc-style for terminals ([`Report::render`]) or as machine-readable
//! JSON ([`Report::to_json`], round-trippable via [`Report::from_json`]).

use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: something worth knowing, nothing to fix.
    Info,
    /// Suspicious but simulable; predictions may be degraded or surprising.
    Warning,
    /// A defect: the program is malformed or the requested analysis is
    /// guaranteed to misbehave on it.
    Error,
}

impl Severity {
    /// Lower-case name, as used in JSON and rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the lower-case name back (inverse of [`Severity::as_str`]).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric ranges group the codes by pass:
/// `PS01xx` well-formedness, `PS02xx` deadlock, `PS03xx` LogGP bounds,
/// `PS04xx` fault analysis, `PS05xx` batch-job validation. Codes are
/// append-only: a published code never changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Code {
    /// PS0101: the program declares zero processors.
    ZeroProcessors,
    /// PS0102: a step's computation vector length differs from the
    /// program's processor count.
    CompArityMismatch,
    /// PS0103: a step's communication pattern spans a different processor
    /// count than the program.
    PatternProcsMismatch,
    /// PS0104: a message references a processor outside the program's
    /// range.
    ProcOutOfRange,
    /// PS0105: a step contains self-messages (src == dst). The LogGP
    /// simulators ignore them; the machine emulator charges a local copy.
    SelfMessages,
    /// PS0106: a step contains zero-byte network messages (pure control
    /// messages; legal, but often an accident).
    ZeroByteMessages,
    /// PS0107: a step neither computes nor communicates.
    EmptyStep,
    /// PS0201: a communication step contains a processor cycle, which
    /// deadlocks the worst-case (§4.2) algorithm until transmissions are
    /// forced.
    DeadlockCycle,
    /// PS0301: fan-in hotspot — one processor receives from many distinct
    /// senders in a single step and serializes the step.
    FanInHotspot,
    /// PS0302: the per-processor LogGP serialization bounds of a step are
    /// imbalanced beyond the configured ratio.
    CommImbalance,
    /// PS0303: per-processor computation charges are imbalanced beyond the
    /// configured ratio across many steps.
    CompImbalance,
    /// PS0304: a processor never computes and never communicates in the
    /// whole program.
    UnusedProcessor,
    /// PS0401: receives wait on a processor that fail-stops during the
    /// same step; under the fault plan the step's receive counts cannot be
    /// satisfied until the failed processor restarts.
    FailStopStarvation,
    /// PS0501: a batch job specification cannot produce a program (bad
    /// divisibility, zero processors, …).
    BadJobSpec,
    /// PS0601: per-processor static finish ceilings are imbalanced beyond
    /// the configured ratio — the program's load is skewed before a single
    /// simulation event runs.
    StaticImbalance,
    /// PS0602: a step's static ceiling is dominated by gap serialization
    /// at a fan-in hotspot — senders queue on one port.
    ContentionHotspot,
    /// PS0603: a step's static ceiling is dominated by per-byte wire time
    /// (`G`); smaller messages (e.g. a smaller block size) would rebalance
    /// it.
    BandwidthDominated,
    /// PS0604: the whole-program `[lo, hi]` interval is so wide that the
    /// standard/worst-case bracket carries little information.
    DivergenceRisk,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 18] = [
        Code::ZeroProcessors,
        Code::CompArityMismatch,
        Code::PatternProcsMismatch,
        Code::ProcOutOfRange,
        Code::SelfMessages,
        Code::ZeroByteMessages,
        Code::EmptyStep,
        Code::DeadlockCycle,
        Code::FanInHotspot,
        Code::CommImbalance,
        Code::CompImbalance,
        Code::UnusedProcessor,
        Code::FailStopStarvation,
        Code::BadJobSpec,
        Code::StaticImbalance,
        Code::ContentionHotspot,
        Code::BandwidthDominated,
        Code::DivergenceRisk,
    ];

    /// The stable `PSxxxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ZeroProcessors => "PS0101",
            Code::CompArityMismatch => "PS0102",
            Code::PatternProcsMismatch => "PS0103",
            Code::ProcOutOfRange => "PS0104",
            Code::SelfMessages => "PS0105",
            Code::ZeroByteMessages => "PS0106",
            Code::EmptyStep => "PS0107",
            Code::DeadlockCycle => "PS0201",
            Code::FanInHotspot => "PS0301",
            Code::CommImbalance => "PS0302",
            Code::CompImbalance => "PS0303",
            Code::UnusedProcessor => "PS0304",
            Code::FailStopStarvation => "PS0401",
            Code::BadJobSpec => "PS0501",
            Code::StaticImbalance => "PS0601",
            Code::ContentionHotspot => "PS0602",
            Code::BandwidthDominated => "PS0603",
            Code::DivergenceRisk => "PS0604",
        }
    }

    /// Parse a `PSxxxx` identifier (inverse of [`Code::as_str`]).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// One-line description for the codes table.
    pub fn description(self) -> &'static str {
        match self {
            Code::ZeroProcessors => "program declares zero processors",
            Code::CompArityMismatch => "computation vector length != processor count",
            Code::PatternProcsMismatch => "pattern processor count != program processor count",
            Code::ProcOutOfRange => "message references a processor outside the program",
            Code::SelfMessages => "step contains self-messages",
            Code::ZeroByteMessages => "step contains zero-byte network messages",
            Code::EmptyStep => "step neither computes nor communicates",
            Code::DeadlockCycle => "communication cycle deadlocks the worst-case algorithm",
            Code::FanInHotspot => "one processor receives from many distinct senders",
            Code::CommImbalance => "per-processor LogGP bounds imbalanced within a step",
            Code::CompImbalance => "per-processor computation imbalanced across steps",
            Code::UnusedProcessor => "processor never computes nor communicates",
            Code::FailStopStarvation => "receives wait on a processor that fail-stops in the step",
            Code::BadJobSpec => "batch job specification cannot produce a program",
            Code::StaticImbalance => "per-processor static finish ceilings imbalanced",
            Code::ContentionHotspot => "gap serialization dominates a fan-in step's ceiling",
            Code::BandwidthDominated => "per-byte wire time dominates a step's ceiling",
            Code::DivergenceRisk => "static [lo, hi] interval is uselessly wide",
        }
    }

    /// One-paragraph rationale with a concrete example, printed by
    /// `predsim check --explain <CODE>`. Longer than [`Code::description`]:
    /// this is the text a user reads to decide whether to act.
    pub fn explain(self) -> &'static str {
        match self {
            Code::ZeroProcessors => {
                "The program declares zero processors, so there is nothing to \
                 simulate: every per-processor vector is empty and every total \
                 is vacuously zero. This is always a construction bug — e.g. a \
                 generator called with procs=0, or a hand-built Program::new(0). \
                 Fix the processor count at the source; the simulators refuse to \
                 produce a meaningful prediction otherwise."
            }
            Code::CompArityMismatch => {
                "A step's computation vector has a different length than the \
                 program's processor count, so some processor either has no \
                 charge or a charge with no owner. Example: a 4-processor \
                 program with Step::with_comp(vec![t; 3]). The fold indexes \
                 comp[p] for every p, so this is an out-and-out defect; pad the \
                 vector (zero means 'no work this step') or fix the count."
            }
            Code::PatternProcsMismatch => {
                "A step's communication pattern was built over a different \
                 processor count than the program it is attached to — e.g. a \
                 CommPattern::new(6) inside a 4-processor program. Message \
                 endpoints and per-processor queues no longer line up, so every \
                 downstream analysis (and the simulator itself) would read \
                 garbage. Rebuild the pattern with the program's count."
            }
            Code::ProcOutOfRange => {
                "A message names a source or destination processor outside the \
                 program's range, e.g. P5 in a 4-processor program. The \
                 simulators index per-processor state by these ids, so the \
                 program cannot run; this usually means a layout function or \
                 generator used the wrong processor count when emitting sends."
            }
            Code::SelfMessages => {
                "The step contains messages whose source equals their \
                 destination. The LogGP network simulators skip them entirely \
                 (no o, g or L is charged) while the machine emulator charges a \
                 local copy, so they are legal but often an accident — e.g. a \
                 block layout that maps a block's owner to itself in a \
                 broadcast. If intended, nothing to do; if not, filter them at \
                 generation time to keep message counts honest."
            }
            Code::ZeroByteMessages => {
                "The step sends network messages carrying zero bytes. They \
                 still cost the full 2o + L per message — LogGP charges \
                 per-message overheads regardless of size — so they act as \
                 pure control messages. That is sometimes deliberate \
                 (synchronization pings) and sometimes a byte-count bug; check \
                 that the payload computation did not collapse to zero."
            }
            Code::EmptyStep => {
                "The step neither computes nor communicates: no charges, no \
                 messages. It contributes nothing to the prediction and usually \
                 indicates a generator emitting a placeholder phase (e.g. a \
                 loop iteration whose block fell outside the matrix). Harmless, \
                 but dropping it makes step-indexed reports easier to read."
            }
            Code::DeadlockCycle => {
                "The step's processor graph contains a cycle, e.g. P0 -> P1 -> \
                 P0 with both messages in the same step. The paper's worst-case \
                 algorithm (§4.2) has every processor receive everything before \
                 sending anything, so a cycle stalls every processor in it \
                 until the simulator forcibly transmits a message — that is an \
                 error when checking for worst-case (the forced schedule is \
                 seed-dependent) and a warning for the standard algorithm, \
                 which interleaves eagerly and is merely slower. Splitting the \
                 exchange into two steps removes the cycle."
            }
            Code::FanInHotspot => {
                "One processor receives from many distinct senders in a single \
                 step (a gather shape). Its port serializes those receives one \
                 gap apart, so the step cannot finish before (r-1)g + 2o + L \
                 regardless of schedule — with 8 senders on a 10us-gap machine \
                 that is already ~70us of unavoidable serialization. Consider a \
                 tree-shaped reduction over several steps, or fewer, larger \
                 messages."
            }
            Code::CommImbalance => {
                "Within one step, the static serialization bound of the \
                 busiest processor is several times the mean over processors \
                 that communicate at all: most ports idle while one drains. \
                 Example: a 16-way gather where the root's bound is 15g + 2o + \
                 L but every leaf only pays one message. The step ends with the \
                 slowest port, so spreading endpoints (or splitting the step) \
                 shortens the whole program."
            }
            Code::CompImbalance => {
                "Across the program, computation phases repeatedly give one \
                 processor several times the mean charge — e.g. a row layout \
                 of Gaussian elimination where the pivot column's owner factors \
                 every step. Each step finishes with its slowest processor, so \
                 the imbalance is pure idle time for everyone else; a cyclic \
                 layout usually flattens it."
            }
            Code::UnusedProcessor => {
                "Some processors never compute and never appear as a message \
                 endpoint in any step. They only inflate P in the machine model \
                 (and the per-processor report vectors) without doing work — \
                 usually a generator was asked for more processors than the \
                 problem decomposes into, e.g. ge:240,24,row,16 with only 10 \
                 block columns. Simulate with a smaller machine instead."
            }
            Code::FailStopStarvation => {
                "Under the supplied fault plan, a step expects receives from a \
                 processor that is down during that step, so the receive counts \
                 cannot be satisfied until it restarts: the fault simulator \
                 will stretch the step by the outage. This is a modelling \
                 warning, not a defect — but under --strict-faults it is \
                 promoted to an error so batch runs fail fast instead of \
                 producing predictions dominated by restart waits."
            }
            Code::BadJobSpec => {
                "A batch job specification cannot produce a program at all — \
                 e.g. ge:100,24,row,4 (24 does not divide 100) or a zero \
                 processor count. The engine rejects the whole batch up front \
                 rather than simulating the valid subset, so fix or drop the \
                 offending spec; predsim check prints one PS0501 per bad spec \
                 with the builder's own error text."
            }
            Code::StaticImbalance => {
                "The static cost-interval interpreter gives each processor a \
                 finish-time ceiling; here the largest ceiling is several \
                 times the smallest over active processors, before a single \
                 simulation event runs. Example: ge:960,32,row,8 concentrates \
                 factor work on one block-column owner, so its ceiling dwarfs \
                 the rest. The program ends with its slowest processor — \
                 rebalance the layout (diagonal/cyclic) or resize blocks."
            }
            Code::ContentionHotspot => {
                "In the flagged step the interpreter's ceiling chain is \
                 dominated by gap serialization at a processor with high \
                 receive fan-in: the port admits one message every g, so the \
                 step's wall is senders queuing, not wires or overheads. A \
                 gather of 8 messages on a machine with g >> o spends almost \
                 its whole ceiling in (r-1)g. Restructure into a tree or move \
                 endpoints off the hot processor."
            }
            Code::BandwidthDominated => {
                "In the flagged step the ceiling chain is dominated by the \
                 per-byte term G·(k-1): messages are large enough that wire \
                 time outweighs latency, overhead and gap combined. Halving \
                 the block size roughly halves per-message wire time and often \
                 shortens the whole bracket — this is exactly the direction \
                 predsim ge-sweep explores; try it with --prefilter to skip \
                 provably-worse block sizes."
            }
            Code::DivergenceRisk => {
                "The whole-program interval [static_lo, static_hi] is wider \
                 than the configured ratio: the provable floor and ceiling are \
                 so far apart that the standard/worst-case bracket may carry \
                 little information. Wide brackets come from nondeterministic \
                 receive order — cyclic steps with forced transmissions, or \
                 deep fan-in where arrival order is unconstrained. Treat \
                 point predictions for this program with caution and prefer \
                 measuring (or simulating both algorithms) over trusting one \
                 number."
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the program a diagnostic points. All fields are optional; a
/// whole-program finding leaves them all unset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 0-based step index.
    pub step: Option<usize>,
    /// The step's label, carried for rendering.
    pub step_label: Option<String>,
    /// Processor id.
    pub proc: Option<usize>,
    /// Message id within the step's pattern.
    pub msg: Option<usize>,
}

impl Span {
    /// A span with no location (whole-program findings).
    pub fn program() -> Span {
        Span::default()
    }

    /// A span pointing at one step.
    pub fn step(index: usize, label: impl Into<String>) -> Span {
        Span {
            step: Some(index),
            step_label: Some(label.into()),
            ..Span::default()
        }
    }

    /// This span, additionally naming a processor.
    pub fn with_proc(mut self, proc: usize) -> Span {
        self.proc = Some(proc);
        self
    }

    /// This span, additionally naming a message.
    pub fn with_msg(mut self, msg: usize) -> Span {
        self.msg = Some(msg);
        self
    }

    /// True iff nothing is located (whole-program).
    pub fn is_program(&self) -> bool {
        self.step.is_none() && self.proc.is_none() && self.msg.is_none()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = self.step {
            match &self.step_label {
                Some(l) => parts.push(format!("step {s} ('{l}')")),
                None => parts.push(format!("step {s}")),
            }
        }
        if let Some(p) = self.proc {
            parts.push(format!("P{p}"));
        }
        if let Some(m) = self.msg {
            parts.push(format!("msg #{m}"));
        }
        if parts.is_empty() {
            f.write_str("program")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity of this occurrence (some codes vary by context: a
    /// [`Code::DeadlockCycle`] is an error when checking for the worst-case
    /// algorithm and a warning otherwise).
    pub severity: Severity,
    /// Human-readable one-line message.
    pub message: String,
    /// Location.
    pub span: Span,
    /// Additional detail lines, rendered as `= note:` entries.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no notes.
    pub fn new(code: Code, severity: Severity, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// This diagnostic with a note appended.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Rustc-style multi-line rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        );
        let _ = writeln!(out, "  --> {}", self.span);
        for note in &self.notes {
            let _ = writeln!(out, "   = note: {note}");
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of diagnostics plus severity tallies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// All diagnostics, in insertion (or, after [`Report::sort`], span)
    /// order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True iff no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// True iff the report contains at least one error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The most severe diagnostic present, `None` when empty.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// True iff the report is free of error-severity diagnostics — the
    /// analyzer's definition of an acceptable program (warnings and infos
    /// are advisory).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// Merge another report into this one.
    pub fn extend(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Stable presentation order: by step, then severity (errors first),
    /// then code, then processor/message.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            (a.span.step, std::cmp::Reverse(a.severity), a.code.as_str())
                .cmp(&(b.span.step, std::cmp::Reverse(b.severity), b.code.as_str()))
                .then(a.span.proc.cmp(&b.span.proc))
                .then(a.span.msg.cmp(&b.span.msg))
        });
    }

    /// Render the whole report rustc-style, ending with a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// One-line tally, e.g. `2 errors, 1 warning, 0 infos`.
    pub fn summary(&self) -> String {
        let plural = |n: usize, word: &str| format!("{n} {word}{}", if n == 1 { "" } else { "s" });
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Info), "info")
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_round_trips() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            let s = c.as_str();
            assert!(s.starts_with("PS") && s.len() == 6, "{s}");
            assert!(s[2..].chars().all(|ch| ch.is_ascii_digit()), "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
            assert_eq!(Code::parse(s), Some(c));
            assert!(!c.description().is_empty());
            assert!(
                c.explain().len() > c.description().len(),
                "{s}: explain text should be a real paragraph"
            );
        }
        assert_eq!(Code::parse("PS9999"), None);
    }

    #[test]
    fn span_renders_each_shape() {
        assert_eq!(Span::program().to_string(), "program");
        assert_eq!(Span::step(3, "wave").to_string(), "step 3 ('wave')");
        assert_eq!(
            Span::step(3, "wave").with_proc(2).with_msg(7).to_string(),
            "step 3 ('wave'), P2, msg #7"
        );
    }

    #[test]
    fn report_tallies_and_renders() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::DeadlockCycle,
            Severity::Error,
            Span::step(1, "rotate"),
            "cycle among 3 processors",
        ));
        r.push(
            Diagnostic::new(
                Code::SelfMessages,
                Severity::Info,
                Span::step(0, "skew"),
                "2 self-messages",
            )
            .with_note("ids: 0, 3"),
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Error));

        r.sort();
        // After sorting, step 0 comes first.
        assert_eq!(r.diagnostics()[0].code, Code::SelfMessages);

        let text = r.render();
        assert!(text.contains("error[PS0201]"), "{text}");
        assert!(text.contains("--> step 1 ('rotate')"), "{text}");
        assert!(text.contains("= note: ids: 0, 3"), "{text}");
        assert!(text.contains("1 error, 0 warnings, 1 info"), "{text}");
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(r.max_severity(), None);
        assert_eq!(r.summary(), "0 errors, 0 warnings, 0 infos");
    }
}
