//! The diagnostics model: stable codes, severities, spans and reports.
//!
//! Every finding of the analyzer is a [`Diagnostic`]: a stable `PSxxxx`
//! [`Code`], a [`Severity`], a human message, a [`Span`] locating the
//! finding inside the program (step / processor / message), and free-form
//! notes. A [`Report`] collects diagnostics and renders them either
//! rustc-style for terminals ([`Report::render`]) or as machine-readable
//! JSON ([`Report::to_json`], round-trippable via [`Report::from_json`]).

use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: something worth knowing, nothing to fix.
    Info,
    /// Suspicious but simulable; predictions may be degraded or surprising.
    Warning,
    /// A defect: the program is malformed or the requested analysis is
    /// guaranteed to misbehave on it.
    Error,
}

impl Severity {
    /// Lower-case name, as used in JSON and rendered output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the lower-case name back (inverse of [`Severity::as_str`]).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric ranges group the codes by pass:
/// `PS01xx` well-formedness, `PS02xx` deadlock, `PS03xx` LogGP bounds,
/// `PS04xx` fault analysis, `PS05xx` batch-job validation. Codes are
/// append-only: a published code never changes meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Code {
    /// PS0101: the program declares zero processors.
    ZeroProcessors,
    /// PS0102: a step's computation vector length differs from the
    /// program's processor count.
    CompArityMismatch,
    /// PS0103: a step's communication pattern spans a different processor
    /// count than the program.
    PatternProcsMismatch,
    /// PS0104: a message references a processor outside the program's
    /// range.
    ProcOutOfRange,
    /// PS0105: a step contains self-messages (src == dst). The LogGP
    /// simulators ignore them; the machine emulator charges a local copy.
    SelfMessages,
    /// PS0106: a step contains zero-byte network messages (pure control
    /// messages; legal, but often an accident).
    ZeroByteMessages,
    /// PS0107: a step neither computes nor communicates.
    EmptyStep,
    /// PS0201: a communication step contains a processor cycle, which
    /// deadlocks the worst-case (§4.2) algorithm until transmissions are
    /// forced.
    DeadlockCycle,
    /// PS0301: fan-in hotspot — one processor receives from many distinct
    /// senders in a single step and serializes the step.
    FanInHotspot,
    /// PS0302: the per-processor LogGP serialization bounds of a step are
    /// imbalanced beyond the configured ratio.
    CommImbalance,
    /// PS0303: per-processor computation charges are imbalanced beyond the
    /// configured ratio across many steps.
    CompImbalance,
    /// PS0304: a processor never computes and never communicates in the
    /// whole program.
    UnusedProcessor,
    /// PS0401: receives wait on a processor that fail-stops during the
    /// same step; under the fault plan the step's receive counts cannot be
    /// satisfied until the failed processor restarts.
    FailStopStarvation,
    /// PS0501: a batch job specification cannot produce a program (bad
    /// divisibility, zero processors, …).
    BadJobSpec,
}

impl Code {
    /// All codes, in numeric order.
    pub const ALL: [Code; 14] = [
        Code::ZeroProcessors,
        Code::CompArityMismatch,
        Code::PatternProcsMismatch,
        Code::ProcOutOfRange,
        Code::SelfMessages,
        Code::ZeroByteMessages,
        Code::EmptyStep,
        Code::DeadlockCycle,
        Code::FanInHotspot,
        Code::CommImbalance,
        Code::CompImbalance,
        Code::UnusedProcessor,
        Code::FailStopStarvation,
        Code::BadJobSpec,
    ];

    /// The stable `PSxxxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ZeroProcessors => "PS0101",
            Code::CompArityMismatch => "PS0102",
            Code::PatternProcsMismatch => "PS0103",
            Code::ProcOutOfRange => "PS0104",
            Code::SelfMessages => "PS0105",
            Code::ZeroByteMessages => "PS0106",
            Code::EmptyStep => "PS0107",
            Code::DeadlockCycle => "PS0201",
            Code::FanInHotspot => "PS0301",
            Code::CommImbalance => "PS0302",
            Code::CompImbalance => "PS0303",
            Code::UnusedProcessor => "PS0304",
            Code::FailStopStarvation => "PS0401",
            Code::BadJobSpec => "PS0501",
        }
    }

    /// Parse a `PSxxxx` identifier (inverse of [`Code::as_str`]).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// One-line description for the codes table.
    pub fn description(self) -> &'static str {
        match self {
            Code::ZeroProcessors => "program declares zero processors",
            Code::CompArityMismatch => "computation vector length != processor count",
            Code::PatternProcsMismatch => "pattern processor count != program processor count",
            Code::ProcOutOfRange => "message references a processor outside the program",
            Code::SelfMessages => "step contains self-messages",
            Code::ZeroByteMessages => "step contains zero-byte network messages",
            Code::EmptyStep => "step neither computes nor communicates",
            Code::DeadlockCycle => "communication cycle deadlocks the worst-case algorithm",
            Code::FanInHotspot => "one processor receives from many distinct senders",
            Code::CommImbalance => "per-processor LogGP bounds imbalanced within a step",
            Code::CompImbalance => "per-processor computation imbalanced across steps",
            Code::UnusedProcessor => "processor never computes nor communicates",
            Code::FailStopStarvation => "receives wait on a processor that fail-stops in the step",
            Code::BadJobSpec => "batch job specification cannot produce a program",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the program a diagnostic points. All fields are optional; a
/// whole-program finding leaves them all unset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// 0-based step index.
    pub step: Option<usize>,
    /// The step's label, carried for rendering.
    pub step_label: Option<String>,
    /// Processor id.
    pub proc: Option<usize>,
    /// Message id within the step's pattern.
    pub msg: Option<usize>,
}

impl Span {
    /// A span with no location (whole-program findings).
    pub fn program() -> Span {
        Span::default()
    }

    /// A span pointing at one step.
    pub fn step(index: usize, label: impl Into<String>) -> Span {
        Span {
            step: Some(index),
            step_label: Some(label.into()),
            ..Span::default()
        }
    }

    /// This span, additionally naming a processor.
    pub fn with_proc(mut self, proc: usize) -> Span {
        self.proc = Some(proc);
        self
    }

    /// This span, additionally naming a message.
    pub fn with_msg(mut self, msg: usize) -> Span {
        self.msg = Some(msg);
        self
    }

    /// True iff nothing is located (whole-program).
    pub fn is_program(&self) -> bool {
        self.step.is_none() && self.proc.is_none() && self.msg.is_none()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = self.step {
            match &self.step_label {
                Some(l) => parts.push(format!("step {s} ('{l}')")),
                None => parts.push(format!("step {s}")),
            }
        }
        if let Some(p) = self.proc {
            parts.push(format!("P{p}"));
        }
        if let Some(m) = self.msg {
            parts.push(format!("msg #{m}"));
        }
        if parts.is_empty() {
            f.write_str("program")
        } else {
            f.write_str(&parts.join(", "))
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity of this occurrence (some codes vary by context: a
    /// [`Code::DeadlockCycle`] is an error when checking for the worst-case
    /// algorithm and a warning otherwise).
    pub severity: Severity,
    /// Human-readable one-line message.
    pub message: String,
    /// Location.
    pub span: Span,
    /// Additional detail lines, rendered as `= note:` entries.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no notes.
    pub fn new(code: Code, severity: Severity, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// This diagnostic with a note appended.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Rustc-style multi-line rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        );
        let _ = writeln!(out, "  --> {}", self.span);
        for note in &self.notes {
            let _ = writeln!(out, "   = note: {note}");
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of diagnostics plus severity tallies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Append a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// All diagnostics, in insertion (or, after [`Report::sort`], span)
    /// order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// True iff no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Diagnostics at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == severity).count()
    }

    /// True iff the report contains at least one error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The most severe diagnostic present, `None` when empty.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diags.iter().map(|d| d.severity).max()
    }

    /// True iff the report is free of error-severity diagnostics — the
    /// analyzer's definition of an acceptable program (warnings and infos
    /// are advisory).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// Merge another report into this one.
    pub fn extend(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// Stable presentation order: by step, then severity (errors first),
    /// then code, then processor/message.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            (a.span.step, std::cmp::Reverse(a.severity), a.code.as_str())
                .cmp(&(b.span.step, std::cmp::Reverse(b.severity), b.code.as_str()))
                .then(a.span.proc.cmp(&b.span.proc))
                .then(a.span.msg.cmp(&b.span.msg))
        });
    }

    /// Render the whole report rustc-style, ending with a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// One-line tally, e.g. `2 errors, 1 warning, 0 infos`.
    pub fn summary(&self) -> String {
        let plural = |n: usize, word: &str| format!("{n} {word}{}", if n == 1 { "" } else { "s" });
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Info), "info")
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_round_trips() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        for s in [Severity::Info, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::parse(s.as_str()), Some(s));
        }
        assert_eq!(Severity::parse("fatal"), None);
    }

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in Code::ALL {
            let s = c.as_str();
            assert!(s.starts_with("PS") && s.len() == 6, "{s}");
            assert!(s[2..].chars().all(|ch| ch.is_ascii_digit()), "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
            assert_eq!(Code::parse(s), Some(c));
            assert!(!c.description().is_empty());
        }
        assert_eq!(Code::parse("PS9999"), None);
    }

    #[test]
    fn span_renders_each_shape() {
        assert_eq!(Span::program().to_string(), "program");
        assert_eq!(Span::step(3, "wave").to_string(), "step 3 ('wave')");
        assert_eq!(
            Span::step(3, "wave").with_proc(2).with_msg(7).to_string(),
            "step 3 ('wave'), P2, msg #7"
        );
    }

    #[test]
    fn report_tallies_and_renders() {
        let mut r = Report::new();
        r.push(Diagnostic::new(
            Code::DeadlockCycle,
            Severity::Error,
            Span::step(1, "rotate"),
            "cycle among 3 processors",
        ));
        r.push(
            Diagnostic::new(
                Code::SelfMessages,
                Severity::Info,
                Span::step(0, "skew"),
                "2 self-messages",
            )
            .with_note("ids: 0, 3"),
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.max_severity(), Some(Severity::Error));

        r.sort();
        // After sorting, step 0 comes first.
        assert_eq!(r.diagnostics()[0].code, Code::SelfMessages);

        let text = r.render();
        assert!(text.contains("error[PS0201]"), "{text}");
        assert!(text.contains("--> step 1 ('rotate')"), "{text}");
        assert!(text.contains("= note: ids: 0, 3"), "{text}");
        assert!(text.contains("1 error, 0 warnings, 1 info"), "{text}");
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(r.max_severity(), None);
        assert_eq!(r.summary(), "0 errors, 0 warnings, 0 infos");
    }
}
