//! Deadlock pass (`PS0201`): processor cycles in communication steps.
//!
//! The paper's worst-case algorithm (§4.2) schedules every processor to
//! receive all its messages before sending any. If the processor graph of a
//! step contains a cycle, every processor on it waits for its predecessor
//! and none ever sends: the schedule deadlocks, and the simulator breaks
//! the stall by *forcing* transmissions (counted as `forced_sends` in the
//! simulation result). Each nontrivial strongly connected component needs
//! at least one forced transmission, so the number of SCCs is a lower bound
//! on `forced_sends` for the step.
//!
//! Whether that is a defect depends on what the program is checked *for*:
//! under [`CommAlgo::WorstCase`] the stall is guaranteed, so the diagnostic
//! is an error; under the standard algorithm cycles are handled eagerly and
//! the same finding is only a warning (the worst-case *bound* for such a
//! step is still computable but rests on the forcing heuristic).
//!
//! [`CommAlgo::WorstCase`]: predsim_core::CommAlgo::WorstCase

use crate::passes::proc_list;
use crate::{Code, Diagnostic, LintOptions, Pass, ProgramView, Report, Severity, Span};
use predsim_core::CommAlgo;

/// The deadlock-detection pass.
pub struct Deadlock;

impl Pass for Deadlock {
    fn name(&self) -> &'static str {
        "deadlock"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::DeadlockCycle]
    }

    fn run(&self, view: &ProgramView<'_>, opts: &LintOptions, report: &mut Report) {
        let severity = match opts.algo {
            CommAlgo::WorstCase => Severity::Error,
            CommAlgo::Standard => Severity::Warning,
        };
        for (i, step) in view.steps.iter().enumerate() {
            // Skip malformed patterns; the well-formedness pass owns those.
            if step.comm.is_empty() || step.comm.procs() != view.procs {
                continue;
            }
            let sccs = step.comm.sccs();
            if sccs.is_empty() {
                continue;
            }
            let cycles = step.comm.cycles();
            for (scc, cycle) in sccs.iter().zip(&cycles) {
                let mut walk: Vec<String> = cycle.iter().map(|p| format!("P{p}")).collect();
                walk.push(format!("P{}", cycle[0]));
                let mut diag = Diagnostic::new(
                    Code::DeadlockCycle,
                    severity,
                    Span::step(i, &step.label),
                    format!(
                        "communication cycle among {} processors {}",
                        scc.len(),
                        match opts.algo {
                            CommAlgo::WorstCase =>
                                "deadlocks the worst-case receive-before-send schedule",
                            CommAlgo::Standard =>
                                "would deadlock the worst-case algorithm (the standard \
                                 algorithm handles it eagerly)",
                        }
                    ),
                )
                .with_note(format!("cycle: {}", walk.join(" -> ")));
                if scc.len() > cycle.len() {
                    diag =
                        diag.with_note(format!("strongly connected group: {}", proc_list(scc, 8)));
                }
                diag = diag.with_note(format!(
                    "the worst-case simulator breaks this with forced transmissions \
                     (forced_sends >= {} for this step)",
                    sccs.len()
                ));
                report.push(diag);
            }
        }
    }
}
