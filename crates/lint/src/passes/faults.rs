//! Fault-starvation pass (`PS0401`): receives that wait on a fail-stopped
//! processor.
//!
//! The fault subsystem models a fail-stop as an outage charged at the
//! start of a step, after which the processor restarts and its sends go
//! out late. Every receive count is therefore *eventually* satisfied — but
//! while the processor is down, every receiver expecting a message from it
//! in that step is starved, and under the worst-case algorithm (receive
//! everything before sending anything) the stall propagates to the
//! receivers' own sends. This pass makes those windows visible before
//! simulating: for each [`FaultWindow`] in [`LintOptions::fault_windows`]
//! it flags the step's messages sourced at the failed processor.
//!
//! Severity is [`Severity::Warning`] by default (the prediction is still
//! sound, just dominated by the outage) and [`Severity::Error`] under
//! [`LintOptions::strict_faults`], for pipelines that want to refuse such
//! plans outright.
//!
//! [`FaultWindow`]: crate::FaultWindow

use crate::passes::proc_list;
use crate::{Code, Diagnostic, LintOptions, Pass, ProgramView, Report, Severity, Span};

/// The fail-stop starvation pass.
pub struct FaultStarvation;

impl Pass for FaultStarvation {
    fn name(&self) -> &'static str {
        "fault-starvation"
    }

    fn codes(&self) -> &'static [Code] {
        &[Code::FailStopStarvation]
    }

    fn run(&self, view: &ProgramView<'_>, opts: &LintOptions, report: &mut Report) {
        let severity = if opts.strict_faults {
            Severity::Error
        } else {
            Severity::Warning
        };
        for window in &opts.fault_windows {
            let Some(step) = view.steps.get(window.step) else {
                continue;
            };
            // Skip malformed patterns; the well-formedness pass owns those.
            if step.comm.is_empty() || step.comm.procs() != view.procs {
                continue;
            }
            let mut receivers: Vec<usize> = step
                .comm
                .network_messages()
                .filter(|m| m.src == window.proc)
                .map(|m| m.dst)
                .collect();
            if receivers.is_empty() {
                continue;
            }
            let waits = receivers.len();
            receivers.sort_unstable();
            receivers.dedup();
            let diag = Diagnostic::new(
                Code::FailStopStarvation,
                severity,
                Span::step(window.step, &step.label).with_proc(window.proc),
                format!(
                    "P{} fail-stops during step {}; {} receive(s) at {} wait on it",
                    window.proc,
                    window.step,
                    waits,
                    proc_list(&receivers, 6),
                ),
            )
            .with_note(
                "those receive counts cannot be satisfied until the processor \
                 restarts; the prediction is dominated by the outage",
            )
            .with_note(
                "under the worst-case algorithm the stall also delays every \
                 send of the starved receivers",
            );
            report.push(diag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultWindow;
    use commsim::CommPattern;
    use predsim_core::Step;

    fn fanout_steps() -> Vec<Step> {
        // Step 0: P0 -> {P1, P2}; step 1: P1 -> P2 only.
        let mut a = CommPattern::new(3);
        a.add(0, 1, 64);
        a.add(0, 2, 64);
        let mut b = CommPattern::new(3);
        b.add(1, 2, 64);
        vec![
            Step::new("fanout").with_comm(a),
            Step::new("relay").with_comm(b),
        ]
    }

    fn run(windows: Vec<FaultWindow>, strict: bool) -> Report {
        let steps = fanout_steps();
        let view = ProgramView {
            procs: 3,
            steps: &steps,
        };
        let mut opts = LintOptions::default().with_fault_windows(windows);
        if strict {
            opts = opts.with_strict_faults();
        }
        let mut report = Report::new();
        FaultStarvation.run(&view, &opts, &mut report);
        report
    }

    #[test]
    fn starved_receives_are_flagged_per_window() {
        let report = run(vec![FaultWindow { proc: 0, step: 0 }], false);
        assert_eq!(report.len(), 1);
        let d = &report.diagnostics()[0];
        assert_eq!(d.code, Code::FailStopStarvation);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("2 receive(s)"), "{}", d.message);
        assert!(d.message.contains("P1, P2"), "{}", d.message);
    }

    #[test]
    fn strict_faults_escalate_to_errors() {
        let report = run(vec![FaultWindow { proc: 0, step: 0 }], true);
        assert!(report.has_errors());
    }

    #[test]
    fn windows_without_dependent_receives_are_silent() {
        // P0 fails in step 1, but nothing receives from P0 there; P2 never
        // sends at all; step index 9 is out of range.
        let report = run(
            vec![
                FaultWindow { proc: 0, step: 1 },
                FaultWindow { proc: 2, step: 0 },
                FaultWindow { proc: 0, step: 9 },
            ],
            false,
        );
        assert!(report.is_empty(), "{}", report.render());
    }

    #[test]
    fn no_windows_means_no_analysis() {
        assert!(run(vec![], true).is_empty());
    }
}
