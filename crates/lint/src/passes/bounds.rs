//! LogGP lower-bound pass (`PS03xx`): serialization analysis straight from
//! the pattern, without simulating.
//!
//! Under LogGP a processor's network port handles one message every `g`;
//! a processor that moves `m = max(sends, recvs)` messages in a step
//! therefore occupies its port for at least `(m-1)·g`, and the last of
//! those messages still needs its own `2o + L` to be delivered. That makes
//!
//! ```text
//! bound(p) = (max(sends_p, recvs_p) - 1)·g + 2o + L      (m > 0)
//! ```
//!
//! a valid lower bound on the span of the step seen from `p`, for any
//! schedule and either simulation algorithm. (The naive `m·g + 2o + L`
//! over-counts: the gap separates consecutive port operations, so `m`
//! messages incur only `m-1` gaps — with a single message the true cost is
//! `2o + L + (k-1)G`, already below `g + 2o + L` on real machines.)
//!
//! The pass uses the per-processor bounds to flag fan-in hotspots
//! (`PS0301`) and per-step communication imbalance (`PS0302`), and — with
//! no machine model needed — whole-program computation imbalance
//! (`PS0303`) and processors that never participate at all (`PS0304`).

use crate::interval::{analyze, Bottleneck, BoundsConfig};
use crate::passes::proc_list;
use crate::{Code, Diagnostic, LintOptions, Pass, ProgramView, Report, Severity, Span};
use commsim::CommPattern;
use loggp::{LogGpParams, Time};

/// Per-processor lower bounds on a communication step's span: zero for
/// processors that move no network message, `(m-1)·g + 2o + L` otherwise.
pub fn proc_bounds(pattern: &CommPattern, params: &LogGpParams) -> Vec<Time> {
    let sends = pattern.send_counts();
    let recvs = pattern.recv_counts();
    sends
        .iter()
        .zip(&recvs)
        .map(|(&s, &r)| {
            let m = s.max(r);
            if m == 0 {
                Time::ZERO
            } else {
                params.gap * (m as u64 - 1) + params.overhead * 2 + params.latency
            }
        })
        .collect()
}

/// Lower bound on the whole step's span: the largest per-processor bound.
/// Any correct LogGP simulation of the step finishes no earlier than this.
pub fn step_lower_bound(pattern: &CommPattern, params: &LogGpParams) -> Time {
    proc_bounds(pattern, params)
        .into_iter()
        .max()
        .unwrap_or(Time::ZERO)
}

/// The LogGP lower-bound pass.
pub struct LogGpBounds;

impl Pass for LogGpBounds {
    fn name(&self) -> &'static str {
        "loggp-bounds"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            Code::FanInHotspot,
            Code::CommImbalance,
            Code::CompImbalance,
            Code::UnusedProcessor,
        ]
    }

    fn run(&self, view: &ProgramView<'_>, opts: &LintOptions, report: &mut Report) {
        if view.procs == 0 {
            return;
        }
        let mut used = vec![false; view.procs];
        // (ratio, step index, label, max proc, max, mean) of the worst
        // imbalanced computation phase, plus how many phases exceeded.
        let mut comp_flagged = 0usize;
        let mut comp_phases = 0usize;
        let mut comp_worst: Option<(f64, usize, usize, Time, f64)> = None;

        for (i, step) in view.steps.iter().enumerate() {
            if step.comp.len() == view.procs {
                comp_phases += 1;
                for (p, t) in step.comp.iter().enumerate() {
                    if !t.is_zero() {
                        used[p] = true;
                    }
                }
                let max = step.comp_max();
                let mean = step.comp_total().as_us_f64() / view.procs as f64;
                if mean > 0.0 {
                    let ratio = max.as_us_f64() / mean;
                    if ratio > opts.imbalance_ratio {
                        comp_flagged += 1;
                        let argmax = step
                            .comp
                            .iter()
                            .enumerate()
                            .max_by_key(|(_, t)| **t)
                            .map(|(p, _)| p)
                            .unwrap_or(0);
                        if comp_worst.is_none_or(|(r, ..)| ratio > r) {
                            comp_worst = Some((ratio, i, argmax, max, mean));
                        }
                    }
                }
            }

            if step.comm.is_empty() || step.comm.procs() != view.procs {
                continue;
            }
            for m in step.comm.messages() {
                used[m.src] = true;
                used[m.dst] = true;
            }

            self.check_fan_in(i, step, view, opts, report);
            if let Some(params) = &opts.params {
                self.check_comm_balance(i, step, view, params, opts, report);
            }
        }

        if comp_flagged > 0 {
            let (ratio, i, p, max, mean) = comp_worst.expect("flagged implies worst");
            report.push(
                Diagnostic::new(
                    Code::CompImbalance,
                    Severity::Info,
                    Span::program(),
                    format!(
                        "{comp_flagged} of {comp_phases} computation phases are imbalanced \
                         beyond {:.1}x",
                        opts.imbalance_ratio
                    ),
                )
                .with_note(format!(
                    "worst: step {i} ('{}'), P{p} computes {max} vs step mean {mean:.3}us \
                     ({ratio:.1}x)",
                    view.steps[i].label
                ))
                .with_note("the step finishes with its slowest processor; the others idle"),
            );
        }

        let unused: Vec<usize> = (0..view.procs).filter(|&p| !used[p]).collect();
        if !unused.is_empty() && view.procs > 1 && !view.steps.is_empty() {
            report.push(
                Diagnostic::new(
                    Code::UnusedProcessor,
                    Severity::Warning,
                    Span::program(),
                    format!(
                        "{} of {} processors never compute nor communicate: {}",
                        unused.len(),
                        view.procs,
                        proc_list(&unused, 8)
                    ),
                )
                .with_note("they only add to P in the model; consider a smaller machine"),
            );
        }
    }
}

impl LogGpBounds {
    fn check_fan_in(
        &self,
        i: usize,
        step: &predsim_core::Step,
        view: &ProgramView<'_>,
        opts: &LintOptions,
        report: &mut Report,
    ) {
        let mut senders: Vec<Vec<usize>> = vec![Vec::new(); view.procs];
        for m in step.comm.network_messages() {
            if !senders[m.dst].contains(&m.src) {
                senders[m.dst].push(m.src);
            }
        }
        // Sort once at emit time: the rendered sender list (and therefore
        // the JSON output) must not depend on message order within the
        // pattern.
        for list in &mut senders {
            list.sort_unstable();
        }
        let recvs = step.comm.recv_counts();
        for (dst, from) in senders.iter().enumerate() {
            if from.len() < opts.fanin_threshold {
                continue;
            }
            let mut diag = Diagnostic::new(
                Code::FanInHotspot,
                Severity::Warning,
                Span::step(i, &step.label).with_proc(dst),
                format!(
                    "P{dst} receives from {} distinct senders in one step",
                    from.len()
                ),
            )
            .with_note(format!("senders: {}", proc_list(from, 8)));
            if let Some(params) = &opts.params {
                let r = recvs[dst] as u64;
                let floor = params.gap * (r - 1) + params.overhead * 2 + params.latency;
                diag = diag.with_note(format!(
                    "receiving its {r} messages serializes P{dst} for at least {floor}"
                ));
            }
            report.push(diag);
        }
    }

    fn check_comm_balance(
        &self,
        i: usize,
        step: &predsim_core::Step,
        view: &ProgramView<'_>,
        params: &LogGpParams,
        opts: &LintOptions,
        report: &mut Report,
    ) {
        let bounds = proc_bounds(&step.comm, params);
        let active: Vec<(usize, Time)> = bounds
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_zero())
            .map(|(p, &b)| (p, b))
            .collect();
        if active.len() < 2 {
            return;
        }
        let (max_proc, max) = *active
            .iter()
            .max_by_key(|(_, b)| *b)
            .expect("active is non-empty");
        let mean = active.iter().map(|(_, b)| b.as_us_f64()).sum::<f64>() / active.len() as f64;
        let ratio = max.as_us_f64() / mean;
        if ratio > opts.imbalance_ratio {
            report.push(
                Diagnostic::new(
                    Code::CommImbalance,
                    Severity::Warning,
                    Span::step(i, &step.label).with_proc(max_proc),
                    format!(
                        "communication load is imbalanced: P{max_proc}'s serialization bound \
                         {max} is {ratio:.1}x the active-processor mean {mean:.3}us"
                    ),
                )
                .with_note(format!(
                    "{} of {} processors move messages in this step",
                    active.len(),
                    view.procs
                )),
            );
        }
    }
}

/// The cost-interval pass (`PS06xx`): performance lints derived from the
/// abstract interpreter in [`crate::interval`]. Needs machine parameters;
/// without [`LintOptions::params`] it stays silent.
pub struct CostIntervals;

impl Pass for CostIntervals {
    fn name(&self) -> &'static str {
        "cost-intervals"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            Code::StaticImbalance,
            Code::ContentionHotspot,
            Code::BandwidthDominated,
            Code::DivergenceRisk,
        ]
    }

    fn run(&self, view: &ProgramView<'_>, opts: &LintOptions, report: &mut Report) {
        let Some(params) = opts.params else {
            return;
        };
        let Some(bounds) = analyze(view, &BoundsConfig::new(params)) else {
            return;
        };

        // PS0601: per-processor finish ceilings, max/min over processors
        // whose ceiling moved at all.
        let active: Vec<(usize, Time)> = bounds
            .per_proc
            .iter()
            .enumerate()
            .filter(|(_, (_, hi))| !hi.is_zero())
            .map(|(p, &(_, hi))| (p, hi))
            .collect();
        if active.len() >= 2 {
            let (max_proc, max) = *active.iter().max_by_key(|(_, h)| *h).expect("non-empty");
            let (min_proc, min) = *active.iter().min_by_key(|(_, h)| *h).expect("non-empty");
            if !min.is_zero() {
                let ratio = max.as_us_f64() / min.as_us_f64();
                if ratio > opts.imbalance_ratio {
                    report.push(
                        Diagnostic::new(
                            Code::StaticImbalance,
                            Severity::Warning,
                            Span::program().with_proc(max_proc),
                            format!(
                                "static finish ceilings are imbalanced: P{max_proc} ends by \
                                 {max}, P{min_proc} by {min} ({ratio:.1}x)"
                            ),
                        )
                        .with_note(
                            "computed without simulating; the program ends with its slowest \
                             processor",
                        ),
                    );
                }
            }
        }

        // PS0602/PS0603: per-step bottleneck attribution, aggregated to
        // one diagnostic per code (the worst step is named).
        let recvs_at = |step: usize, proc: usize| -> usize {
            let comm = &view.steps[step].comm;
            if comm.is_empty() || comm.procs() != view.procs {
                0
            } else {
                comm.recv_counts()[proc]
            }
        };
        let mut gap_steps = 0usize;
        let mut gap_worst: Option<&crate::interval::StepBounds> = None;
        let mut wire_steps = 0usize;
        let mut wire_worst: Option<&crate::interval::StepBounds> = None;
        for s in &bounds.steps {
            match s.class {
                Bottleneck::Gap if recvs_at(s.step, s.proc) >= opts.fanin_threshold => {
                    gap_steps += 1;
                    if gap_worst.is_none_or(|w| s.breakdown.gap > w.breakdown.gap) {
                        gap_worst = Some(s);
                    }
                }
                Bottleneck::Bandwidth => {
                    wire_steps += 1;
                    if wire_worst.is_none_or(|w| s.breakdown.wire > w.breakdown.wire) {
                        wire_worst = Some(s);
                    }
                }
                _ => {}
            }
        }
        if let Some(w) = gap_worst {
            report.push(
                Diagnostic::new(
                    Code::ContentionHotspot,
                    Severity::Warning,
                    Span::step(w.step, &w.label).with_proc(w.proc),
                    format!(
                        "{gap_steps} step(s) are gap-serialized at a fan-in hotspot; worst: \
                         P{} queues {} receive(s) worth {} of gap in its ceiling",
                        w.proc,
                        recvs_at(w.step, w.proc),
                        w.breakdown.gap
                    ),
                )
                .with_note("the port admits one message every g; senders wait in line")
                .with_note("consider a tree-shaped exchange or moving endpoints off the hot proc"),
            );
        }
        if let Some(w) = wire_worst {
            report.push(
                Diagnostic::new(
                    Code::BandwidthDominated,
                    Severity::Info,
                    Span::step(w.step, &w.label).with_proc(w.proc),
                    format!(
                        "{wire_steps} step(s) are bandwidth-bound (G dominates); worst: \
                         P{}'s ceiling carries {} of wire time",
                        w.proc, w.breakdown.wire
                    ),
                )
                .with_note("smaller messages (e.g. a smaller block size) shrink G·(k-1) directly")
                .with_note("predsim ge-sweep --prefilter explores block sizes cheaply"),
            );
        }

        // PS0604: uselessly wide bracket.
        if !bounds.lo.is_zero() {
            let spread = bounds.hi.as_us_f64() / bounds.lo.as_us_f64();
            if spread > opts.divergence_ratio {
                report.push(
                    Diagnostic::new(
                        Code::DivergenceRisk,
                        Severity::Warning,
                        Span::program(),
                        format!(
                            "static interval [{}, {}] spans {spread:.1}x; the std/wc bracket \
                             may be uninformative",
                            bounds.lo, bounds.hi
                        ),
                    )
                    .with_note(
                        "wide brackets come from nondeterministic receive order (cycles, deep \
                         fan-in)",
                    ),
                );
            }
        }
    }
}
