//! The built-in analysis passes.

pub mod bounds;
pub mod deadlock;
pub mod faults;
pub mod wellformed;

pub use bounds::LogGpBounds;
pub use deadlock::Deadlock;
pub use faults::FaultStarvation;
pub use wellformed::WellFormed;

/// Format a processor list as `P0, P3, P7`, eliding after `limit` entries.
pub(crate) fn proc_list(procs: &[usize], limit: usize) -> String {
    let mut parts: Vec<String> = procs.iter().take(limit).map(|p| format!("P{p}")).collect();
    if procs.len() > limit {
        parts.push(format!("… ({} total)", procs.len()));
    }
    parts.join(", ")
}
