//! Well-formedness pass (`PS01xx`): structural defects and oddities that
//! need no machine model.
//!
//! The error-severity checks mirror what [`predsim_core::Program::try_push`]
//! rejects, so linting a raw step slice catches everything program
//! construction would have panicked about. The info-severity checks flag
//! legal-but-suspicious constructs (self-messages, zero-byte messages,
//! empty steps); those occur deliberately in real traces — Cannon's
//! skew/rotate phases self-send on the diagonal — so they are aggregated to
//! one diagnostic per step instead of one per message.

use crate::{Code, Diagnostic, LintOptions, Pass, ProgramView, Report, Severity, Span};

/// The well-formedness pass.
pub struct WellFormed;

impl Pass for WellFormed {
    fn name(&self) -> &'static str {
        "wellformed"
    }

    fn codes(&self) -> &'static [Code] {
        &[
            Code::ZeroProcessors,
            Code::CompArityMismatch,
            Code::PatternProcsMismatch,
            Code::ProcOutOfRange,
            Code::SelfMessages,
            Code::ZeroByteMessages,
            Code::EmptyStep,
        ]
    }

    fn run(&self, view: &ProgramView<'_>, _opts: &LintOptions, report: &mut Report) {
        if view.procs == 0 {
            report.push(Diagnostic::new(
                Code::ZeroProcessors,
                Severity::Error,
                Span::program(),
                "the program declares zero processors",
            ));
            return; // every per-step check below would be vacuous noise
        }

        for (i, step) in view.steps.iter().enumerate() {
            let span = || Span::step(i, &step.label);

            if !step.comp.is_empty() && step.comp.len() != view.procs {
                report.push(Diagnostic::new(
                    Code::CompArityMismatch,
                    Severity::Error,
                    span(),
                    format!(
                        "computation vector has {} entries for {} processors",
                        step.comp.len(),
                        view.procs
                    ),
                ));
            }

            if !step.comm.is_empty() && step.comm.procs() != view.procs {
                report.push(Diagnostic::new(
                    Code::PatternProcsMismatch,
                    Severity::Error,
                    span(),
                    format!(
                        "communication pattern spans {} processors, program has {}",
                        step.comm.procs(),
                        view.procs
                    ),
                ));
            }

            let mut selfs: Vec<usize> = Vec::new();
            let mut zeros: Vec<usize> = Vec::new();
            for (id, m) in step.comm.messages().iter().enumerate() {
                for (what, p) in [("source", m.src), ("destination", m.dst)] {
                    if p >= view.procs {
                        report.push(Diagnostic::new(
                            Code::ProcOutOfRange,
                            Severity::Error,
                            span().with_msg(id),
                            format!(
                                "message {what} P{p} is outside the program's {} processors",
                                view.procs
                            ),
                        ));
                    }
                }
                if m.is_self_message() {
                    selfs.push(id);
                } else if m.bytes == 0 {
                    zeros.push(id);
                }
            }

            if !selfs.is_empty() {
                report.push(
                    Diagnostic::new(
                        Code::SelfMessages,
                        Severity::Info,
                        span(),
                        format!("{} self-message(s) (src == dst)", selfs.len()),
                    )
                    .with_note("the LogGP predictor ignores them; the machine emulator charges a local copy")
                    .with_note(format!("message ids: {}", id_list(&selfs, 8))),
                );
            }
            if !zeros.is_empty() {
                report.push(
                    Diagnostic::new(
                        Code::ZeroByteMessages,
                        Severity::Info,
                        span(),
                        format!("{} zero-byte network message(s)", zeros.len()),
                    )
                    .with_note(
                        "legal (pure control messages still cost 2o + L), but often an accident",
                    )
                    .with_note(format!("message ids: {}", id_list(&zeros, 8))),
                );
            }
            if step.is_empty() {
                report.push(Diagnostic::new(
                    Code::EmptyStep,
                    Severity::Info,
                    span(),
                    "step neither computes nor communicates",
                ));
            }
        }
    }
}

fn id_list(ids: &[usize], limit: usize) -> String {
    let mut parts: Vec<String> = ids.iter().take(limit).map(|i| i.to_string()).collect();
    if ids.len() > limit {
        parts.push(format!("… ({} total)", ids.len()));
    }
    parts.join(", ")
}
