//! Strict command-line flag parsing, shared by every `predsim`
//! subcommand.
//!
//! The workspace carries no CLI dependency, so parsing is hand-rolled —
//! and deliberately strict: unknown flags, duplicate flags, valued flags
//! without a value, and values handed to switches are all hard errors.
//! A typo can never be silently ignored.
//!
//! ```
//! use predsim::cli::{switch, valued, Args};
//!
//! let spec = [valued("machine"), switch("worst-case")];
//! let raw: Vec<String> = ["--machine", "paragon", "--worst-case", "ge:960,32,diagonal,8"]
//!     .iter()
//!     .map(|s| s.to_string())
//!     .collect();
//! let args = Args::parse(&raw, &spec).unwrap();
//! assert_eq!(args.value("machine"), Some("paragon"));
//! assert!(args.flag("worst-case"));
//! assert_eq!(args.positional, ["ge:960,32,diagonal,8"]);
//! assert!(Args::parse(&raw, &[valued("machine")]).is_err(), "unknown flag");
//! ```

use loggp::{hetero, presets, LogGpParams, MachineSpec};

/// A flag a command accepts: its name and whether it takes a value.
#[derive(Clone, Copy)]
pub struct FlagSpec {
    /// Flag name, without the leading `--`.
    pub name: &'static str,
    /// Whether the flag consumes a value (`--name VALUE` or
    /// `--name=VALUE`).
    pub takes_value: bool,
}

/// A boolean flag (`--worst-case`).
pub const fn switch(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

/// A flag that carries a value (`--machine NAME`).
pub const fn valued(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

/// Parsed arguments: the positional operands plus the accepted flags.
pub struct Args {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse `raw` against the command's accepted flags. Unknown flags,
    /// duplicate flags, valued flags without a value, and values given to
    /// switches are all rejected.
    pub fn parse(raw: &[String], spec: &[FlagSpec]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let Some(body) = a.strip_prefix("--") else {
                positional.push(a.clone());
                continue;
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            let Some(fs) = spec.iter().find(|f| f.name == name) else {
                return Err(format!(
                    "unknown flag '--{name}' (run 'predsim help' for usage)"
                ));
            };
            if flags.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate flag '--{name}'"));
            }
            let value = if fs.takes_value {
                match inline {
                    Some(v) => Some(v),
                    None => Some(
                        it.next()
                            .ok_or_else(|| format!("flag '--{name}' needs a value"))?
                            .clone(),
                    ),
                }
            } else {
                if inline.is_some() {
                    return Err(format!("flag '--{name}' takes no value"));
                }
                None
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args { positional, flags })
    }

    /// Whether the flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The flag's value, when it was given one.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// The `--jobs` worker count: defaults to one per CPU, must be ≥ 1.
    pub fn jobs(&self) -> Result<usize, String> {
        match self.value("jobs") {
            None => Ok(0), // engine resolves 0 to the CPU count
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                Ok(_) => Err("--jobs must be at least 1".into()),
                Err(e) => Err(format!("bad --jobs: {e}")),
            },
        }
    }
}

/// Resolve a machine-preset name (as listed by `predsim presets`) to its
/// LogGP parameters for `procs` processors.
///
/// Besides the built-in names, `@FILE:NAME` loads the preset file `FILE`
/// (as written by `predsim calibrate --out`) into the
/// [`loggp::registry`] and resolves `NAME` from it; names registered
/// earlier in the process (e.g. by `serve --presets`) also resolve here
/// through [`presets::by_name`]'s registry fallback.
pub fn machine(name: &str, procs: usize) -> Result<LogGpParams, String> {
    if let Some(rest) = name.strip_prefix('@') {
        let (path, preset) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("bad machine reference '{name}': expected @FILE:NAME"))?;
        loggp::registry::register_file(path)
            .map_err(|e| format!("loading presets from {path}: {e}"))?;
        return loggp::registry::registered(preset, procs)
            .ok_or_else(|| format!("preset file {path} has no preset named '{preset}'"));
    }
    presets::by_name(name, procs).ok_or_else(|| unknown_machine(name))
}

fn unknown_machine(name: &str) -> String {
    let mut known = presets::SHORT_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
    known.extend(loggp::registry::registered_names());
    format!(
        "unknown machine '{name}' (expected one of: {}, or @FILE:NAME)",
        known.join(", ")
    )
}

/// Resolve a machine name to a possibly heterogeneous [`MachineSpec`]
/// describing `procs` processors.
///
/// Accepts everything [`machine`] does — built-in presets and registered
/// names become uniform specs — but `@FILE:NAME` additionally preserves
/// the file's per-processor speed factors and per-link overrides when
/// the preset file describes a heterogeneous machine. A heterogeneous
/// spec can only shrink to `procs`, never extend past the processors it
/// describes.
pub fn machine_spec(name: &str, procs: usize) -> Result<MachineSpec, String> {
    if let Some(rest) = name.strip_prefix('@') {
        let (path, preset) = rest
            .rsplit_once(':')
            .ok_or_else(|| format!("bad machine reference '{name}': expected @FILE:NAME"))?;
        loggp::registry::register_file(path)
            .map_err(|e| format!("loading presets from {path}: {e}"))?;
        let spec = loggp::registry::registered_spec(preset)
            .ok_or_else(|| format!("preset file {path} has no preset named '{preset}'"))?;
        return spec
            .retarget(procs)
            .map_err(|e| format!("machine '{preset}': {e}"));
    }
    match hetero::resolve(name, procs) {
        Ok(spec) => Ok(spec),
        Err(e) if e.starts_with("unknown machine") => Err(unknown_machine(name)),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_switches_values_and_positionals() {
        let spec = [valued("machine"), switch("worst-case"), valued("jobs")];
        let args = Args::parse(
            &raw(&[
                "a.trace",
                "--machine=ideal",
                "--worst-case",
                "--jobs",
                "4",
                "b.trace",
            ]),
            &spec,
        )
        .unwrap();
        assert_eq!(args.positional, ["a.trace", "b.trace"]);
        assert_eq!(args.value("machine"), Some("ideal"));
        assert!(args.flag("worst-case"));
        assert_eq!(args.jobs().unwrap(), 4);
    }

    #[test]
    fn rejects_misuse() {
        let spec = [valued("machine"), switch("worst-case")];
        for (bad, why) in [
            (raw(&["--bogus"]), "unknown flag"),
            (raw(&["--machine", "x", "--machine", "y"]), "duplicate"),
            (raw(&["--machine"]), "missing value"),
            (raw(&["--worst-case=yes"]), "value on a switch"),
        ] {
            assert!(Args::parse(&bad, &spec).is_err(), "{why}");
        }
        let args = Args::parse(&raw(&["--jobs", "0"]), &[valued("jobs")]).unwrap();
        assert!(args.jobs().is_err(), "--jobs 0 is rejected");
    }

    #[test]
    fn machine_names_resolve_through_the_shared_preset_table() {
        assert_eq!(machine("meiko", 8).unwrap(), presets::meiko_cs2(8));
        assert_eq!(machine("ideal", 4).unwrap(), presets::ideal(4));
        let err = machine("cray", 8).unwrap_err();
        assert!(err.contains("meiko"), "the error names the options: {err}");
    }

    #[test]
    fn machine_file_references_load_the_registry() {
        let dir = std::env::temp_dir().join("predsim-cli-machine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("presets.json");
        let fitted = presets::meiko_cs2(4).with_latency(loggp::Time::from_us(9.0));
        loggp::registry::save_file(
            path.to_str().unwrap(),
            &[loggp::registry::NamedPreset {
                name: "cli-test-fitted".into(),
                params: fitted,
            }],
        )
        .unwrap();

        let spec = format!("@{}:cli-test-fitted", path.display());
        assert_eq!(machine(&spec, 8).unwrap(), fitted.with_procs(8));
        // Once loaded, the bare name resolves through the registry too.
        assert_eq!(machine("cli-test-fitted", 8).unwrap(), fitted.with_procs(8));

        assert!(machine("@no-colon", 4).is_err(), "missing :NAME");
        let err = machine(&format!("@{}:absent", path.display()), 4).unwrap_err();
        assert!(err.contains("absent"), "{err}");
    }

    #[test]
    fn machine_spec_resolves_heterogeneous_preset_files() {
        // Built-ins resolve as uniform specs.
        let spec = machine_spec("meiko", 8).unwrap();
        assert!(spec.is_uniform());
        assert_eq!(spec.base, presets::meiko_cs2(8));
        assert!(machine_spec("cray", 8).is_err());

        // A heterogeneous preset file keeps its speed factors.
        let dir = std::env::temp_dir().join("predsim-cli-machine-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hetero.json");
        let het = MachineSpec {
            base: presets::meiko_cs2(4),
            speed_permille: vec![2000, 1000, 1000, 1000],
            links: Vec::new(),
        };
        loggp::registry::save_file_specs(
            path.to_str().unwrap(),
            &[loggp::registry::NamedSpec {
                name: "cli-test-hetero".into(),
                spec: het.clone(),
            }],
        )
        .unwrap();

        let reference = format!("@{}:cli-test-hetero", path.display());
        assert_eq!(machine_spec(&reference, 4).unwrap(), het);
        // Shrinking keeps the described prefix; extending is refused.
        let small = machine_spec(&reference, 2).unwrap();
        assert_eq!(small.speed_permille, vec![2000, 1000]);
        let err = machine_spec(&reference, 8).unwrap_err();
        assert!(err.contains("cannot extend"), "{err}");
    }
}
