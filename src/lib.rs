//! # predsim — Predicting the Running Times of Parallel Programs by Simulation
//!
//! A from-scratch Rust reproduction of Rugina & Schauser (IPPS 1998): a
//! trace-driven LogGP simulator that predicts the running time of
//! oblivious, block-structured parallel programs, evaluated on blocked
//! parallel Gaussian elimination (plus Cannon's algorithm and a Jacobi
//! stencil as further applications of the same program class).
//!
//! This crate is a facade that re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`loggp`] | the LogGP model: [`loggp::Time`], parameters, extended gap rule, machine presets |
//! | [`commsim`] | the communication-step simulators (standard + worst-case), patterns, Gantt, validator |
//! | [`blockops`] | dense block linear algebra (LU, triangular ops, GEMM) and op cost models |
//! | [`predsim_core`] | program traces, the whole-program predictor, layouts, optimal-parameter search |
//! | [`machine`] | the substitute testbed: emulator with cache/jitter/contention/local-copy effects |
//! | [`gauss`] | blocked Gaussian elimination: trace generator + real threaded execution |
//! | [`cannon`] | Cannon's matrix multiplication: trace generator + real execution |
//! | [`stencil`] | Jacobi stencil: trace generator + real execution |
//! | [`apsp`] | blocked Floyd–Warshall all-pairs shortest paths (the class's graph member) |
//! | [`predsim_dag`] | task-DAG workloads: schedulers, lowering to step programs, speedup sweeps |
//! | [`predsim_engine`] | parallel batch-prediction engine with step-pattern memoization |
//! | [`predsim_faults`] | deterministic fault injection: message drop/retransmission, slowdown, fail-stop |
//! | [`predsim_lint`] | static program analyzer: deadlock, well-formedness and LogGP-bound lints |
//! | [`predsim_obs`] | observability: structured trace events/sinks, metrics registry, profiling |
//! | [`predsim_calib`] | closed-loop calibration: measured runs → fitted LogGP presets → bracketing report |
//! | [`predsim_serve`] | HTTP prediction service: admission control, graceful drain, live metrics |
//!
//! The facade adds one module of its own: [`cli`], the strict flag
//! parser behind the `predsim` binary.
//!
//! ## Quickstart
//!
//! ```
//! use predsim::prelude::*;
//!
//! // Predict blocked Gaussian elimination: 240x240 matrix, 24x24 blocks,
//! // diagonal layout on 8 processors of a Meiko CS-2.
//! let layout = Diagonal::new(8);
//! let trace = gauss::generate(240, 24, &layout, &AnalyticCost::paper_default());
//! let cfg = SimConfig::new(presets::meiko_cs2(8));
//! let prediction = simulate_program(&trace.program, &SimOptions::new(cfg));
//! assert!(prediction.total > Time::ZERO);
//! println!("predicted running time: {}", prediction.total);
//! ```

#![forbid(unsafe_code)]

pub use apsp;
pub use blockops;
pub use cannon;
pub use commsim;
pub use gauss;
pub use loggp;
pub use machine;
pub use predsim_calib;
pub use predsim_core;
pub use predsim_dag;
pub use predsim_engine;
pub use predsim_faults;
pub use predsim_lint;
pub use predsim_obs;
pub use predsim_serve;
pub use stencil;

pub mod cli;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use blockops::{AnalyticCost, CostModel, Matrix, MeasuredCost, OpClass};
    pub use commsim::{patterns, standard, worstcase, CommPattern, SimConfig, Timeline};
    pub use gauss;
    pub use loggp::{presets, LogGpParams, MachineSpec, Time};
    pub use machine::{emulate, EmulatorConfig};
    pub use predsim_calib::{calibrate, measure, FitConfig, FitReport, MeasureConfig, MeasuredSet};
    pub use predsim_core::{
        simulate_program, BlockCyclic2D, ColCyclic, Diagonal, Layout, Prediction, Program,
        RowCyclic, SimOptions, Step,
    };
    pub use predsim_dag::{SchedulerKind, TaskDag};
    pub use predsim_engine::{
        Engine, EngineConfig, EngineObs, Grid, JobSource, JobSpec, LayoutSpec,
    };
    pub use predsim_faults::{simulate_faulted, FaultPlan, FaultSpec};
    pub use predsim_lint::{check_program, LintOptions, Report};
    pub use predsim_obs::{HorizonProfile, JsonlSink, MemorySink, Registry, TraceEvent, TraceSink};
    pub use predsim_serve::{ServeConfig, Server, ServerHandle};
}
