//! `predsim` — the command-line front end.
//!
//! ```text
//! predsim presets                      list machine presets
//! predsim simulate TRACE [options]     predict a text-format trace
//! predsim check SOURCE... [options]    static analysis: lint without simulating
//! predsim gantt TRACE --step N         ASCII/SVG Gantt of one step
//! predsim trace SOURCE [options]       simulate with event tracing + horizon
//! predsim ge-sweep [options]           block-size sweep for blocked GE
//! predsim fit CSV                      fit LogGP params from ping data
//! ```
//!
//! Argument parsing is deliberately hand-rolled (the workspace carries no
//! CLI dependency); see `predsim help` for the full usage text.

use predsim::predsim_core::report::{secs, Table};
use predsim::predsim_core::{textfmt, CommAlgo};
use predsim::predsim_engine::{
    best_by_total, Engine, EngineConfig, JobSource, JobSpec, LayoutSpec,
};
use predsim::predsim_lint::{check_program, json, LintOptions, Severity};
use predsim::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
predsim — trace-driven LogGP running-time prediction (Rugina & Schauser, IPPS'98)

USAGE:
  predsim presets
      List the built-in machine presets.

  predsim simulate TRACE [--machine NAME] [--worst-case] [--barrier] [--overlap]
                         [--classic-gap]
      Parse a text-format trace (see predsim_core::textfmt) and predict it.

  predsim check SOURCE... [--machine NAME] [--worst-case] [--json] [--strict]
      Statically analyze programs without simulating: well-formedness
      (PS01xx), deadlock cycles (PS0201, an error under --worst-case),
      and LogGP lower-bound findings (PS03xx) such as fan-in hotspots and
      load imbalance. SOURCEs are as for 'batch'. Exits nonzero if any
      source has error-severity diagnostics (with --strict: warnings
      too); --json emits the machine-readable report instead of text.

  predsim gantt TRACE --step N [--machine NAME] [--svg FILE] [--worst-case]
      Render the send/receive schedule of step N (1-based) of the trace.

  predsim trace SOURCE [--machine NAME] [--worst-case] [--barrier] [--overlap]
                [--classic-gap] [--trace-out FILE] [--metrics-out FILE]
      Simulate one source (a trace file or a generator spec, as for
      'batch') with event tracing on. Emits one strict-JSON object per
      line (send/recv/gap_stall/front events, virtual-time picosecond
      stamps) to --trace-out, renders the virtual-time horizon profile
      (per-step min/mean/max processor fronts), and writes
      Prometheus-format metrics to --metrics-out. Tracing never changes
      the prediction.

  predsim ge-sweep [--n N] [--procs P] [--machine NAME] [--layout L] [--blocks A,B,...]
                   [--jobs N] [--no-memo] [--metrics-out FILE]
      Sweep block sizes for blocked Gaussian elimination and report the
      predicted optimum (layouts: diagonal, row, col; default n=960 P=8).
      --jobs runs the sweep on N worker threads (results are identical);
      --metrics-out writes the engine's metrics in Prometheus format.

  predsim batch SOURCE... [--machine NAME[,NAME...]] [--jobs N] [--no-memo]
                [--worst-case] [--barrier] [--overlap] [--classic-gap]
                [--metrics-out FILE]
      Predict every source on every machine with the batch engine. A SOURCE
      is a trace file path or a generator spec:
        ge:N,BLOCK,LAYOUT,PROCS      blocked Gaussian elimination
        cannon:N,Q                   Cannon's algorithm on a QxQ grid
        stencil:N,PROCS,ITERS        Jacobi stencil (500 ps/flop)
        apsp:N,BLOCK,LAYOUT,PROCS    blocked Floyd-Warshall shortest paths
      Jobs are pre-validated with the analyzer (invalid specs are
      rejected with diagnostics). Prints one row per job plus memo-cache
      statistics; --metrics-out writes the engine's metrics in
      Prometheus format.

  predsim fit FILE
      Least-squares fit of LogGP G and 2o+L from 'bytes,microseconds'
      lines (comments with '#').

Machines: meiko (default), paragon, myrinet, ethernet, ideal.
";

fn machine(name: &str, procs: usize) -> Result<loggp::LogGpParams, String> {
    Ok(match name {
        "meiko" => presets::meiko_cs2(procs),
        "paragon" => presets::intel_paragon(procs),
        "myrinet" => presets::myrinet_cluster(procs),
        "ethernet" => presets::ethernet_cluster(procs),
        "ideal" => presets::ideal(procs),
        other => return Err(format!("unknown machine '{other}'")),
    })
}

/// A flag a command accepts: its name and whether it takes a value.
#[derive(Clone, Copy)]
struct FlagSpec {
    name: &'static str,
    takes_value: bool,
}

const fn switch(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

const fn valued(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

/// Flags shared by every command that builds [`SimOptions`].
const SIM_FLAGS: [FlagSpec; 5] = [
    valued("machine"),
    switch("worst-case"),
    switch("barrier"),
    switch("overlap"),
    switch("classic-gap"),
];

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parse `raw` against the command's accepted flags. Unknown flags,
    /// duplicate flags, valued flags without a value, and values given to
    /// switches are all rejected.
    fn parse(raw: &[String], spec: &[FlagSpec]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let Some(body) = a.strip_prefix("--") else {
                positional.push(a.clone());
                continue;
            };
            let (name, inline) = match body.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (body, None),
            };
            let Some(fs) = spec.iter().find(|f| f.name == name) else {
                return Err(format!(
                    "unknown flag '--{name}' (run 'predsim help' for usage)"
                ));
            };
            if flags.iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate flag '--{name}'"));
            }
            let value = if fs.takes_value {
                match inline {
                    Some(v) => Some(v),
                    None => Some(
                        it.next()
                            .ok_or_else(|| format!("flag '--{name}' needs a value"))?
                            .clone(),
                    ),
                }
            } else {
                if inline.is_some() {
                    return Err(format!("flag '--{name}' takes no value"));
                }
                None
            };
            flags.push((name.to_string(), value));
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// The `--jobs` worker count: defaults to one per CPU, must be ≥ 1.
    fn jobs(&self) -> Result<usize, String> {
        match self.value("jobs") {
            None => Ok(0), // engine resolves 0 to the CPU count
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                Ok(_) => Err("--jobs must be at least 1".into()),
                Err(e) => Err(format!("bad --jobs: {e}")),
            },
        }
    }
}

fn cmd_presets() -> Result<(), String> {
    let mut t = Table::new([
        "name",
        "L (us)",
        "o (us)",
        "g (us)",
        "G (us/B)",
        "bandwidth",
    ]);
    for preset in presets::all(8) {
        let p = preset.params;
        let bw = p.bandwidth_bytes_per_sec();
        t.row([
            preset.name.to_string(),
            format!("{:.2}", p.latency.as_us_f64()),
            format!("{:.2}", p.overhead.as_us_f64()),
            format!("{:.2}", p.gap.as_us_f64()),
            format!("{:.3}", p.gap_per_byte.as_us_f64()),
            if bw.is_finite() {
                format!("{:.1} MB/s", bw / 1e6)
            } else {
                "inf".into()
            },
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn load_trace(path: &str) -> Result<predsim::predsim_core::Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    textfmt::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn sim_options(args: &Args, procs: usize) -> Result<SimOptions, String> {
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    let mut opts = SimOptions::new(SimConfig::new(params));
    if args.flag("worst-case") {
        opts = opts.worst_case();
    }
    if args.flag("barrier") {
        opts = opts.with_barrier();
    }
    if args.flag("overlap") {
        opts = opts.with_overlap();
    }
    if args.flag("classic-gap") {
        opts.cfg = opts.cfg.with_classic_gap_rule();
    }
    Ok(opts)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("simulate: missing TRACE file")?;
    let prog = load_trace(path)?;
    let opts = sim_options(args, prog.procs())?;
    let pred = simulate_program(&prog, &opts);
    println!("machine: {}", opts.cfg.params);
    println!("{}", pred.summary());
    println!("\n{}", pred.per_proc_table());
    let slow = pred.slowest_comm_steps(5);
    if !slow.is_empty() {
        println!("slowest communication steps:");
        for (label, span) in slow {
            println!("  {label}: {span}");
        }
    }
    Ok(())
}

fn cmd_gantt(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("gantt: missing TRACE file")?;
    let step_no: usize = args
        .value("step")
        .ok_or("gantt: missing --step N")?
        .parse()
        .map_err(|e| format!("bad --step: {e}"))?;
    let prog = load_trace(path)?;
    let step = prog
        .steps()
        .get(step_no.checked_sub(1).ok_or("--step is 1-based")?)
        .ok_or_else(|| format!("trace has {} steps", prog.len()))?;
    if step.comm.is_empty() {
        return Err(format!(
            "step {step_no} ('{}') has no communication",
            step.label
        ));
    }
    let opts = sim_options(args, prog.procs())?;
    let result = if args.flag("worst-case") {
        worstcase::simulate(&step.comm, &opts.cfg)
    } else {
        standard::simulate(&step.comm, &opts.cfg)
    };
    if let Some(file) = args.value("svg") {
        std::fs::write(file, commsim::gantt::render_svg(&result.timeline, 800))
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote {file}");
    } else {
        print!("{}", commsim::gantt::render(&result.timeline, 100));
    }
    Ok(())
}

/// Write the engine's Prometheus metrics (including the `engine_cache_*`
/// gauges) to `file` when `--metrics-out` was given.
fn write_engine_metrics(args: &Args, engine: &Engine) -> Result<(), String> {
    if let Some(file) = args.value("metrics-out") {
        std::fs::write(file, engine.metrics_snapshot().to_prometheus())
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote metrics to {file}");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let raw = args
        .positional
        .first()
        .ok_or("trace: missing SOURCE (a trace file or a ge:/cannon:/stencil:/apsp: spec)")?;
    let (name, source) = parse_source(raw)?;
    source
        .validate()
        .map_err(|why| format!("source '{name}': {why}"))?;
    let program = source.build();
    let opts = sim_options(args, program.procs())?;

    let sink = MemorySink::new();
    let pred = predsim::predsim_core::simulate_program_traced(&program, &opts, &sink);
    let events = sink.events();

    if let Some(file) = args.value("trace-out") {
        std::fs::write(file, sink.to_jsonl()).map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote {} events to {file}", events.len());
    }

    println!("machine: {}", opts.cfg.params);
    println!("{}", pred.summary());
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    println!(
        "events: {} send, {} recv, {} gap_stall, {} front",
        count("send"),
        count("recv"),
        count("gap_stall"),
        count("front")
    );

    let profile = HorizonProfile::from_events(&events);
    println!();
    print!("{}", profile.render(60));
    if let Some(step) = profile.roughest_step() {
        println!(
            "roughest step: {} (front spread {})",
            step,
            profile.max_spread()
        );
    }

    if let Some(file) = args.value("metrics-out") {
        let registry = Registry::new();
        for kind in ["send", "recv", "gap_stall", "front"] {
            registry
                .counter_with(
                    "predsim_trace_events_total",
                    &[("ev", kind)],
                    "trace events emitted, by kind",
                )
                .add(count(kind) as u64);
        }
        registry
            .gauge("predsim_predicted_total_ps", "predicted running time, ps")
            .set(pred.total.as_ps());
        registry
            .counter("predsim_comp_ps_total", "predicted computation time, ps")
            .add(pred.comp_time.as_ps());
        registry
            .counter("predsim_comm_ps_total", "predicted communication time, ps")
            .add(pred.comm_time.as_ps());
        registry
            .gauge(
                "predsim_horizon_max_spread_ps",
                "widest per-step front spread, ps",
            )
            .set(profile.max_spread().as_ps());
        let spread = registry.histogram(
            "predsim_horizon_spread_ps",
            "per-step front spread, ps",
            &predsim::predsim_obs::default_ps_buckets(),
        );
        for step in &profile.steps {
            spread.observe_time(step.spread);
        }
        std::fs::write(file, registry.render_prometheus())
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote metrics to {file}");
    }
    Ok(())
}

fn cmd_ge_sweep(args: &Args) -> Result<(), String> {
    let n: usize = args
        .value("n")
        .unwrap_or("960")
        .parse()
        .map_err(|e| format!("bad --n: {e}"))?;
    let procs: usize = args
        .value("procs")
        .unwrap_or("8")
        .parse()
        .map_err(|e| format!("bad --procs: {e}"))?;
    let layout: Box<dyn Layout> = match args.value("layout").unwrap_or("diagonal") {
        "diagonal" => Box::new(Diagonal::new(procs)),
        "row" => Box::new(RowCyclic::new(procs)),
        "col" => Box::new(ColCyclic::new(procs)),
        other => return Err(format!("unknown layout '{other}'")),
    };
    let blocks: Vec<usize> = match args.value("blocks") {
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|e| format!("bad block '{t}': {e}"))
            })
            .collect::<Result<_, _>>()?,
        None => gauss::PAPER_BLOCK_SIZES
            .iter()
            .copied()
            .filter(|b| n.is_multiple_of(*b))
            .collect(),
    };
    if blocks.is_empty() {
        return Err("no candidate block sizes divide n".into());
    }
    for &b in &blocks {
        if !n.is_multiple_of(b) {
            return Err(format!("block {b} does not divide n={n}"));
        }
    }
    let layout_spec = match args.value("layout").unwrap_or("diagonal") {
        "diagonal" => LayoutSpec::Diagonal(procs),
        "row" => LayoutSpec::RowCyclic(procs),
        "col" => LayoutSpec::ColCyclic(procs),
        other => return Err(format!("unknown layout '{other}'")),
    };
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    let cfg = SimConfig::new(params);

    let engine = Engine::new(
        EngineConfig::default()
            .with_jobs(args.jobs()?)
            .with_memo(!args.flag("no-memo")),
    );
    let specs: Vec<JobSpec> = blocks
        .iter()
        .map(|&b| {
            JobSpec::new(
                format!("B={b}"),
                JobSource::Gauss {
                    n,
                    block: b,
                    layout: layout_spec,
                },
                SimOptions::new(cfg),
            )
        })
        .collect();
    let results = engine.run(&specs);

    println!(
        "blocked GE, n={n}, {} layout, P={procs}, {}",
        layout.name(),
        params
    );
    let mut table = Table::new(["block", "predicted (s)", "comp (s)", "comm (s)"]);
    for (b, r) in blocks.iter().zip(&results) {
        let pred = &r.prediction;
        table.row([
            b.to_string(),
            secs(pred.total),
            secs(pred.comp_time),
            secs(pred.comm_time),
        ]);
    }
    println!("{}", table.render());
    let best = best_by_total(&results).expect("non-empty sweep");
    println!(
        "predicted optimum: B={} at {} s",
        blocks[best],
        secs(results[best].prediction.total)
    );
    write_engine_metrics(args, &engine)?;
    Ok(())
}

/// Parse a `N,BLOCK,LAYOUT,PROCS` blocked-matrix spec (shared by `ge:`
/// and `apsp:`), returning `(n, block, layout)`.
fn parse_blocked_spec(
    kind: &str,
    raw: &str,
    spec: &str,
) -> Result<(usize, usize, LayoutSpec), String> {
    let parts: Vec<&str> = spec.split(',').collect();
    let [n, block, layout, procs] = parts.as_slice() else {
        return Err(format!(
            "{kind} spec '{raw}': expected {kind}:N,BLOCK,LAYOUT,PROCS"
        ));
    };
    let n: usize = n
        .parse()
        .map_err(|e| format!("{kind} spec '{raw}': bad N: {e}"))?;
    let block: usize = block
        .parse()
        .map_err(|e| format!("{kind} spec '{raw}': bad BLOCK: {e}"))?;
    let procs: usize = procs
        .parse()
        .map_err(|e| format!("{kind} spec '{raw}': bad PROCS: {e}"))?;
    if block == 0 || !n.is_multiple_of(block) {
        return Err(format!("{kind} spec '{raw}': BLOCK must divide N"));
    }
    let layout = match *layout {
        "diagonal" => LayoutSpec::Diagonal(procs),
        "row" => LayoutSpec::RowCyclic(procs),
        "col" => LayoutSpec::ColCyclic(procs),
        other => return Err(format!("{kind} spec '{raw}': unknown layout '{other}'")),
    };
    Ok((n, block, layout))
}

/// Parse a batch SOURCE argument: a generator spec (`ge:`, `cannon:`,
/// `stencil:`, `apsp:`) or a trace file path.
fn parse_source(raw: &str) -> Result<(String, JobSource), String> {
    if let Some(spec) = raw.strip_prefix("ge:") {
        let (n, block, layout) = parse_blocked_spec("ge", raw, spec)?;
        Ok((raw.to_string(), JobSource::Gauss { n, block, layout }))
    } else if let Some(spec) = raw.strip_prefix("apsp:") {
        let (n, block, layout) = parse_blocked_spec("apsp", raw, spec)?;
        Ok((raw.to_string(), JobSource::Apsp { n, block, layout }))
    } else if let Some(spec) = raw.strip_prefix("cannon:") {
        let parts: Vec<&str> = spec.split(',').collect();
        let [n, q] = parts.as_slice() else {
            return Err(format!("cannon spec '{raw}': expected cannon:N,Q"));
        };
        let n: usize = n
            .parse()
            .map_err(|e| format!("cannon spec '{raw}': bad N: {e}"))?;
        let q: usize = q
            .parse()
            .map_err(|e| format!("cannon spec '{raw}': bad Q: {e}"))?;
        if q == 0 || !n.is_multiple_of(q) {
            return Err(format!("cannon spec '{raw}': Q must divide N"));
        }
        Ok((raw.to_string(), JobSource::Cannon { n, q }))
    } else if let Some(spec) = raw.strip_prefix("stencil:") {
        let parts: Vec<&str> = spec.split(',').collect();
        let [n, procs, iters] = parts.as_slice() else {
            return Err(format!(
                "stencil spec '{raw}': expected stencil:N,PROCS,ITERS"
            ));
        };
        let n: usize = n
            .parse()
            .map_err(|e| format!("stencil spec '{raw}': bad N: {e}"))?;
        let procs: usize = procs
            .parse()
            .map_err(|e| format!("stencil spec '{raw}': bad PROCS: {e}"))?;
        let iters: usize = iters
            .parse()
            .map_err(|e| format!("stencil spec '{raw}': bad ITERS: {e}"))?;
        if procs == 0 || procs > n {
            return Err(format!("stencil spec '{raw}': need 1..=N bands"));
        }
        Ok((
            raw.to_string(),
            JobSource::Stencil {
                n,
                procs,
                iters,
                ps_per_flop: 500,
            },
        ))
    } else {
        let program = load_trace(raw)?;
        Ok((raw.to_string(), JobSource::Program(Arc::new(program))))
    }
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    if args.positional.is_empty() {
        return Err(
            "check: no sources given (trace files or ge:/cannon:/stencil:/apsp: specs)".into(),
        );
    }
    let as_json = args.flag("json");
    let algo = if args.flag("worst-case") {
        CommAlgo::WorstCase
    } else {
        CommAlgo::Standard
    };

    let mut any_error = false;
    let mut any_warning = false;
    let mut sources = Vec::new();
    for raw in &args.positional {
        let (name, source) = parse_source(raw)?;
        source
            .validate()
            .map_err(|why| format!("source '{name}': {why}"))?;
        let program = source.build();
        let params = machine(args.value("machine").unwrap_or("meiko"), program.procs())?;
        let opts = LintOptions::default().with_params(params).with_algo(algo);
        let report = check_program(&program, &opts);
        any_error |= report.has_errors();
        any_warning |= report.count(Severity::Warning) > 0;
        if as_json {
            sources.push(json::Value::Object(vec![
                ("name".into(), json::Value::Str(name)),
                ("report".into(), report.to_value()),
            ]));
        } else {
            println!(
                "checking {name} (P={}, {} step(s))",
                program.procs(),
                program.len()
            );
            print!("{}", report.render());
            println!();
        }
    }
    if as_json {
        let doc = json::Value::Object(vec![
            ("version".into(), json::Value::Int(1)),
            ("sources".into(), json::Value::Array(sources)),
        ]);
        println!("{}", doc.to_pretty());
    }
    if any_error || (args.flag("strict") && any_warning) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_batch(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err(
            "batch: no sources given (trace files or ge:/cannon:/stencil:/apsp: specs)".into(),
        );
    }
    let sources: Vec<(String, JobSource)> = args
        .positional
        .iter()
        .map(|s| parse_source(s))
        .collect::<Result<_, _>>()?;
    let machines: Vec<&str> = args
        .value("machine")
        .unwrap_or("meiko")
        .split(',')
        .collect();

    // Machine params depend on each source's processor count, so the grid
    // is expanded here rather than via `predsim_engine::Grid`.
    let mut specs = Vec::with_capacity(sources.len() * machines.len());
    for mname in &machines {
        for (label, source) in &sources {
            let params = machine(mname, source.procs())?;
            let mut opts = SimOptions::new(SimConfig::new(params));
            if args.flag("worst-case") {
                opts = opts.worst_case();
            }
            if args.flag("barrier") {
                opts = opts.with_barrier();
            }
            if args.flag("overlap") {
                opts = opts.with_overlap();
            }
            if args.flag("classic-gap") {
                opts.cfg = opts.cfg.with_classic_gap_rule();
            }
            specs.push(JobSpec::new(
                format!("{label} @ {mname}"),
                source.clone(),
                opts,
            ));
        }
    }

    let engine = Engine::new(
        EngineConfig::default()
            .with_jobs(args.jobs()?)
            .with_memo(!args.flag("no-memo")),
    );
    let results = engine.run_checked(&specs).map_err(|e| e.to_string())?;

    let mut table = Table::new(["job", "predicted (s)", "comp (s)", "comm (s)"]);
    for r in &results {
        let pred = &r.prediction;
        table.row([
            r.label.clone(),
            secs(pred.total),
            secs(pred.comp_time),
            secs(pred.comm_time),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} jobs on {} worker(s)",
        results.len(),
        engine.config().effective_jobs()
    );
    let stats = engine.stats();
    if engine.config().memo {
        println!(
            "memo cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
            stats.hits,
            stats.misses,
            100.0 * stats.hit_rate(),
            stats.evictions
        );
    }
    write_engine_metrics(args, &engine)?;
    Ok(())
}

fn cmd_fit(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("fit: missing data file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut samples = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (b, t) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected 'bytes,us'", no + 1))?;
        let bytes: usize = b
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", no + 1))?;
        let us: f64 = t
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", no + 1))?;
        samples.push((bytes, Time::from_us(us)));
    }
    if samples.len() < 2 {
        return Err("need at least two samples".into());
    }
    let fit = loggp::fit::fit_point_to_point(&samples);
    println!("samples: {}", samples.len());
    println!(
        "fitted G        : {:.4} us/byte",
        fit.gap_per_byte.as_us_f64()
    );
    println!("fitted 2o + L   : {} ", fit.endpoint);
    println!("rms residual    : {}", fit.rms_residual);
    println!(
        "(supply o and g from CPU-occupancy / burst measurements, then\n loggp::fit::assemble builds the full parameter set)"
    );
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    let spec: Vec<FlagSpec> = match cmd.as_str() {
        "simulate" => SIM_FLAGS.to_vec(),
        "check" => vec![
            valued("machine"),
            switch("worst-case"),
            switch("json"),
            switch("strict"),
        ],
        "gantt" => {
            let mut s = SIM_FLAGS.to_vec();
            s.extend([valued("step"), valued("svg")]);
            s
        }
        "trace" => {
            let mut s = SIM_FLAGS.to_vec();
            s.extend([valued("trace-out"), valued("metrics-out")]);
            s
        }
        "ge-sweep" => vec![
            valued("n"),
            valued("procs"),
            valued("machine"),
            valued("layout"),
            valued("blocks"),
            valued("jobs"),
            switch("no-memo"),
            valued("metrics-out"),
        ],
        "batch" => {
            let mut s = SIM_FLAGS.to_vec();
            s.extend([valued("jobs"), switch("no-memo"), valued("metrics-out")]);
            s
        }
        _ => Vec::new(),
    };
    let args = Args::parse(&raw[1..], &spec)?;
    if cmd == "check" {
        return cmd_check(&args);
    }
    match cmd.as_str() {
        "presets" => cmd_presets(),
        "simulate" => cmd_simulate(&args),
        "gantt" => cmd_gantt(&args),
        "trace" => cmd_trace(&args),
        "ge-sweep" => cmd_ge_sweep(&args),
        "batch" => cmd_batch(&args),
        "fit" => cmd_fit(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
    .map(|()| ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
