//! `predsim` — the command-line front end.
//!
//! ```text
//! predsim presets                      list machine presets
//! predsim simulate TRACE [options]     predict a text-format trace
//! predsim check SOURCE... [options]    static analysis: lint without simulating
//! predsim gantt TRACE --step N         ASCII/SVG Gantt of one step
//! predsim trace SOURCE [options]       simulate with event tracing + horizon
//! predsim ge-sweep [options]           block-size sweep for blocked GE
//! predsim machine-sweep SOURCE [opts]  predict one program across machines
//! predsim dag gen|check|run ...        task-DAG workloads: generate, validate, predict
//! predsim dag-sweep DAG [options]      speedup curve for a task DAG
//! predsim serve [options]              HTTP prediction service
//! predsim faults explain SPEC          resolve a fault plan without running
//! predsim fit CSV                      fit LogGP params from ping data
//! predsim emulate SOURCE [options]     run the machine emulator, record wall times
//! predsim calibrate SOURCE [options]   fit a LogGP preset to measured runs
//! ```
//!
//! Argument parsing is deliberately hand-rolled (the workspace carries no
//! CLI dependency; see [`predsim::cli`]); `predsim help` prints the full
//! usage text.

use predsim::cli::{machine, machine_spec, switch, valued, Args, FlagSpec};
use predsim::predsim_core::report::{secs, Table};
use predsim::predsim_core::{record_program, textfmt, CommAlgo};
use predsim::predsim_dag::{self, SchedulerKind};
use predsim::predsim_engine::{
    best_by_total, Engine, EngineConfig, JobResult, JobSource, JobSpec, Journal, JournalEntry,
    LayoutSpec,
};
use predsim::predsim_lint::{
    analyze, check_program, json, BoundsConfig, Code, Diagnostic, FaultWindow, LintOptions,
    ProgramBounds, ProgramView, Report, Severity, Span,
};
use predsim::predsim_serve::{ChaosPlan, ChaosSpec, ServeConfig, Server};
use predsim::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
predsim — trace-driven LogGP running-time prediction (Rugina & Schauser, IPPS'98)

USAGE:
  predsim presets
      List the built-in machine presets.

  predsim simulate TRACE [--machine NAME] [--worst-case] [--barrier] [--overlap]
                         [--classic-gap]
      Parse a text-format trace (see predsim_core::textfmt) and predict it.

  predsim check SOURCE... [--machine NAME] [--worst-case] [--json] [--strict]
                [--bounds] [--faults SPEC] [--seed N]
  predsim check --explain CODE
      Statically analyze programs without simulating: well-formedness
      (PS01xx), deadlock cycles (PS0201, an error under --worst-case),
      LogGP lower-bound findings (PS03xx) such as fan-in hotspots and
      load imbalance, and cost-interval performance lints (PS06xx).
      With --faults, fail-stop windows of the plan are checked for
      starved receives (PS0401, an error under --strict). SOURCEs are
      as for 'batch'. Exits nonzero if any source has error-severity
      diagnostics (with --strict: warnings too); --json emits the
      machine-readable report instead of text. --bounds additionally
      prints each program's simulation-free static [lo, hi] running-time
      interval with per-step bottleneck classes and the static critical
      path (in JSON: a \"bounds\" object per source; fault injection
      makes the interval unavailable). --explain CODE prints the
      rationale and an example for one diagnostic code and exits.

  predsim gantt TRACE --step N [--machine NAME] [--svg FILE] [--worst-case]
      Render the send/receive schedule of step N (1-based) of the trace.

  predsim trace SOURCE [--machine NAME] [--worst-case] [--barrier] [--overlap]
                [--classic-gap] [--faults SPEC] [--seed N]
                [--trace-out FILE] [--metrics-out FILE]
      Simulate one source (a trace file or a generator spec, as for
      'batch') with event tracing on. Emits one strict-JSON object per
      line (send/recv/gap_stall/front events, virtual-time picosecond
      stamps) to --trace-out, renders the virtual-time horizon profile
      (per-step min/mean/max processor fronts), and writes
      Prometheus-format metrics to --metrics-out. With --faults, the
      seeded fault plan is injected and drop/retransmit/slowdown/fail/
      restart events appear in the stream. Tracing never changes the
      prediction.

  predsim ge-sweep [--n N] [--procs P] [--machine NAME] [--layout L] [--blocks A,B,...]
                   [--prefilter] [--jobs N] [--no-memo] [--faults SPEC] [--seed N]
                   [--job-budget STEPS] [--retries K]
                   [--checkpoint FILE | --resume FILE]
                   [--results-out FILE] [--metrics-out FILE]
      Sweep block sizes for blocked Gaussian elimination and report the
      predicted optimum (layouts: diagonal, row, col; default n=960 P=8).
      --jobs runs the sweep on N worker threads (results are identical);
      --metrics-out writes the engine's metrics in Prometheus format.
      --prefilter ranks candidates by their static cost ceiling, runs
      them most-promising-first, and skips any block size whose static
      floor already exceeds the best observed total (incompatible with
      --faults and --checkpoint/--resume). Fault and resilience flags
      are as for 'batch'.

  predsim machine-sweep SOURCE [--machines NAME,NAME,...] [--worst-case]
                        [--barrier] [--overlap] [--classic-gap] [--verify]
      Predict one SOURCE (as for 'batch') across several machine presets
      using incremental re-simulation: the program is simulated once in
      full on the first machine while the commit order of every
      communication step is recorded; each further machine re-times the
      recorded orders instead of re-running the simulator's hot loop,
      falling back to a full per-step simulation only where the recorded
      order is not provably valid under the new parameters. Results are
      bit-identical to independent full simulations (--verify re-runs
      them and checks). Prints per-machine totals plus how many steps
      took the replay fast path. Default machines: meiko, paragon,
      myrinet, ethernet, ideal.

  predsim dag gen SPEC [--out FILE]
      Generate a deterministic task DAG and print it in the line-oriented
      DAG format (or write it to --out). SPEC is one of
        forkjoin:WIDTH,STAGES,FLOPS,BYTES
        mapreduce:MAPS,REDUCERS,MAP_FLOPS,REDUCE_FLOPS,BYTES
        layered:SEED,LAYERS,WIDTH,MAX_FLOPS,MAX_BYTES
      Generation is seeded and platform-independent: the same SPEC
      always yields the same file, byte for byte.

  predsim dag check DAG
      Parse a DAG (a file in the line format, or a gen SPEC), validate
      it (names, edge references, acyclicity), verify the canonical
      round-trip, and print its shape: tasks, edges, serial work, and
      critical-path time.

  predsim dag run DAG --procs P [--scheduler S] [--machine M]
      Schedule the DAG onto P processors (schedulers: round-robin,
      min-ready, heft; default heft), lower it to an oblivious step
      program, and predict it with the simulator. --machine accepts the
      built-in presets plus @FILE:NAME preset files, which may describe
      heterogeneous machines: per-processor speed factors scale each
      task's computation, per-link (L,o,g,G) overrides steer the
      scheduler's placement (the network itself is simulated under the
      uniform base parameters, as the paper's model assumes).

  predsim dag-sweep DAG --procs A..B [--scheduler S] [--machine M] [--json]
      Sweep the DAG across processor counts and report the predicted
      speedup curve: per-count totals, speedup and parallel efficiency
      in exact permille, and the knee — the largest swept count still at
      >= 50% efficiency. DAG and --machine are as for 'dag run'. --json
      emits the strict-JSON report, byte-identical to POST /v1/speedup.

  predsim batch SOURCE... [--machine NAME[,NAME...]] [--jobs N] [--no-memo]
                [--worst-case] [--barrier] [--overlap] [--classic-gap]
                [--faults SPEC] [--seed N] [--job-budget STEPS] [--retries K]
                [--checkpoint FILE | --resume FILE]
                [--results-out FILE] [--metrics-out FILE]
      Predict every source on every machine with the batch engine. A SOURCE
      is a trace file path or a generator spec:
        ge:N,BLOCK,LAYOUT,PROCS      blocked Gaussian elimination
        cannon:N,Q                   Cannon's algorithm on a QxQ grid
        stencil:N,PROCS,ITERS        Jacobi stencil (500 ps/flop)
        apsp:N,BLOCK,LAYOUT,PROCS    blocked Floyd-Warshall shortest paths
        bcast:P:BYTES                binomial-tree broadcast
        reduce:P:BYTES:COMBINE_PS    binomial-tree reduction
        allreduce:P:BYTES:COMBINE_PS[:hypercube]
                                     reduce+broadcast (or hypercube exchange)
        dag:GENSPEC:PROCS            task DAG ('dag gen' SPEC), HEFT-scheduled
      Jobs are pre-validated with the analyzer (invalid specs are
      rejected with diagnostics). Prints one row per job plus memo-cache
      statistics; --metrics-out writes the engine's metrics in
      Prometheus format. --faults injects the seeded fault plan into
      every job; --job-budget caps each job's simulated steps (over
      budget: timed_out); --retries re-runs crashed or over-budget jobs
      up to K extra times; --checkpoint appends every finished job to a
      JSONL journal as it completes, and --resume reads such a journal
      back, skips the jobs already done, and appends the rest to the
      same file — the combined results are identical to an uninterrupted
      run. --results-out writes the results table to a file.

  predsim serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
                [--request-timeout SECS] [--no-memo] [--job-budget STEPS]
                [--retries K] [--checkpoint FILE] [--metrics-out FILE]
                [--presets FILE] [--replay-at N] [--static-at N]
                [--stall-timeout MS] [--chaos SPEC] [--chaos-seed N]
      Serve predictions over HTTP (std-only, no framework). POST
      /v1/predict takes a strict-JSON job, e.g.
        {\"source\":\"ge:960,32,diagonal,8\",\"machine\":\"paragon\"}
      (optional: inline \"trace\", \"worst_case\", \"barrier\", \"overlap\",
      \"classic_gap\", \"faults\"+\"seed\", \"label\"); POST /v1/batch takes
      {\"jobs\":[...]} and predicts them in submission order. Jobs are
      pre-validated with the analyzer — invalid ones get 422 with the
      same diagnostics document as 'check --json'. Admission is a
      bounded queue served by --workers threads; when full, requests
      get 429 + Retry-After. GET /healthz reports queue depth and
      in-flight count; GET /metrics exposes engine + serve counters in
      Prometheus text (/metrics.json: strict JSON). POST /admin/drain
      stops gracefully — admitted work finishes, then the process exits
      0 (--metrics-out writes the final snapshot; --checkpoint journals
      every finished job). --presets loads a preset file at startup so
      its machine names resolve in requests. POST /v1/calibrate fits a
      LogGP preset to an emulated source (same fields as /v1/predict
      plus \"runs\", \"holdout\", \"max_rounds\", \"register\") and returns
      the fitted parameters with the bracketing report. Under load the
      server degrades instead of failing: at queue depth --replay-at it
      answers clean re-requests from cached recordings (tier \"replay\",
      bit-identical), at --static-at it falls back to analyzer bounds
      (tier \"static\", lo..hi bracket); requests may carry
      \"deadline_ms\" — unmeetable deadlines get an instant static
      answer or 429 with a computed Retry-After. Panicked or stalled
      workers (stall threshold --stall-timeout, default 30000 ms) are
      respawned and their job is re-enqueued once. --chaos injects
      deterministic faults for testing (comma list of panic:RATE,
      stall:RATE[:MS], hiccup:RATE[:MS], drop-conn:RATE; decisions are
      hashes of --chaos-seed, so a seed replays the same failure
      sequence). Default address 127.0.0.1:9100.

  predsim faults explain SPEC [--seed N] [--steps N] [--procs P]
      Parse a fault spec, bind it to the seed, and print the resolved
      plan: clauses plus a sample decision grid. SPEC is a comma list of
        drop:RATE[:RTO_US[:MAX]]     per-attempt message loss (+ retransmit)
        slow:RATE:FACTOR             transient processor slowdown
        fail:P@S+OUT_US              fail-stop of P at step S, restart after
      e.g. 'drop:0.1,slow:0.05:2.5,fail:3@12+5000'. The same SPEC/--seed
      pair always resolves to the same faults, everywhere.

  predsim fit FILE
      Least-squares fit of LogGP G and 2o+L from 'bytes,microseconds'
      lines (comments with '#').

  predsim emulate SOURCE [--runs N] [--machine NAME] [--base-seed N]
                  [--faults SPEC] [--seed N] [--measure-out FILE]
      Run SOURCE (as for 'batch') on the substitute-testbed emulator
      --runs times (default 1) under consecutive seeds starting at
      --base-seed (default 0) and report the measured wall times. The
      emulator layers cache, jitter, contention and local-copy effects
      on top of the LogGP preset; --faults additionally injects the
      seeded fault plan into the emulated hardware. --measure-out
      records the runs (per-step walls, strict flat JSONL) in the
      measured-file format 'calibrate' reads back.

  predsim calibrate SOURCE [--runs N] [--machine INIT] [--base-seed N]
                    [--holdout K] [--max-rounds N] [--min-hit-rate R]
                    [--out FILE] [--name NAME] [--faults SPEC] [--seed N]
                    [--metrics-out FILE]
      Fit the four LogGP parameters to measured per-step wall times by
      deterministic least-squares search over the simulator itself,
      starting from the --machine preset (default meiko). SOURCE is
      either a measured JSONL file (from 'emulate --measure-out'; the
      program is rebuilt from the source spec recorded in its header)
      or a live source as for 'batch', emulated --runs times (default
      8). The last --holdout K runs (default 0) are excluded from the
      fit and scored by the bracketing report: the share of held-out
      runs with standard <= measured <= worst-case under the fitted
      parameters. Exits nonzero if the fit does not converge or the
      hit rate falls below --min-hit-rate. --out FILE --name NAME
      appends the fitted preset to a preset file (created if missing;
      duplicate names are rejected), loadable anywhere --machine is
      accepted as @FILE:NAME. --metrics-out writes the calib_* metric
      family in Prometheus format.

Machines: meiko (default), paragon, myrinet, ethernet, ideal — or
@FILE:NAME for a preset fitted by 'calibrate --out FILE --name NAME'.
";

/// Flags shared by every command that builds [`SimOptions`].
const SIM_FLAGS: [FlagSpec; 5] = [
    valued("machine"),
    switch("worst-case"),
    switch("barrier"),
    switch("overlap"),
    switch("classic-gap"),
];

/// Flags shared by the batch-engine commands (`batch`, `ge-sweep`):
/// parallelism, fault injection, and resilience.
const BATCH_FLAGS: [FlagSpec; 10] = [
    valued("jobs"),
    switch("no-memo"),
    valued("faults"),
    valued("seed"),
    valued("job-budget"),
    valued("retries"),
    valued("checkpoint"),
    valued("resume"),
    valued("results-out"),
    valued("metrics-out"),
];

fn cmd_presets() -> Result<(), String> {
    let mut t = Table::new([
        "name",
        "L (us)",
        "o (us)",
        "g (us)",
        "G (us/B)",
        "bandwidth",
    ]);
    for preset in presets::all(8) {
        let p = preset.params;
        let bw = p.bandwidth_bytes_per_sec();
        t.row([
            preset.name.to_string(),
            format!("{:.2}", p.latency.as_us_f64()),
            format!("{:.2}", p.overhead.as_us_f64()),
            format!("{:.2}", p.gap.as_us_f64()),
            format!("{:.3}", p.gap_per_byte.as_us_f64()),
            if bw.is_finite() {
                format!("{:.1} MB/s", bw / 1e6)
            } else {
                "inf".into()
            },
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn load_trace(path: &str) -> Result<predsim::predsim_core::Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    textfmt::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn sim_options(args: &Args, procs: usize) -> Result<SimOptions, String> {
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    let mut opts = SimOptions::new(SimConfig::new(params));
    if args.flag("worst-case") {
        opts = opts.worst_case();
    }
    if args.flag("barrier") {
        opts = opts.with_barrier();
    }
    if args.flag("overlap") {
        opts = opts.with_overlap();
    }
    if args.flag("classic-gap") {
        opts.cfg = opts.cfg.with_classic_gap_rule();
    }
    Ok(opts)
}

/// The seeded fault plan from `--faults SPEC [--seed N]`, `None` when the
/// command runs fault-free.
fn fault_plan(args: &Args) -> Result<Option<FaultPlan>, String> {
    let Some(text) = args.value("faults") else {
        if args.value("seed").is_some() {
            return Err("--seed only makes sense together with --faults".into());
        }
        return Ok(None);
    };
    let spec = FaultSpec::parse(text)?;
    let seed = match args.value("seed") {
        None => 0,
        Some(v) => v.parse::<u64>().map_err(|e| format!("bad --seed: {e}"))?,
    };
    Ok(Some(FaultPlan::new(spec, seed)))
}

/// Build the engine configuration from the shared batch flags
/// (`--jobs`, `--no-memo`, `--job-budget`, `--retries`).
fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::default()
        .with_jobs(args.jobs()?)
        .with_memo(!args.flag("no-memo"));
    if let Some(v) = args.value("job-budget") {
        let steps: usize = v.parse().map_err(|e| format!("bad --job-budget: {e}"))?;
        if steps == 0 {
            return Err("--job-budget must be at least 1".into());
        }
        cfg = cfg.with_step_budget(steps);
    }
    if let Some(v) = args.value("retries") {
        let retries: u32 = v.parse().map_err(|e| format!("bad --retries: {e}"))?;
        cfg = cfg.with_retries(retries);
    }
    Ok(cfg)
}

/// Open the checkpoint journal requested by `--checkpoint` (fresh) or
/// `--resume` (read back, then append), if either was given.
fn open_journal(args: &Args) -> Result<(Option<Journal>, Vec<JournalEntry>), String> {
    match (args.value("checkpoint"), args.value("resume")) {
        (Some(_), Some(_)) => {
            Err("--checkpoint and --resume are mutually exclusive (--resume appends to the journal it reads)".into())
        }
        (Some(path), None) => {
            let journal =
                Journal::create(path).map_err(|e| format!("creating journal {path}: {e}"))?;
            Ok((Some(journal), Vec::new()))
        }
        (None, Some(path)) => {
            let (journal, entries) =
                Journal::resume(path).map_err(|e| format!("resuming journal {path}: {e}"))?;
            Ok((Some(journal), entries))
        }
        (None, None) => Ok((None, Vec::new())),
    }
}

/// Render batch results as a table. Restored outcomes print as `done`:
/// their numbers are the journalled ones, so a resumed run's table is
/// identical to an uninterrupted run's (the restore tally is reported
/// separately on the console).
fn results_table(results: &[JobResult]) -> Table {
    let mut table = Table::new(["job", "status", "predicted (s)", "comp (s)", "comm (s)"]);
    for r in results {
        let status = if r.outcome.is_ok() {
            "done".to_string()
        } else {
            r.outcome.kind().to_string()
        };
        match r.outcome.totals() {
            Some((total, comp, comm, _)) => {
                table.row([r.label.clone(), status, secs(total), secs(comp), secs(comm)])
            }
            None => table.row([r.label.clone(), status, "-".into(), "-".into(), "-".into()]),
        };
    }
    table
}

/// Post-run reporting shared by `batch` and `ge-sweep`: print the table
/// (and write it to `--results-out`), tally restored/failed jobs, and
/// name the fault plan in effect. Errors if any job crashed or timed out.
fn report_results(
    args: &Args,
    results: &[JobResult],
    plan: Option<&FaultPlan>,
) -> Result<(), String> {
    let rendered = results_table(results).render();
    println!("{rendered}");
    if let Some(file) = args.value("results-out") {
        std::fs::write(file, &rendered).map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote results to {file}");
    }
    if let Some(plan) = plan {
        println!("fault plan: {} (seed {})", plan.spec(), plan.seed());
    }
    let restored = results
        .iter()
        .filter(|r| r.outcome.kind() == "restored")
        .count();
    if restored > 0 {
        println!("{restored} job(s) restored from the journal, not re-run");
    }
    let failed = results.iter().filter(|r| !r.outcome.is_ok()).count();
    if failed > 0 {
        return Err(format!(
            "{failed} job(s) did not complete (crashed or timed out); see the status column"
        ));
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("simulate: missing TRACE file")?;
    let prog = load_trace(path)?;
    let opts = sim_options(args, prog.procs())?;
    let pred = simulate_program(&prog, &opts);
    println!("machine: {}", opts.cfg.params);
    println!("{}", pred.summary());
    println!("\n{}", pred.per_proc_table());
    let slow = pred.slowest_comm_steps(5);
    if !slow.is_empty() {
        println!("slowest communication steps:");
        for (label, span) in slow {
            println!("  {label}: {span}");
        }
    }
    Ok(())
}

fn cmd_gantt(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("gantt: missing TRACE file")?;
    let step_no: usize = args
        .value("step")
        .ok_or("gantt: missing --step N")?
        .parse()
        .map_err(|e| format!("bad --step: {e}"))?;
    let prog = load_trace(path)?;
    let step = prog
        .steps()
        .get(step_no.checked_sub(1).ok_or("--step is 1-based")?)
        .ok_or_else(|| format!("trace has {} steps", prog.len()))?;
    if step.comm.is_empty() {
        return Err(format!(
            "step {step_no} ('{}') has no communication",
            step.label
        ));
    }
    let opts = sim_options(args, prog.procs())?;
    let result = if args.flag("worst-case") {
        worstcase::simulate(&step.comm, &opts.cfg)
    } else {
        standard::simulate(&step.comm, &opts.cfg)
    };
    if let Some(file) = args.value("svg") {
        std::fs::write(file, commsim::gantt::render_svg(&result.timeline, 800))
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote {file}");
    } else {
        print!("{}", commsim::gantt::render(&result.timeline, 100));
    }
    Ok(())
}

/// Write the engine's Prometheus metrics (including the `engine_cache_*`
/// gauges) to `file` when `--metrics-out` was given.
fn write_engine_metrics(args: &Args, engine: &Engine) -> Result<(), String> {
    if let Some(file) = args.value("metrics-out") {
        std::fs::write(file, engine.metrics_snapshot().to_prometheus())
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote metrics to {file}");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let raw = args
        .positional
        .first()
        .ok_or("trace: missing SOURCE (a trace file or a ge:/cannon:/stencil:/apsp: spec)")?;
    let (name, source) = parse_source(raw)?;
    source
        .validate()
        .map_err(|why| format!("source '{name}': {why}"))?;
    let program = source.build();
    let opts = sim_options(args, program.procs())?;
    let plan = fault_plan(args)?;

    let sink = MemorySink::new();
    let pred = match &plan {
        Some(plan) => simulate_faulted(&program, &opts, plan, Some(&sink)),
        None => predsim::predsim_core::simulate_program_traced(&program, &opts, &sink),
    };
    let events = sink.events();

    if let Some(file) = args.value("trace-out") {
        std::fs::write(file, sink.to_jsonl()).map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote {} events to {file}", events.len());
    }

    println!("machine: {}", opts.cfg.params);
    println!("{}", pred.summary());
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count();
    println!(
        "events: {} send, {} recv, {} gap_stall, {} front",
        count("send"),
        count("recv"),
        count("gap_stall"),
        count("front")
    );
    if let Some(plan) = &plan {
        println!(
            "fault events: {} drop, {} retransmit, {} slowdown, {} fail, {} restart (plan: {}, seed {})",
            count("drop"),
            count("retransmit"),
            count("slowdown"),
            count("fail"),
            count("restart"),
            plan.spec(),
            plan.seed()
        );
    }

    let profile = HorizonProfile::from_events(&events);
    println!();
    print!("{}", profile.render(60));
    if let Some(step) = profile.roughest_step() {
        println!(
            "roughest step: {} (front spread {})",
            step,
            profile.max_spread()
        );
    }

    if let Some(file) = args.value("metrics-out") {
        let registry = Registry::new();
        let mut kinds = vec!["send", "recv", "gap_stall", "front"];
        if plan.is_some() {
            kinds.extend(["drop", "retransmit", "slowdown", "fail", "restart"]);
        }
        for kind in kinds {
            registry
                .counter_with(
                    "predsim_trace_events_total",
                    &[("ev", kind)],
                    "trace events emitted, by kind",
                )
                .add(count(kind) as u64);
        }
        registry
            .gauge("predsim_predicted_total_ps", "predicted running time, ps")
            .set(pred.total.as_ps());
        registry
            .counter("predsim_comp_ps_total", "predicted computation time, ps")
            .add(pred.comp_time.as_ps());
        registry
            .counter("predsim_comm_ps_total", "predicted communication time, ps")
            .add(pred.comm_time.as_ps());
        registry
            .gauge(
                "predsim_horizon_max_spread_ps",
                "widest per-step front spread, ps",
            )
            .set(profile.max_spread().as_ps());
        let spread = registry.histogram(
            "predsim_horizon_spread_ps",
            "per-step front spread, ps",
            &predsim::predsim_obs::default_ps_buckets(),
        );
        for step in &profile.steps {
            spread.observe_time(step.spread);
        }
        std::fs::write(file, registry.render_prometheus())
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote metrics to {file}");
    }
    Ok(())
}

fn cmd_ge_sweep(args: &Args) -> Result<(), String> {
    let n: usize = args
        .value("n")
        .unwrap_or("960")
        .parse()
        .map_err(|e| format!("bad --n: {e}"))?;
    let procs: usize = args
        .value("procs")
        .unwrap_or("8")
        .parse()
        .map_err(|e| format!("bad --procs: {e}"))?;
    let layout: Box<dyn Layout> = match args.value("layout").unwrap_or("diagonal") {
        "diagonal" => Box::new(Diagonal::new(procs)),
        "row" => Box::new(RowCyclic::new(procs)),
        "col" => Box::new(ColCyclic::new(procs)),
        other => return Err(format!("unknown layout '{other}'")),
    };
    let blocks: Vec<usize> = match args.value("blocks") {
        Some(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|e| format!("bad block '{t}': {e}"))
            })
            .collect::<Result<_, _>>()?,
        None => gauss::PAPER_BLOCK_SIZES
            .iter()
            .copied()
            .filter(|b| n.is_multiple_of(*b))
            .collect(),
    };
    if blocks.is_empty() {
        return Err("no candidate block sizes divide n".into());
    }
    for &b in &blocks {
        if !n.is_multiple_of(b) {
            return Err(format!("block {b} does not divide n={n}"));
        }
    }
    let layout_spec = match args.value("layout").unwrap_or("diagonal") {
        "diagonal" => LayoutSpec::Diagonal(procs),
        "row" => LayoutSpec::RowCyclic(procs),
        "col" => LayoutSpec::ColCyclic(procs),
        other => return Err(format!("unknown layout '{other}'")),
    };
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    let cfg = SimConfig::new(params);
    let plan = fault_plan(args)?;

    let engine = Engine::new(engine_config(args)?);
    let specs: Vec<JobSpec> = blocks
        .iter()
        .map(|&b| {
            let mut spec = JobSpec::new(
                format!("B={b}"),
                JobSource::Gauss {
                    n,
                    block: b,
                    layout: layout_spec,
                },
                SimOptions::new(cfg),
            );
            if let Some(plan) = &plan {
                spec = spec.with_faults(plan.clone());
            }
            spec
        })
        .collect();
    if args.flag("prefilter") {
        if plan.is_some() {
            return Err(
                "--prefilter ranks and prunes by static bounds, which fault injection voids; \
                 drop --faults"
                    .into(),
            );
        }
        if args.value("checkpoint").is_some() || args.value("resume").is_some() {
            return Err(
                "--prefilter reorders and prunes the sweep, so its journal would not line up \
                 with a plain run's; drop --checkpoint/--resume"
                    .into(),
            );
        }
        println!(
            "blocked GE, n={n}, {} layout, P={procs}, {} (static prefilter)",
            layout.name(),
            params
        );
        return ge_sweep_prefiltered(args, &engine, &specs, &blocks);
    }

    let (journal, restored) = open_journal(args)?;
    let results = engine.run_resumable(&specs, journal.as_ref(), &restored);

    println!(
        "blocked GE, n={n}, {} layout, P={procs}, {}",
        layout.name(),
        params
    );
    if let Some(best) = best_by_total(&results) {
        println!(
            "predicted optimum: B={} at {} s",
            blocks[best],
            secs(results[best].outcome.totals().expect("best is ok").0)
        );
    }
    report_results(args, &results, plan.as_ref())?;
    write_engine_metrics(args, &engine)?;
    Ok(())
}

/// The `ge-sweep --prefilter` path: rank the candidate block sizes by
/// static ceiling (most promising first), run them one at a time, and skip
/// every candidate whose static floor already exceeds the best observed
/// total — its simulation cannot win. Sequential on purpose: each result
/// tightens the pruning threshold for the next candidate, and the memo
/// cache still carries over between runs (one engine).
fn ge_sweep_prefiltered(
    args: &Args,
    engine: &Engine,
    specs: &[JobSpec],
    blocks: &[usize],
) -> Result<(), String> {
    let bounds: Vec<ProgramBounds> = specs
        .iter()
        .map(|s| {
            predsim_engine::static_bounds(s)
                .ok_or_else(|| format!("{}: no static bounds for a clean spec", s.label))
        })
        .collect::<Result<_, _>>()?;
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| (bounds[i].hi.as_ps(), i));

    let mut best: Option<(usize, Time)> = None;
    let mut executed: Vec<(usize, JobResult)> = Vec::new();
    let mut pruned = 0usize;
    for &i in &order {
        if let Some((_, best_total)) = best {
            if bounds[i].lo > best_total {
                pruned += 1;
                println!(
                    "pruned B={}: static floor {} s exceeds best observed {} s",
                    blocks[i],
                    secs(bounds[i].lo),
                    secs(best_total)
                );
                continue;
            }
        }
        let result = engine
            .run(std::slice::from_ref(&specs[i]))
            .pop()
            .expect("one spec in, one result out");
        if let Some((total, ..)) = result.outcome.totals() {
            if best.is_none_or(|(_, t)| total < t) {
                best = Some((i, total));
            }
        }
        executed.push((i, result));
    }
    executed.sort_by_key(|(i, _)| *i);
    println!(
        "prefilter: simulated {} of {} candidate(s), pruned {pruned}",
        executed.len(),
        specs.len()
    );
    if let Some((i, total)) = best {
        println!("predicted optimum: B={} at {} s", blocks[i], secs(total));
    }
    let results: Vec<JobResult> = executed.into_iter().map(|(_, r)| r).collect();
    report_results(args, &results, None)?;
    write_engine_metrics(args, engine)?;
    Ok(())
}

/// The `machine-sweep` command: one program, many machine presets,
/// incremental re-simulation between them. The first machine is simulated
/// in full (recording every communication step's commit order); the rest
/// replay those orders under their own LogGP parameters, falling back to
/// the full hot loop per step only where the recorded order cannot be
/// proved valid. Predictions are bit-identical to independent full runs.
fn cmd_machine_sweep(args: &Args) -> Result<(), String> {
    let raw = args.positional.first().ok_or(
        "machine-sweep: missing SOURCE (a trace file or a ge:/cannon:/stencil:/apsp: spec)",
    )?;
    let (name, source) = parse_source(raw)?;
    source
        .validate()
        .map_err(|why| format!("source '{name}': {why}"))?;
    let program = source.build();
    let procs = program.procs();
    let machines: Vec<&str> = args
        .value("machines")
        .unwrap_or("meiko,paragon,myrinet,ethernet,ideal")
        .split(',')
        .map(str::trim)
        .collect();
    if machines.is_empty() {
        return Err("machine-sweep: --machines lists no machines".into());
    }
    let opts_for = |params| {
        let mut opts = SimOptions::new(SimConfig::new(params));
        if args.flag("worst-case") {
            opts = opts.worst_case();
        }
        if args.flag("barrier") {
            opts = opts.with_barrier();
        }
        if args.flag("overlap") {
            opts = opts.with_overlap();
        }
        if args.flag("classic-gap") {
            opts.cfg = opts.cfg.with_classic_gap_rule();
        }
        opts
    };

    let base_opts = opts_for(machine(machines[0], procs)?);
    let rec_start = std::time::Instant::now();
    let (base_pred, recording) = record_program(&program, &base_opts);
    let rec_elapsed = rec_start.elapsed();
    println!(
        "{name}: P={procs}, {} step(s), {} with communication; recorded on '{}' in {:.1} ms",
        program.len(),
        recording.len(),
        machines[0],
        rec_elapsed.as_secs_f64() * 1e3,
    );

    let mut table = Table::new(["machine", "total (s)", "comp (s)", "comm (s)", "replayed"]);
    let mut replayed_total = 0usize;
    let mut resim_total = 0usize;
    for (idx, mname) in machines.iter().enumerate() {
        let opts = opts_for(machine(mname, procs)?);
        let (pred, stats) = if idx == 0 {
            // Already simulated while recording; replaying here would just
            // re-derive the identical prediction.
            (
                base_pred.clone(),
                predsim::predsim_core::ReplayStats {
                    replayed: recording.len(),
                    resimulated: 0,
                },
            )
        } else {
            recording.predict(&program, &opts)
        };
        if args.flag("verify") {
            let full = simulate_program(&program, &opts);
            if full != pred {
                return Err(format!(
                    "machine-sweep: incremental prediction for '{mname}' diverged from the \
                     full simulation — this is a bug in the replay validity check"
                ));
            }
        }
        replayed_total += stats.replayed;
        resim_total += stats.resimulated;
        table.row([
            mname.to_string(),
            secs(pred.total),
            secs(pred.comp_time),
            secs(pred.comm_time),
            format!("{}/{}", stats.replayed, stats.comm_steps()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "incremental replay: {replayed_total} of {} communication-step simulations \
         took the fast path ({resim_total} full re-simulations){}",
        replayed_total + resim_total,
        if args.flag("verify") {
            "; all predictions verified against full simulations"
        } else {
            ""
        }
    );
    Ok(())
}

/// A DAG operand: a generator spec (`forkjoin:`, `mapreduce:`,
/// `layered:` — the grammar of `predsim dag gen`) or a DAG file path.
fn load_dag(raw: &str) -> Result<predsim_dag::TaskDag, String> {
    if ["forkjoin:", "mapreduce:", "layered:"]
        .iter()
        .any(|p| raw.starts_with(p))
    {
        return predsim_dag::generate::from_spec(raw);
    }
    let text = std::fs::read_to_string(raw).map_err(|e| format!("reading {raw}: {e}"))?;
    predsim_dag::format::parse(&text).map_err(|e| format!("{raw}: {e}"))
}

fn cmd_dag(args: &Args) -> Result<(), String> {
    let sub = args
        .positional
        .first()
        .ok_or("dag: expected a subcommand (gen, check, or run)")?;
    match sub.as_str() {
        "gen" => {
            let spec = args
                .positional
                .get(1)
                .ok_or("dag gen: missing SPEC (e.g. forkjoin:32,1,1000000,8192)")?;
            let dag = predsim_dag::generate::from_spec(spec)?;
            let text = predsim_dag::format::dump(&dag);
            match args.value("out") {
                Some(file) => {
                    std::fs::write(file, &text).map_err(|e| format!("writing {file}: {e}"))?;
                    println!(
                        "wrote {} task(s), {} edge(s) to {file}",
                        dag.tasks().len(),
                        dag.edges().len()
                    );
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        "check" => {
            let raw = args
                .positional
                .get(1)
                .ok_or("dag check: missing DAG (a file or a gen SPEC)")?;
            let dag = load_dag(raw)?;
            dag.validate()?;
            let text = predsim_dag::format::dump(&dag);
            let back = predsim_dag::format::parse(&text)
                .map_err(|e| format!("canonical round-trip failed to parse: {e}"))?;
            if predsim_dag::format::dump(&back) != text {
                return Err("canonical round-trip is not bit-stable".into());
            }
            println!(
                "{}: {} task(s), {} edge(s)",
                dag.name(),
                dag.tasks().len(),
                dag.edges().len()
            );
            println!("serial work   : {} s", secs(dag.total_comp()));
            println!("critical path : {} s", secs(dag.critical_path()));
            println!("round-trip OK");
            Ok(())
        }
        "run" => {
            let raw = args
                .positional
                .get(1)
                .ok_or("dag run: missing DAG (a file or a gen SPEC)")?;
            let dag = load_dag(raw)?;
            dag.validate()?;
            let procs: usize = args
                .value("procs")
                .ok_or("dag run: missing --procs P")?
                .parse()
                .map_err(|e| format!("bad --procs: {e}"))?;
            if procs == 0 {
                return Err("--procs must be at least 1".into());
            }
            let kind = SchedulerKind::parse(args.value("scheduler").unwrap_or("heft"))?;
            let spec = machine_spec(args.value("machine").unwrap_or("meiko"), procs)?;
            let placement = kind.place(&dag, &spec);
            let lowered = predsim_dag::lower(&dag, &placement, &spec);
            let pred = simulate_program(
                &lowered.program,
                &SimOptions::new(SimConfig::new(spec.base)),
            );
            println!(
                "{}: {} task(s), {} edge(s); {} scheduler on P={}",
                dag.name(),
                dag.tasks().len(),
                dag.edges().len(),
                kind.name(),
                procs
            );
            println!("machine: {}", spec.base);
            if !spec.is_uniform() {
                let speeds: Vec<String> = (0..procs)
                    .map(|p| format!("{:.2}x", spec.speed_of(p) as f64 / 1000.0))
                    .collect();
                println!(
                    "heterogeneous: speeds [{}], {} link override(s)",
                    speeds.join(", "),
                    spec.links.len()
                );
            }
            let mut tasks_on = vec![0usize; procs];
            for &p in &placement.proc_of {
                tasks_on[p] += 1;
            }
            println!(
                "placement: {} per processor; lowered to {} step(s)",
                tasks_on
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
                lowered.program.len()
            );
            println!("{}", pred.summary());
            Ok(())
        }
        other => Err(format!(
            "unknown dag subcommand '{other}' (expected gen, check, or run)"
        )),
    }
}

/// Largest processor count `dag-sweep` (and `/v1/speedup`) will simulate.
const MAX_SWEEP_PROCS: usize = 64;

fn cmd_dag_sweep(args: &Args) -> Result<(), String> {
    let raw = args
        .positional
        .first()
        .ok_or("dag-sweep: missing DAG (a file or a gen SPEC)")?;
    let dag = load_dag(raw)?;
    let procs = predsim_dag::parse_procs(
        args.value("procs")
            .ok_or("dag-sweep: missing --procs N or A..B")?,
        MAX_SWEEP_PROCS,
    )?;
    let kind = SchedulerKind::parse(args.value("scheduler").unwrap_or("heft"))?;
    let mname = args.value("machine").unwrap_or("meiko");
    let max = *procs
        .last()
        .expect("parse_procs never returns an empty range");
    let spec = machine_spec(mname, max)?;
    let report = predsim_dag::sweep(&dag, kind, mname, &spec, &procs)?;
    if args.flag("json") {
        println!("{}", report.to_value().to_compact());
        return Ok(());
    }
    println!(
        "{}: {} task(s), {} edge(s); {} scheduler on {}",
        report.dag, report.tasks, report.edges, report.scheduler, report.machine
    );
    let mut table = Table::new(["procs", "total (s)", "speedup", "efficiency"]);
    for p in &report.points {
        table.row([
            p.procs.to_string(),
            secs(p.total),
            format!("{:.2}x", p.speedup_permille as f64 / 1000.0),
            format!("{:.1}%", p.efficiency_permille as f64 / 10.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "T(1) = {} s; knee at P={} (largest swept count at >= 50% efficiency)",
        secs(report.t1),
        report.knee
    );
    Ok(())
}

/// Parse a batch SOURCE argument: a generator spec (`ge:`, `cannon:`,
/// `stencil:`, `apsp:` — the shared grammar of [`JobSource::parse_spec`])
/// or a trace file path.
fn parse_source(raw: &str) -> Result<(String, JobSource), String> {
    match JobSource::parse_spec(raw)? {
        Some(source) => Ok((raw.to_string(), source)),
        None => {
            let program = load_trace(raw)?;
            Ok((raw.to_string(), JobSource::Program(Arc::new(program))))
        }
    }
}

/// `check --explain CODE`: print the one-paragraph rationale for one
/// diagnostic code (no sources needed).
fn explain_code(raw: &str) -> Result<(), String> {
    let wanted = raw.trim().to_ascii_uppercase();
    let code = Code::ALL
        .iter()
        .find(|c| c.as_str() == wanted)
        .ok_or_else(|| {
            let known: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
            format!("unknown code '{raw}'; known codes: {}", known.join(", "))
        })?;
    println!("{}: {}", code.as_str(), code.description());
    println!();
    println!("{}", code.explain());
    Ok(())
}

fn cmd_check(args: &Args) -> Result<ExitCode, String> {
    if let Some(raw) = args.value("explain") {
        explain_code(raw)?;
        return Ok(ExitCode::SUCCESS);
    }
    if args.positional.is_empty() {
        return Err(
            "check: no sources given (trace files or ge:/cannon:/stencil:/apsp: specs)".into(),
        );
    }
    let as_json = args.flag("json");
    let with_bounds = args.flag("bounds");
    let algo = if args.flag("worst-case") {
        CommAlgo::WorstCase
    } else {
        CommAlgo::Standard
    };
    let plan = fault_plan(args)?;

    let mut any_error = false;
    let mut any_warning = false;
    let mut sources = Vec::new();
    for raw in &args.positional {
        let (name, source) = parse_source(raw)?;
        let mut bounds = None;
        let mut bounds_unavailable = "";
        // An infeasible spec is itself a diagnostic (the same PS0501 the
        // engine's pre-run gate and the serve API report), not a CLI
        // error: `check --json` always yields a parseable document.
        let report = match source.validate() {
            Err(why) => {
                let mut report = Report::new();
                report.push(
                    Diagnostic::new(
                        Code::BadJobSpec,
                        Severity::Error,
                        Span::program(),
                        format!("job spec cannot produce a program: {why}"),
                    )
                    .with_note("the generator would panic on these inputs; fix the spec"),
                );
                bounds_unavailable = "infeasible spec";
                report
            }
            Ok(()) => {
                let program = source.build();
                if !as_json {
                    println!(
                        "checking {name} (P={}, {} step(s))",
                        program.procs(),
                        program.len()
                    );
                }
                let params = machine(args.value("machine").unwrap_or("meiko"), program.procs())?;
                let mut opts = LintOptions::default().with_params(params).with_algo(algo);
                if let Some(plan) = &plan {
                    opts = opts.with_fault_windows(
                        plan.spec()
                            .fails
                            .iter()
                            .map(|f| FaultWindow {
                                proc: f.proc,
                                step: f.step,
                            })
                            .collect(),
                    );
                    if args.flag("strict") {
                        opts = opts.with_strict_faults();
                    }
                }
                if with_bounds {
                    if plan.is_some() {
                        bounds_unavailable = "fault injection voids the static bounds";
                    } else {
                        let bcfg = BoundsConfig::new(params);
                        bounds = analyze(&ProgramView::of(&program), &bcfg);
                        if bounds.is_none() {
                            bounds_unavailable = "program is malformed";
                        }
                    }
                }
                check_program(&program, &opts)
            }
        };
        any_error |= report.has_errors();
        any_warning |= report.count(Severity::Warning) > 0;
        if as_json {
            let mut obj = vec![
                ("name".into(), json::Value::Str(name)),
                ("report".into(), report.to_value()),
            ];
            if with_bounds {
                match &bounds {
                    Some(b) => obj.push(("bounds".into(), b.to_value())),
                    None => obj.push((
                        "bounds_unavailable".into(),
                        json::Value::Str(bounds_unavailable.into()),
                    )),
                }
            }
            sources.push(json::Value::Object(obj));
        } else {
            print!("{}", report.render());
            if with_bounds {
                match &bounds {
                    Some(b) => println!("{}", b.render()),
                    None => println!("static bounds unavailable: {bounds_unavailable}"),
                }
            }
            println!();
        }
    }
    if as_json {
        let doc = json::Value::Object(vec![
            ("version".into(), json::Value::Int(1)),
            ("sources".into(), json::Value::Array(sources)),
        ]);
        println!("{}", doc.to_pretty());
    }
    if any_error || (args.flag("strict") && any_warning) {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_batch(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err(
            "batch: no sources given (trace files or ge:/cannon:/stencil:/apsp: specs)".into(),
        );
    }
    let sources: Vec<(String, JobSource)> = args
        .positional
        .iter()
        .map(|s| parse_source(s))
        .collect::<Result<_, _>>()?;
    let machines: Vec<&str> = args
        .value("machine")
        .unwrap_or("meiko")
        .split(',')
        .collect();
    let plan = fault_plan(args)?;

    // Machine params depend on each source's processor count, so the grid
    // is expanded here rather than via `predsim_engine::Grid`.
    let mut specs = Vec::with_capacity(sources.len() * machines.len());
    for mname in &machines {
        for (label, source) in &sources {
            let params = machine(mname, source.procs())?;
            let mut opts = SimOptions::new(SimConfig::new(params));
            if args.flag("worst-case") {
                opts = opts.worst_case();
            }
            if args.flag("barrier") {
                opts = opts.with_barrier();
            }
            if args.flag("overlap") {
                opts = opts.with_overlap();
            }
            if args.flag("classic-gap") {
                opts.cfg = opts.cfg.with_classic_gap_rule();
            }
            let mut spec = JobSpec::new(format!("{label} @ {mname}"), source.clone(), opts);
            if let Some(plan) = &plan {
                spec = spec.with_faults(plan.clone());
            }
            specs.push(spec);
        }
    }

    let engine = Engine::new(engine_config(args)?);
    let (journal, restored) = open_journal(args)?;
    let results = engine
        .run_checked_resumable(&specs, journal.as_ref(), &restored)
        .map_err(|e| e.to_string())?;

    println!(
        "{} jobs on {} worker(s)",
        results.len(),
        engine.config().effective_jobs()
    );
    let stats = engine.stats();
    if engine.config().memo {
        println!(
            "memo cache: {} hits / {} misses ({:.0}% hit rate), {} evictions",
            stats.hits,
            stats.misses,
            100.0 * stats.hit_rate(),
            stats.evictions
        );
    }
    report_results(args, &results, plan.as_ref())?;
    write_engine_metrics(args, &engine)?;
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut config = ServeConfig {
        addr: args.value("addr").unwrap_or("127.0.0.1:9100").to_string(),
        engine: engine_config(args)?,
        ..ServeConfig::default()
    };
    if let Some(v) = args.value("workers") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => config.workers = n,
            Ok(_) => return Err("--workers must be at least 1".into()),
            Err(e) => return Err(format!("bad --workers: {e}")),
        }
    }
    if let Some(v) = args.value("queue-cap") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => config.queue_cap = n,
            Ok(_) => return Err("--queue-cap must be at least 1".into()),
            Err(e) => return Err(format!("bad --queue-cap: {e}")),
        }
    }
    if let Some(v) = args.value("request-timeout") {
        match v.parse::<u64>() {
            Ok(s) if s >= 1 => config.request_timeout = Duration::from_secs(s),
            Ok(_) => return Err("--request-timeout must be at least 1 second".into()),
            Err(e) => return Err(format!("bad --request-timeout: {e}")),
        }
    }
    for (flag, slot) in [
        ("replay-at", &mut config.replay_at),
        ("static-at", &mut config.static_at),
    ] {
        if let Some(v) = args.value(flag) {
            match v.parse::<usize>() {
                Ok(n) => *slot = Some(n),
                Err(e) => return Err(format!("bad --{flag}: {e}")),
            }
        }
    }
    if let Some(v) = args.value("stall-timeout") {
        match v.parse::<u64>() {
            Ok(ms) if ms >= 1 => config.stall_timeout = Duration::from_millis(ms),
            Ok(_) => return Err("--stall-timeout must be at least 1 ms".into()),
            Err(e) => return Err(format!("bad --stall-timeout: {e}")),
        }
    }
    if let Some(spec) = args.value("chaos") {
        let spec = ChaosSpec::parse(spec).map_err(|e| format!("bad --chaos: {e}"))?;
        let seed = match args.value("chaos-seed") {
            Some(v) => v.parse().map_err(|e| format!("bad --chaos-seed: {e}"))?,
            None => 1,
        };
        println!("chaos enabled: {spec} (seed {seed})");
        config.chaos = Some(ChaosPlan::new(spec, seed));
    } else if args.value("chaos-seed").is_some() {
        return Err("--chaos-seed only makes sense together with --chaos".into());
    }
    if let Some(path) = args.value("checkpoint") {
        config.journal = Some(path.into());
    }
    if let Some(path) = args.value("presets") {
        let names = loggp::registry::register_file(path)
            .map_err(|e| format!("loading presets from {path}: {e}"))?;
        println!(
            "loaded {} preset(s) from {path}: {}",
            names.len(),
            names.join(", ")
        );
    }

    let handle = Server::start(config).map_err(|e| format!("starting server: {e}"))?;
    // The listening line is a contract: scripts (and the repo's own
    // tests) wait for it before sending requests.
    println!("predsim-serve listening on http://{}", handle.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    handle.wait_for_drain_request();
    println!("drain requested; finishing admitted work");
    let report = handle.drain();
    if let Some(file) = args.value("metrics-out") {
        std::fs::write(file, report.metrics.to_prometheus())
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote metrics to {file}");
    }
    println!("drained cleanly");
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    let sub = args
        .positional
        .first()
        .ok_or("faults: expected a subcommand (try 'faults explain SPEC')")?;
    if sub != "explain" {
        return Err(format!("unknown faults subcommand '{sub}' (try 'explain')"));
    }
    let text = args
        .positional
        .get(1)
        .ok_or("faults explain: missing SPEC (e.g. 'drop:0.1,fail:3@12+5000')")?;
    let spec = FaultSpec::parse(text)?;
    let seed = match args.value("seed") {
        None => 0,
        Some(v) => v.parse::<u64>().map_err(|e| format!("bad --seed: {e}"))?,
    };
    let dim = |name: &str, default: usize| -> Result<usize, String> {
        match args.value(name) {
            None => Ok(default),
            Some(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                Ok(_) => Err(format!("--{name} must be at least 1")),
                Err(e) => Err(format!("bad --{name}: {e}")),
            },
        }
    };
    let steps = dim("steps", 16)?;
    let procs = dim("procs", 8)?;
    print!("{}", FaultPlan::new(spec, seed).explain(steps, procs));
    Ok(())
}

fn cmd_fit(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("fit: missing data file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut samples = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (b, t) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected 'bytes,us'", no + 1))?;
        let bytes: usize = b
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", no + 1))?;
        let us: f64 = t
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", no + 1))?;
        samples.push((bytes, Time::from_us(us)));
    }
    if samples.len() < 2 {
        return Err("need at least two samples".into());
    }
    let fit = loggp::fit::fit_point_to_point(&samples);
    println!("samples: {}", samples.len());
    println!(
        "fitted G        : {:.4} us/byte",
        fit.gap_per_byte.as_us_f64()
    );
    println!("fitted 2o + L   : {} ", fit.endpoint);
    println!("rms residual    : {}", fit.rms_residual);
    println!(
        "(supply o and g from CPU-occupancy / burst measurements, then\n loggp::fit::assemble builds the full parameter set)"
    );
    Ok(())
}

/// The emulated-testbed configuration for `emulate`/`calibrate`: the
/// full effect stack (cache, jitter, contention, local copies) layered
/// on the chosen LogGP preset.
fn emulator_config(args: &Args, procs: usize) -> Result<machine::EmulatorConfig, String> {
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    Ok(machine::EmulatorConfig::meiko_like(SimConfig::new(params)))
}

fn measure_config(args: &Args, procs: usize) -> Result<predsim_calib::MeasureConfig, String> {
    let runs: usize = match args.value("runs") {
        None => 1,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            Ok(_) => return Err("--runs must be at least 1".into()),
            Err(e) => return Err(format!("bad --runs: {e}")),
        },
    };
    let base_seed: u64 = match args.value("base-seed") {
        None => 0,
        Some(v) => v.parse().map_err(|e| format!("bad --base-seed: {e}"))?,
    };
    Ok(predsim_calib::MeasureConfig {
        ecfg: emulator_config(args, procs)?,
        base_seed,
        runs,
        faults: fault_plan(args)?,
    })
}

fn cmd_emulate(args: &Args) -> Result<(), String> {
    let raw = args
        .positional
        .first()
        .ok_or("emulate: missing SOURCE (a trace file or a ge:/cannon:/stencil:/apsp: spec)")?;
    let (name, source) = parse_source(raw)?;
    source
        .validate()
        .map_err(|why| format!("source '{name}': {why}"))?;
    let (program, loads) = source.build_loaded();
    let cfg = measure_config(args, program.procs())?;
    let machine_label = args.value("machine").unwrap_or("meiko");

    let set = predsim_calib::measure(&program, &loads, &name, machine_label, &cfg);
    println!(
        "emulated {} on {} ({} run(s), base seed {})",
        name, machine_label, cfg.runs, cfg.base_seed
    );
    if let Some(plan) = &cfg.faults {
        println!("fault plan: {} (seed {})", plan.spec(), plan.seed());
    }
    let lo = set.runs.iter().map(|r| r.total).min().unwrap_or(Time::ZERO);
    let hi = set.runs.iter().map(|r| r.total).max().unwrap_or(Time::ZERO);
    for r in &set.runs {
        println!("  seed {:>4}: {} s", r.seed, secs(r.total));
    }
    println!("measured total: min {} s, max {} s", secs(lo), secs(hi));
    if let Some(file) = args.value("measure-out") {
        std::fs::write(file, set.to_jsonl()?).map_err(|e| format!("writing {file}: {e}"))?;
        println!(
            "wrote {} run(s) x {} step(s) to {file}",
            set.runs.len(),
            set.step_count()?
        );
    }
    Ok(())
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let raw = args.positional.first().ok_or(
        "calibrate: missing SOURCE (a measured JSONL file from 'emulate --measure-out', \
         a trace file, or a ge:/cannon:/stencil:/apsp: spec)",
    )?;

    // A measured file carries everything; a live source is emulated here.
    let (set, program) = match std::fs::read_to_string(raw) {
        Ok(text) if predsim_calib::MeasuredSet::sniff(&text) => {
            if args.value("runs").is_some() || args.value("faults").is_some() {
                return Err(
                    "--runs/--faults apply to live emulation, not to a recorded measured file"
                        .into(),
                );
            }
            let set = predsim_calib::MeasuredSet::parse_jsonl(&text)
                .map_err(|e| format!("{raw}: {e}"))?;
            let (name, source) = parse_source(&set.source)?;
            source
                .validate()
                .map_err(|why| format!("recorded source '{name}': {why}"))?;
            let (program, _) = source.build_loaded();
            println!(
                "calibrating against {} ({} recorded run(s) of '{}' on '{}')",
                raw,
                set.runs.len(),
                set.source,
                set.machine
            );
            (set, program)
        }
        _ => {
            let (name, source) = parse_source(raw)?;
            source
                .validate()
                .map_err(|why| format!("source '{name}': {why}"))?;
            let (program, loads) = source.build_loaded();
            let mut margs = measure_config(args, program.procs())?;
            if args.value("runs").is_none() {
                margs.runs = 8;
            }
            let machine_label = args.value("machine").unwrap_or("meiko");
            println!(
                "emulating {} on {} ({} run(s), base seed {})",
                name, machine_label, margs.runs, margs.base_seed
            );
            if let Some(plan) = &margs.faults {
                println!("fault plan: {} (seed {})", plan.spec(), plan.seed());
            }
            let set = predsim_calib::measure(&program, &loads, &name, machine_label, &margs);
            (set, program)
        }
    };

    let initial = machine(args.value("machine").unwrap_or("meiko"), set.procs)?;
    let mut fit_cfg = predsim_calib::FitConfig::new(initial);
    if let Some(v) = args.value("holdout") {
        fit_cfg.holdout = v.parse().map_err(|e| format!("bad --holdout: {e}"))?;
    }
    if let Some(v) = args.value("max-rounds") {
        fit_cfg.max_rounds = v.parse().map_err(|e| format!("bad --max-rounds: {e}"))?;
    }

    let engine = Engine::new(EngineConfig::default());
    let report = predsim_calib::calibrate(&program, &set, &engine, &fit_cfg)?;

    let p = report.params;
    println!("fitted machine:");
    println!("  L = {:.3} us", p.latency.as_us_f64());
    println!("  o = {:.3} us", p.overhead.as_us_f64());
    println!("  g = {:.3} us", p.gap.as_us_f64());
    println!("  G = {:.5} us/byte", p.gap_per_byte.as_us_f64());
    println!(
        "fit: rmse {} | objective {} | {} round(s), {} evaluation(s) ({} unique)",
        report.rmse, report.objective, report.rounds, report.evaluations, report.unique_evaluations
    );
    println!(
        "bracket ({} run(s), {}): {}/{} inside [std {} s, wc {} s] — {:.1}%",
        report.bracket.total,
        if report.holdout_runs > 0 {
            "held out"
        } else {
            "training"
        },
        report.bracket.hits,
        report.bracket.total,
        secs(report.bracket.std_total),
        secs(report.bracket.wc_total),
        100.0 * report.bracket.hit_rate(),
    );

    if let Some(file) = args.value("metrics-out") {
        let registry = Registry::new();
        predsim_calib::export_metrics(&registry, &report);
        std::fs::write(file, registry.render_prometheus())
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote metrics to {file}");
    }

    if !report.converged {
        return Err(format!(
            "fit did not converge within {} round(s)",
            fit_cfg.max_rounds
        ));
    }
    if let Some(v) = args.value("min-hit-rate") {
        let min: f64 = v.parse().map_err(|e| format!("bad --min-hit-rate: {e}"))?;
        if !(0.0..=1.0).contains(&min) {
            return Err("--min-hit-rate must be within 0..=1".into());
        }
        if report.bracket.hit_rate() < min {
            return Err(format!(
                "bracket hit rate {:.3} is below the required {min}",
                report.bracket.hit_rate()
            ));
        }
    }

    match (args.value("out"), args.value("name")) {
        (None, None) => {}
        (Some(_), None) | (None, Some(_)) => {
            return Err("--out and --name go together (a preset needs both)".into())
        }
        (Some(file), Some(name)) => {
            let mut presets = if std::path::Path::new(file).exists() {
                loggp::registry::load_file(file)?
            } else {
                Vec::new()
            };
            if presets.iter().any(|e| e.name == name) {
                return Err(format!("preset file {file} already has a preset '{name}'"));
            }
            loggp::registry::check_name(name)?;
            presets.push(loggp::registry::NamedPreset {
                name: name.to_string(),
                params: report.params,
            });
            loggp::registry::save_file(file, &presets)?;
            println!("saved preset '{name}' to {file} (use --machine @{file}:{name})");
        }
    }
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first() else {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };
    let spec: Vec<FlagSpec> = match cmd.as_str() {
        "simulate" => SIM_FLAGS.to_vec(),
        "check" => vec![
            valued("machine"),
            switch("worst-case"),
            switch("json"),
            switch("strict"),
            switch("bounds"),
            valued("explain"),
            valued("faults"),
            valued("seed"),
        ],
        "gantt" => {
            let mut s = SIM_FLAGS.to_vec();
            s.extend([valued("step"), valued("svg")]);
            s
        }
        "trace" => {
            let mut s = SIM_FLAGS.to_vec();
            s.extend([
                valued("faults"),
                valued("seed"),
                valued("trace-out"),
                valued("metrics-out"),
            ]);
            s
        }
        "ge-sweep" => {
            let mut s = vec![
                valued("n"),
                valued("procs"),
                valued("machine"),
                valued("layout"),
                valued("blocks"),
                switch("prefilter"),
            ];
            s.extend(BATCH_FLAGS);
            s
        }
        "machine-sweep" => vec![
            valued("machines"),
            switch("worst-case"),
            switch("barrier"),
            switch("overlap"),
            switch("classic-gap"),
            switch("verify"),
        ],
        "dag" => vec![
            valued("out"),
            valued("procs"),
            valued("scheduler"),
            valued("machine"),
        ],
        "dag-sweep" => vec![
            valued("procs"),
            valued("scheduler"),
            valued("machine"),
            switch("json"),
        ],
        "batch" => {
            let mut s = SIM_FLAGS.to_vec();
            s.extend(BATCH_FLAGS);
            s
        }
        "serve" => vec![
            valued("addr"),
            valued("workers"),
            valued("queue-cap"),
            valued("request-timeout"),
            switch("no-memo"),
            valued("job-budget"),
            valued("retries"),
            valued("checkpoint"),
            valued("metrics-out"),
            valued("presets"),
            valued("replay-at"),
            valued("static-at"),
            valued("stall-timeout"),
            valued("chaos"),
            valued("chaos-seed"),
        ],
        "faults" => vec![valued("seed"), valued("steps"), valued("procs")],
        "emulate" => vec![
            valued("runs"),
            valued("machine"),
            valued("base-seed"),
            valued("faults"),
            valued("seed"),
            valued("measure-out"),
        ],
        "calibrate" => vec![
            valued("runs"),
            valued("machine"),
            valued("base-seed"),
            valued("holdout"),
            valued("max-rounds"),
            valued("min-hit-rate"),
            valued("out"),
            valued("name"),
            valued("faults"),
            valued("seed"),
            valued("metrics-out"),
        ],
        _ => Vec::new(),
    };
    let args = Args::parse(&raw[1..], &spec)?;
    if cmd == "check" {
        return cmd_check(&args);
    }
    match cmd.as_str() {
        "presets" => cmd_presets(),
        "simulate" => cmd_simulate(&args),
        "gantt" => cmd_gantt(&args),
        "trace" => cmd_trace(&args),
        "ge-sweep" => cmd_ge_sweep(&args),
        "machine-sweep" => cmd_machine_sweep(&args),
        "dag" => cmd_dag(&args),
        "dag-sweep" => cmd_dag_sweep(&args),
        "batch" => cmd_batch(&args),
        "serve" => cmd_serve(&args),
        "faults" => cmd_faults(&args),
        "fit" => cmd_fit(&args),
        "emulate" => cmd_emulate(&args),
        "calibrate" => cmd_calibrate(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
    .map(|()| ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
