//! `predsim` — the command-line front end.
//!
//! ```text
//! predsim presets                      list machine presets
//! predsim simulate TRACE [options]     predict a text-format trace
//! predsim gantt TRACE --step N         ASCII/SVG Gantt of one step
//! predsim ge-sweep [options]           block-size sweep for blocked GE
//! predsim fit CSV                      fit LogGP params from ping data
//! ```
//!
//! Argument parsing is deliberately hand-rolled (the workspace carries no
//! CLI dependency); see `predsim help` for the full usage text.

use predsim::predsim_core::report::{secs, Table};
use predsim::predsim_core::{search, textfmt};
use predsim::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "\
predsim — trace-driven LogGP running-time prediction (Rugina & Schauser, IPPS'98)

USAGE:
  predsim presets
      List the built-in machine presets.

  predsim simulate TRACE [--machine NAME] [--worst-case] [--barrier] [--overlap]
                         [--classic-gap]
      Parse a text-format trace (see predsim_core::textfmt) and predict it.

  predsim gantt TRACE --step N [--machine NAME] [--svg FILE] [--worst-case]
      Render the send/receive schedule of step N (1-based) of the trace.

  predsim ge-sweep [--n N] [--procs P] [--machine NAME] [--layout L] [--blocks A,B,...]
      Sweep block sizes for blocked Gaussian elimination and report the
      predicted optimum (layouts: diagonal, row, col; default n=960 P=8).

  predsim fit FILE
      Least-squares fit of LogGP G and 2o+L from 'bytes,microseconds'
      lines (comments with '#').

Machines: meiko (default), paragon, myrinet, ethernet, ideal.
";

fn machine(name: &str, procs: usize) -> Result<loggp::LogGpParams, String> {
    Ok(match name {
        "meiko" => presets::meiko_cs2(procs),
        "paragon" => presets::intel_paragon(procs),
        "myrinet" => presets::myrinet_cluster(procs),
        "ethernet" => presets::ethernet_cluster(procs),
        "ideal" => presets::ideal(procs),
        other => return Err(format!("unknown machine '{other}'")),
    })
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .map(|v| (*v).clone());
                if value.is_some() {
                    it.next();
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn cmd_presets() -> Result<(), String> {
    let mut t = Table::new(["name", "L (us)", "o (us)", "g (us)", "G (us/B)", "bandwidth"]);
    for preset in presets::all(8) {
        let p = preset.params;
        let bw = p.bandwidth_bytes_per_sec();
        t.row([
            preset.name.to_string(),
            format!("{:.2}", p.latency.as_us_f64()),
            format!("{:.2}", p.overhead.as_us_f64()),
            format!("{:.2}", p.gap.as_us_f64()),
            format!("{:.3}", p.gap_per_byte.as_us_f64()),
            if bw.is_finite() { format!("{:.1} MB/s", bw / 1e6) } else { "inf".into() },
        ]);
    }
    println!("{}", t.render());
    Ok(())
}

fn load_trace(path: &str) -> Result<predsim::predsim_core::Program, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    textfmt::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn sim_options(args: &Args, procs: usize) -> Result<SimOptions, String> {
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    let mut opts = SimOptions::new(SimConfig::new(params));
    if args.flag("worst-case") {
        opts = opts.worst_case();
    }
    if args.flag("barrier") {
        opts = opts.with_barrier();
    }
    if args.flag("overlap") {
        opts = opts.with_overlap();
    }
    if args.flag("classic-gap") {
        opts.cfg = opts.cfg.with_classic_gap_rule();
    }
    Ok(opts)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("simulate: missing TRACE file")?;
    let prog = load_trace(path)?;
    let opts = sim_options(args, prog.procs())?;
    let pred = simulate_program(&prog, &opts);
    println!("machine: {}", opts.cfg.params);
    println!("{}", pred.summary());
    println!("\n{}", pred.per_proc_table());
    let slow = pred.slowest_comm_steps(5);
    if !slow.is_empty() {
        println!("slowest communication steps:");
        for (label, span) in slow {
            println!("  {label}: {span}");
        }
    }
    Ok(())
}

fn cmd_gantt(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("gantt: missing TRACE file")?;
    let step_no: usize = args
        .value("step")
        .ok_or("gantt: missing --step N")?
        .parse()
        .map_err(|e| format!("bad --step: {e}"))?;
    let prog = load_trace(path)?;
    let step = prog
        .steps()
        .get(step_no.checked_sub(1).ok_or("--step is 1-based")?)
        .ok_or_else(|| format!("trace has {} steps", prog.len()))?;
    if step.comm.is_empty() {
        return Err(format!("step {step_no} ('{}') has no communication", step.label));
    }
    let opts = sim_options(args, prog.procs())?;
    let result = if args.flag("worst-case") {
        worstcase::simulate(&step.comm, &opts.cfg)
    } else {
        standard::simulate(&step.comm, &opts.cfg)
    };
    if let Some(file) = args.value("svg") {
        std::fs::write(file, commsim::gantt::render_svg(&result.timeline, 800))
            .map_err(|e| format!("writing {file}: {e}"))?;
        println!("wrote {file}");
    } else {
        print!("{}", commsim::gantt::render(&result.timeline, 100));
    }
    Ok(())
}

fn cmd_ge_sweep(args: &Args) -> Result<(), String> {
    let n: usize =
        args.value("n").unwrap_or("960").parse().map_err(|e| format!("bad --n: {e}"))?;
    let procs: usize =
        args.value("procs").unwrap_or("8").parse().map_err(|e| format!("bad --procs: {e}"))?;
    let layout: Box<dyn Layout> = match args.value("layout").unwrap_or("diagonal") {
        "diagonal" => Box::new(Diagonal::new(procs)),
        "row" => Box::new(RowCyclic::new(procs)),
        "col" => Box::new(ColCyclic::new(procs)),
        other => return Err(format!("unknown layout '{other}'")),
    };
    let blocks: Vec<usize> = match args.value("blocks") {
        Some(s) => s
            .split(',')
            .map(|t| t.trim().parse().map_err(|e| format!("bad block '{t}': {e}")))
            .collect::<Result<_, _>>()?,
        None => gauss::PAPER_BLOCK_SIZES.iter().copied().filter(|b| n.is_multiple_of(*b)).collect(),
    };
    if blocks.is_empty() {
        return Err("no candidate block sizes divide n".into());
    }
    for &b in &blocks {
        if !n.is_multiple_of(b) {
            return Err(format!("block {b} does not divide n={n}"));
        }
    }
    let params = machine(args.value("machine").unwrap_or("meiko"), procs)?;
    let cfg = SimConfig::new(params);
    let cost = AnalyticCost::paper_default();

    println!("blocked GE, n={n}, {} layout, P={procs}, {}", layout.name(), params);
    let mut table = Table::new(["block", "predicted (s)", "comp (s)", "comm (s)"]);
    let result = search::sweep(&blocks, |b| {
        let trace = gauss::generate(n, b, layout.as_ref(), &cost);
        let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
        table.row([
            b.to_string(),
            secs(pred.total),
            secs(pred.comp_time),
            secs(pred.comm_time),
        ]);
        pred.total
    });
    println!("{}", table.render());
    println!("predicted optimum: B={} at {} s", result.best, secs(result.best_time));
    Ok(())
}

fn cmd_fit(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("fit: missing data file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut samples = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (b, t) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected 'bytes,us'", no + 1))?;
        let bytes: usize =
            b.trim().parse().map_err(|e| format!("line {}: {e}", no + 1))?;
        let us: f64 = t.trim().parse().map_err(|e| format!("line {}: {e}", no + 1))?;
        samples.push((bytes, Time::from_us(us)));
    }
    if samples.len() < 2 {
        return Err("need at least two samples".into());
    }
    let fit = loggp::fit::fit_point_to_point(&samples);
    println!("samples: {}", samples.len());
    println!("fitted G        : {:.4} us/byte", fit.gap_per_byte.as_us_f64());
    println!("fitted 2o + L   : {} ", fit.endpoint);
    println!("rms residual    : {}", fit.rms_residual);
    println!(
        "(supply o and g from CPU-occupancy / burst measurements, then\n loggp::fit::assemble builds the full parameter set)"
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "presets" => cmd_presets(),
        "simulate" => cmd_simulate(&args),
        "gantt" => cmd_gantt(&args),
        "ge-sweep" => cmd_ge_sweep(&args),
        "fit" => cmd_fit(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
