//! Cross-crate integration tests: the full pipeline from application trace
//! through prediction and emulation, for all three applications.

use predsim::prelude::*;

/// Blocked GE: trace → predict → emulate, plus the real threaded execution
/// agreeing with the sequential factorization.
#[test]
fn gauss_full_pipeline() {
    let procs = 4;
    let (n, b) = (48, 8);
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let trace = gauss::generate(n, b, &layout, &cost);
    let cfg = SimConfig::new(presets::meiko_cs2(procs));

    let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
    assert!(pred.total > pred.comp_time);
    assert!(pred.comp_time > Time::ZERO);

    let meas = emulate(
        &trace.program,
        &trace.loads,
        &EmulatorConfig::meiko_like(cfg),
    );
    assert!(meas.prediction.total >= pred.comp_time);
    assert!(meas.cache_misses > 0);

    // Real parallel execution validates the schedule numerically.
    let a = Matrix::random_diag_dominant(n, 42);
    let run = gauss::parallel::factorize(&a, b, &layout);
    let mut want = a.clone();
    predsim::blockops::lu::lu_in_place(&mut want).unwrap();
    assert!(run.factored.approx_eq(&want, 1e-7));
}

/// The prediction is invariant to which equivalent machine representation
/// runs it, and deterministic end to end.
#[test]
fn gauss_prediction_deterministic() {
    let layout = RowCyclic::new(4);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(4));
    let t1 = {
        let trace = gauss::generate(60, 10, &layout, &cost);
        simulate_program(&trace.program, &SimOptions::new(cfg)).total
    };
    let t2 = {
        let trace = gauss::generate(60, 10, &layout, &cost);
        simulate_program(&trace.program, &SimOptions::new(cfg)).total
    };
    assert_eq!(t1, t2);
}

/// Cannon: the worst-case algorithm survives the cyclic shifts (deadlock
/// breaking) and still upper-bounds the standard prediction end to end.
#[test]
fn cannon_cyclic_pipeline() {
    let cost = AnalyticCost::paper_default();
    let trace = cannon::generate(48, 4, &cost);
    let cfg = SimConfig::new(presets::meiko_cs2(16));
    let st = simulate_program(&trace.program, &SimOptions::new(cfg));
    let wc = simulate_program(&trace.program, &SimOptions::new(cfg).worst_case());
    assert!(wc.forced_sends > 0, "shifts are cyclic");
    assert!(wc.total >= st.total);

    let meas = emulate(
        &trace.program,
        &trace.loads,
        &EmulatorConfig::meiko_like(cfg),
    );
    // Local skew copies are charged by the emulator.
    assert!(meas.self_copy_time > Time::ZERO);
}

/// Stencil: prediction, emulation and numerics in one pass; more
/// processors means less predicted time until communication dominates.
#[test]
fn stencil_pipeline_and_scaling() {
    let ps = blockops::cost::DEFAULT_PS_PER_FLOP;
    let t = |procs: usize| {
        let trace = stencil::generate(128, procs, 4, ps);
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        simulate_program(&trace.program, &SimOptions::new(cfg)).total
    };
    assert!(t(2) < t(1));
    assert!(t(8) < t(2));

    let trace = stencil::generate(64, 4, 3, ps);
    let cfg = SimConfig::new(presets::meiko_cs2(4));
    let meas = emulate(
        &trace.program,
        &trace.loads,
        &EmulatorConfig::meiko_like(cfg),
    );
    assert!(meas.prediction.total > Time::ZERO);
}

/// The facade's prelude suffices for the README quickstart.
#[test]
fn prelude_compiles_quickstart() {
    let layout = Diagonal::new(8);
    let trace = gauss::generate(240, 24, &layout, &AnalyticCost::paper_default());
    let cfg = SimConfig::new(presets::meiko_cs2(8));
    let prediction = simulate_program(&trace.program, &SimOptions::new(cfg));
    assert!(prediction.total > Time::ZERO);
}

/// Every communication step of every application's trace passes the
/// independent LogGP validator under the standard algorithm.
#[test]
fn all_app_patterns_validate() {
    let cost = AnalyticCost::paper_default();
    let mut programs = vec![
        gauss::generate(48, 8, &Diagonal::new(4), &cost).program,
        gauss::generate(48, 8, &RowCyclic::new(4), &cost).program,
        cannon::generate(24, 2, &cost).program,
    ];
    programs.push(stencil::generate(32, 4, 2, 25_000).program);
    for prog in &programs {
        let cfg = SimConfig::new(presets::meiko_cs2(prog.procs()));
        for step in prog.steps() {
            if step.comm.is_empty() {
                continue;
            }
            let r = standard::simulate(&step.comm, &cfg);
            commsim::validate::validate(&step.comm, &cfg, &r.timeline)
                .unwrap_or_else(|e| panic!("step '{}': {e:?}", step.label));
        }
    }
}
