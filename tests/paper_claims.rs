//! Integration tests pinning the paper's concrete, quotable claims —
//! every numbered figure's qualitative content is asserted here against
//! the full pipeline (see EXPERIMENTS.md for the recorded numbers).

use predsim::prelude::*;

/// Figure 1: the extended gap rule separates all four pairings by g.
#[test]
fn fig1_extended_gap_rule() {
    let params = presets::meiko_cs2(8);
    for (_, _, sep) in loggp::gap::figure1_pairings(&params) {
        assert_eq!(sep, params.gap);
    }
}

/// Figure 4: on the reconstructed Figure 3 pattern, the standard
/// algorithm's schedule shows the paper's three observations.
#[test]
fn fig4_standard_schedule_observations() {
    let pattern = patterns::figure3();
    let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
    let r = standard::simulate(&pattern, &cfg);
    commsim::validate::validate(&pattern, &cfg, &r.timeline).unwrap();

    // (a) the step completes in the ~70 us range the paper reports (~76).
    assert!(
        r.finish > Time::from_us(60.0) && r.finish < Time::from_us(90.0),
        "{}",
        r.finish
    );

    // (b) "processor 7 terminates the last" (1-indexed) = P6 here.
    assert_eq!(r.timeline.critical_procs(), vec![6]);

    // (c) "processor 6 handles first the two receives before sending its
    // second message to processor 7": P5's op order is S, R, R, S with the
    // final send addressed to P6.
    let p5 = r.timeline.events_for(5);
    let kinds: Vec<_> = p5.iter().map(|e| e.kind).collect();
    use loggp::OpKind::{Recv, Send};
    assert_eq!(kinds, vec![Send, Recv, Recv, Send]);
    assert_eq!(p5.last().unwrap().peer, 6);
}

/// Figure 5: the overestimation algorithm finishes strictly later than the
/// standard one on the sample pattern and needs no forced sends (acyclic).
#[test]
fn fig5_worstcase_overestimates() {
    let pattern = patterns::figure3();
    let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));
    let st = standard::simulate(&pattern, &cfg);
    let wc = worstcase::simulate(&pattern, &cfg);
    assert!(wc.finish > st.finish);
    assert_eq!(wc.forced_sends, 0);
}

/// Figure 6: the op-cost curves are nonlinear and cross — Op1 dearest for
/// small blocks, Op4 dearest (≈2x Op1) for large ones.
#[test]
fn fig6_cost_curves_cross() {
    let m = AnalyticCost::paper_default();
    let dearest = |b: usize| {
        OpClass::ALL
            .into_iter()
            .max_by_key(|&op| m.op_cost(op, b))
            .unwrap()
    };
    assert_eq!(dearest(10), OpClass::Op1);
    assert_eq!(dearest(160), OpClass::Op4);
    let ratio =
        m.op_cost(OpClass::Op4, 160).as_secs_f64() / m.op_cost(OpClass::Op1, 160).as_secs_f64();
    assert!(ratio > 1.4 && ratio < 2.4, "Op4/Op1 at B=160 = {ratio}");
}

/// Figures 7+8 joint claims on a reduced sweep (n=240 keeps tests fast):
/// the worst-case prediction upper-bounds the standard one; the emulated
/// "measured" series sits at or above the standard prediction; cache
/// effects only add time, relatively more at small block sizes.
#[test]
fn fig7_fig8_bracketing_and_cache() {
    let procs = 8;
    let n = 240;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));

    let mut cache_overhead_ratio = Vec::new();
    for b in [10, 24, 60, 120] {
        let trace = gauss::generate(n, b, &layout, &cost);
        let std_p = simulate_program(&trace.program, &SimOptions::new(cfg));
        let wc_p = simulate_program(&trace.program, &SimOptions::new(cfg).worst_case());
        let base = EmulatorConfig::meiko_like(cfg);
        let meas = emulate(&trace.program, &trace.loads, &base);
        let meas_nc = emulate(&trace.program, &trace.loads, &base.clone().without_cache());

        assert!(wc_p.total >= std_p.total, "B={b}");
        assert!(meas_nc.prediction.comm_time >= std_p.comm_time, "B={b}");
        assert!(meas.prediction.total >= meas_nc.prediction.total, "B={b}");
        cache_overhead_ratio
            .push(meas.prediction.total.as_secs_f64() / meas_nc.prediction.total.as_secs_f64());
    }
    // Cache distortion shrinks as blocks grow (paper: "differences ... for
    // small block sizes are due to the cache effects").
    assert!(
        cache_overhead_ratio.first().unwrap() > cache_overhead_ratio.last().unwrap(),
        "{cache_overhead_ratio:?}"
    );
}

/// §6.3: the diagonal mapping beats row-stripped cyclic, especially for
/// large blocks.
#[test]
fn layout_comparison_diagonal_wins() {
    let procs = 8;
    // n=480 keeps at least a 4x4 block grid at the largest block size
    // (degenerate grids with fewer blocks than processors are outside the
    // paper's operating range).
    let n = 480;
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let mut gaps = Vec::new();
    for b in [12, 30, 60, 120] {
        let d = simulate_program(
            &gauss::generate(n, b, &Diagonal::new(procs), &cost).program,
            &SimOptions::new(cfg),
        )
        .total;
        let r = simulate_program(
            &gauss::generate(n, b, &RowCyclic::new(procs), &cost).program,
            &SimOptions::new(cfg),
        )
        .total;
        assert!(d <= r, "B={b}: diagonal {d} > row-cyclic {r}");
        gaps.push(r.as_secs_f64() / d.as_secs_f64());
    }
    // "especially for large block sizes": the advantage grows.
    assert!(gaps.last().unwrap() > gaps.first().unwrap(), "{gaps:?}");
}

/// Figure 9: predicted computation time is close to "measured", which sits
/// slightly higher, and the gap grows as blocks shrink (iteration
/// overhead).
#[test]
fn fig9_computation_gap() {
    let procs = 8;
    let n = 240;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let ratio = |b: usize| {
        let trace = gauss::generate(n, b, &layout, &cost);
        let sim = simulate_program(&trace.program, &SimOptions::new(cfg)).comp_time;
        let meas = emulate(
            &trace.program,
            &trace.loads,
            &EmulatorConfig::meiko_like(cfg).without_cache(),
        )
        .prediction
        .comp_time;
        meas.as_secs_f64() / sim.as_secs_f64()
    };
    let small = ratio(10);
    let large = ratio(120);
    assert!(small >= large, "small-B gap {small} < large-B gap {large}");
    assert!(
        small > 1.0 && small < 1.3,
        "measured slightly above simulated, got {small}"
    );
    assert!(
        (1.0..1.05).contains(&large),
        "large blocks nearly exact, got {large}"
    );
}

/// The sweep has an interior optimum (the U shape of Figure 7), and the
/// predicted optimal block size achieves a near-optimal *measured* time —
/// the paper's bottom-line claim.
#[test]
fn predicted_optimum_is_near_real_optimum() {
    let procs = 8;
    let n = 240;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let blocks: Vec<usize> = [10, 12, 15, 20, 24, 30, 40, 60, 80, 120]
        .into_iter()
        .filter(|b| n % b == 0)
        .collect();

    let mut preds = Vec::new();
    let mut meas = Vec::new();
    for &b in &blocks {
        let trace = gauss::generate(n, b, &layout, &cost);
        preds.push((
            b,
            simulate_program(&trace.program, &SimOptions::new(cfg)).total,
        ));
        meas.push((
            b,
            emulate(
                &trace.program,
                &trace.loads,
                &EmulatorConfig::meiko_like(cfg),
            )
            .prediction
            .total,
        ));
    }
    // Interior optimum: neither endpoint is the predicted minimum.
    let best_pred = preds.iter().min_by_key(|(_, t)| *t).unwrap();
    assert_ne!(best_pred.0, *blocks.first().unwrap());
    assert_ne!(best_pred.0, *blocks.last().unwrap());

    // Picking the predicted B costs at most 5% over the measured optimum.
    let t_at_pred = meas.iter().find(|(b, _)| *b == best_pred.0).unwrap().1;
    let t_best = meas.iter().map(|(_, t)| *t).min().unwrap();
    let loss = t_at_pred.as_secs_f64() / t_best.as_secs_f64();
    assert!(
        loss < 1.05,
        "picking predicted B loses {:.1}%",
        (loss - 1.0) * 100.0
    );
}
