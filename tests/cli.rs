//! Integration tests for the `predsim` CLI binary.

use std::io::Write as _;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_predsim"))
}

fn tmp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("predsim-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const TRACE: &str = "\
program procs=2
step label=work
comp 100 50
step label=ship
msg 0 1 2048
";

#[test]
fn no_args_prints_usage() {
    let out = bin().output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"), "{text}");
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn presets_lists_machines() {
    let out = bin().arg("presets").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Meiko CS-2", "Intel Paragon", "ideal"] {
        assert!(text.contains(name), "{text}");
    }
}

#[test]
fn simulate_reports_prediction() {
    let path = tmp_file("trace.txt", TRACE);
    let out = bin()
        .args(["simulate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("total"), "{text}");
    assert!(text.contains("P0") && text.contains("P1"));
    assert!(text.contains("slowest communication steps"));
}

#[test]
fn simulate_flags_change_results() {
    let path = tmp_file("trace2.txt", TRACE);
    let run = |extra: &[&str]| {
        let mut cmd = bin();
        cmd.args(["simulate", path.to_str().unwrap(), "--machine", "ethernet"]);
        cmd.args(extra);
        let out = cmd.output().unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let normal = run(&[]);
    let worst = run(&["--worst-case"]);
    // Same trace, same machine, potentially different schedules — at
    // minimum both must report a total and the machine name.
    assert!(normal.contains("L=100.000us"));
    assert!(worst.contains("total"));
}

#[test]
fn classic_gap_flag_changes_prediction() {
    // A trace where one processor alternates receive/send: the extended
    // rule inserts a gap the classic rule does not.
    let trace = "program procs=3\nstep label=relay\nmsg 0 1 1\nmsg 1 2 1\nstep label=relay2\nmsg 0 1 1\nmsg 1 2 1\n";
    let path = tmp_file("relay.txt", trace);
    let run = |extra: &[&str]| {
        let mut cmd = bin();
        cmd.args(["simulate", path.to_str().unwrap()]);
        cmd.args(extra);
        let out = cmd.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.contains("total"))
            .unwrap()
            .to_string()
    };
    let extended = run(&[]);
    let classic = run(&["--classic-gap"]);
    assert_ne!(
        extended, classic,
        "gap rule must change the relay chain's total"
    );
}

#[test]
fn simulate_rejects_bad_trace() {
    let path = tmp_file("bad.txt", "step label=x\n");
    let out = bin()
        .args(["simulate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("'step' before"));
}

#[test]
fn gantt_renders_ascii_and_svg() {
    let path = tmp_file("trace3.txt", TRACE);
    let out = bin()
        .args(["gantt", path.to_str().unwrap(), "--step", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("completion:"), "{text}");

    let svg_path = tmp_file("out.svg", "");
    let out = bin()
        .args([
            "gantt",
            path.to_str().unwrap(),
            "--step",
            "2",
            "--svg",
            svg_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
}

#[test]
fn gantt_rejects_computation_only_step() {
    let path = tmp_file("trace4.txt", TRACE);
    let out = bin()
        .args(["gantt", path.to_str().unwrap(), "--step", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no communication"));
}

#[test]
fn ge_sweep_finds_optimum() {
    let out = bin()
        .args([
            "ge-sweep", "--n", "120", "--procs", "4", "--blocks", "10,20,40",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted optimum: B="), "{text}");
}

#[test]
fn ge_sweep_rejects_nondividing_blocks() {
    let out = bin()
        .args(["ge-sweep", "--n", "100", "--blocks", "7"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not divide"));
}

#[test]
fn check_is_clean_on_shipped_examples() {
    let out = bin()
        .args([
            "check",
            "ge:240,24,diagonal,8",
            "ge:240,24,row,8",
            "cannon:64,4",
            "stencil:64,8,4",
            "apsp:120,24,row,6",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "examples must be error-clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("checking ge:240,24,diagonal,8"), "{text}");
    assert!(text.contains("0 errors"), "{text}");
}

#[test]
fn check_flags_ring_deadlock_under_worst_case() {
    let out = bin()
        .args(["check", "tests/fixtures/ring.trace", "--worst-case"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap();
    assert!(!out.status.success(), "ring must fail under --worst-case");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[PS0201]"), "{text}");
    assert!(text.contains("P0 -> P1 -> P2 -> P3 -> P0"), "{text}");

    // The same ring is only a warning when checking for the standard
    // algorithm — and --strict promotes warnings to a failing exit.
    let out = bin()
        .args(["check", "tests/fixtures/ring.trace"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning[PS0201]"));

    let out = bin()
        .args(["check", "tests/fixtures/ring.trace", "--strict"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap();
    assert!(!out.status.success(), "--strict must fail on warnings");
}

#[test]
fn check_json_round_trips_through_documented_schema() {
    let out = bin()
        .args([
            "check",
            "tests/fixtures/ring.trace",
            "cannon:64,4",
            "--worst-case",
            "--json",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);

    // Top level: {"version": 1, "sources": [{"name", "report"}, ...]}.
    let doc = predsim::predsim_lint::json::parse(&text).expect("valid JSON");
    assert_eq!(
        doc.get("version").and_then(|v| v.as_int()),
        Some(1),
        "{text}"
    );
    let sources = doc
        .get("sources")
        .and_then(|v| v.as_array())
        .expect("sources array");
    assert_eq!(sources.len(), 2);
    assert_eq!(
        sources[0].get("name").and_then(|v| v.as_str()),
        Some("tests/fixtures/ring.trace")
    );

    // Each report round-trips losslessly through the library parser.
    for source in sources {
        let report_value = source.get("report").expect("report field");
        let report = predsim::predsim_lint::Report::from_value(report_value).unwrap();
        assert_eq!(report.to_value(), *report_value);
    }
    let ring =
        predsim::predsim_lint::Report::from_value(sources[0].get("report").unwrap()).unwrap();
    assert!(ring.has_errors());
    assert_eq!(
        ring.diagnostics()[0].code,
        predsim::predsim_lint::Code::DeadlockCycle
    );
}

#[test]
fn check_rejects_infeasible_specs() {
    let out = bin().args(["check", "ge:10,3,row,4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("BLOCK must divide N"));
}

#[test]
fn batch_rejects_invalid_trace_jobs_with_diagnostics() {
    // A trace that parses but trips the analyzer is impossible to build
    // via the text format (arities are validated at parse time), so batch
    // rejection is exercised through the library; here the CLI path just
    // confirms batch still runs clean sources through run_checked.
    let out = bin()
        .args(["batch", "cannon:32,4", "--jobs", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("cannon:32,4 @ meiko"));
}

#[test]
fn batch_accepts_apsp_sources() {
    let out = bin()
        .args(["batch", "apsp:60,20,diagonal,3", "--machine", "meiko,ideal"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("apsp:60,20,diagonal,3 @ meiko"), "{text}");
    assert!(text.contains("apsp:60,20,diagonal,3 @ ideal"), "{text}");
}

#[test]
fn trace_writes_strict_jsonl_and_metrics() {
    let events_path = tmp_file("events.jsonl", "");
    let metrics_path = tmp_file("trace-metrics.prom", "");
    let out = bin()
        .args([
            "trace",
            "ge:120,24,diagonal,4",
            "--trace-out",
            events_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("virtual-time horizon"), "{text}");
    assert!(text.contains("roughest step:"), "{text}");

    // Every emitted line must strict-parse with the workspace's own JSON
    // parser (integers/strings/bools only — the parser rejects anything
    // else, including u64::MAX timestamps, which cannot fit its i64 ints).
    let jsonl = std::fs::read_to_string(&events_path).unwrap();
    assert!(jsonl.lines().count() > 100, "expected a real event stream");
    for line in jsonl.lines() {
        let v = predsim::predsim_lint::json::parse(line)
            .unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        let ev = v.get("ev").and_then(|e| e.as_str()).expect("ev field");
        assert!(
            ["send", "recv", "gap_stall", "front"].contains(&ev),
            "unexpected event kind in {line}"
        );
    }
    assert!(
        !jsonl.contains("18446744073709551615"),
        "Time::MAX leaked into the trace"
    );

    let prom = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(
        prom.contains("# TYPE predsim_trace_events_total counter"),
        "{prom}"
    );
    assert!(prom.contains("predsim_predicted_total_ps"), "{prom}");
    assert!(prom.contains("predsim_horizon_max_spread_ps"), "{prom}");
}

#[test]
fn trace_total_matches_simulate() {
    // Tracing is purely observational: the predicted total reported by
    // `trace` equals what `simulate` reports on the same input.
    let path = tmp_file("traced.txt", TRACE);
    let total_line = |cmd: &str| {
        let out = bin().args([cmd, path.to_str().unwrap()]).output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("total "))
            .expect("summary line")
            .to_string()
    };
    assert_eq!(total_line("simulate"), total_line("trace"));
}

#[test]
fn ge_sweep_and_batch_export_prometheus_metrics() {
    let sweep_prom = tmp_file("sweep.prom", "");
    let out = bin()
        .args([
            "ge-sweep",
            "--n",
            "120",
            "--procs",
            "4",
            "--blocks",
            "10,20",
            "--metrics-out",
            sweep_prom.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = std::fs::read_to_string(&sweep_prom).unwrap();
    assert!(prom.contains("# TYPE engine_jobs_total counter"), "{prom}");
    assert!(prom.contains("engine_jobs_total 2"), "{prom}");
    assert!(prom.contains("engine_cache_hits"), "{prom}");

    let batch_prom = tmp_file("batch.prom", "");
    let out = bin()
        .args([
            "batch",
            "cannon:32,4",
            "--jobs",
            "1",
            "--metrics-out",
            batch_prom.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let prom = std::fs::read_to_string(&batch_prom).unwrap();
    assert!(prom.contains("engine_jobs_total 1"), "{prom}");
    assert!(prom.contains("engine_phase_simulate_ns"), "{prom}");
}

#[test]
fn fit_recovers_parameters() {
    // Synthetic Meiko samples: T(k) = 2o + L + (k-1)G = 21 - 0.03 + 0.03k us.
    let mut data = String::from("# bytes,us\n");
    for k in [64usize, 256, 1024, 4096] {
        let t = 21.0 - 0.03 + 0.03 * k as f64;
        data.push_str(&format!("{k},{t}\n"));
    }
    let path = tmp_file("ping.csv", &data);
    let out = bin()
        .args(["fit", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0.0300 us/byte"), "{text}");
    assert!(text.contains("21.000us"), "{text}");
}

#[test]
fn faults_explain_resolves_a_plan() {
    let out = bin()
        .args([
            "faults",
            "explain",
            "drop:0.2,fail:1@2+500",
            "--seed",
            "9",
            "--steps",
            "4",
            "--procs",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("seed 9"), "{text}");
    assert!(text.contains("fail-stop: P1 at step 2"), "{text}");
    assert!(text.contains("sample attempts"), "{text}");
}

#[test]
fn faults_explain_rejects_bad_specs() {
    let out = bin()
        .args(["faults", "explain", "drop:2.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("0..=1"));
}

#[test]
fn faulted_batch_is_reproducible_and_seeded() {
    let run = |seed: &str| {
        bin()
            .args([
                "batch",
                "cannon:32,4",
                "--jobs",
                "1",
                "--faults",
                "drop:0.3",
                "--seed",
                seed,
            ])
            .output()
            .unwrap()
    };
    let a = run("5");
    let b = run("5");
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(
        a.stdout, b.stdout,
        "same seed must reproduce bit-identically"
    );
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("fault plan: drop:0.3"), "{text}");
}

#[test]
fn batch_checkpoint_resume_is_identical_to_straight_through() {
    let journal = tmp_file("resume-journal.jsonl", "");
    let full = tmp_file("resume-full.txt", "");
    let resumed = tmp_file("resume-resumed.txt", "");

    let out = bin()
        .args([
            "batch",
            "cannon:32,4",
            "stencil:64,4,2",
            "--jobs",
            "1",
            "--faults",
            "drop:0.1",
            "--seed",
            "1",
            "--checkpoint",
            journal.to_str().unwrap(),
            "--results-out",
            full.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Simulate a kill after the first job: keep only the journal's first
    // line, then resume.
    let lines = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(lines.lines().count(), 2, "{lines}");
    let first = lines.lines().next().unwrap();
    std::fs::write(&journal, format!("{first}\n")).unwrap();

    let out = bin()
        .args([
            "batch",
            "cannon:32,4",
            "stencil:64,4,2",
            "--jobs",
            "1",
            "--faults",
            "drop:0.1",
            "--seed",
            "1",
            "--resume",
            journal.to_str().unwrap(),
            "--results-out",
            resumed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 job(s) restored"), "{text}");

    let full = std::fs::read_to_string(&full).unwrap();
    let resumed = std::fs::read_to_string(&resumed).unwrap();
    assert_eq!(full, resumed, "resumed results must be byte-identical");
    // The resumed journal grows back to the complete record.
    let lines = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(lines.lines().count(), 2, "{lines}");
}

#[test]
fn checkpoint_and_resume_are_mutually_exclusive() {
    let out = bin()
        .args([
            "batch",
            "cannon:32,4",
            "--checkpoint",
            "a.jsonl",
            "--resume",
            "b.jsonl",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn check_reports_fail_stop_starvation() {
    let args = ["check", "stencil:64,4,3", "--faults", "fail:0@1+500"];
    let out = bin().args(args).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("PS0401"), "{text}");
    assert!(text.contains("fail-stops during step 1"), "{text}");

    let strict = bin().args(args).arg("--strict").output().unwrap();
    assert!(!strict.status.success(), "PS0401 must fail under --strict");
}

#[test]
fn trace_counts_fault_events() {
    let out = bin()
        .args([
            "trace",
            "cannon:32,4",
            "--faults",
            "drop:0.3",
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fault events:"), "{text}");
    assert!(text.contains("retransmit"), "{text}");
}

#[test]
fn ge_sweep_supports_faults_and_budgets() {
    let out = bin()
        .args([
            "ge-sweep",
            "--n",
            "120",
            "--procs",
            "4",
            "--blocks",
            "10,20",
            "--faults",
            "slow:0.2:2",
            "--seed",
            "3",
            "--job-budget",
            "10000",
            "--retries",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted optimum: B="), "{text}");
    assert!(text.contains("fault plan: slow:0.2:2"), "{text}");
}

#[test]
fn serve_rejects_bad_flags_before_binding() {
    for (args, want) in [
        (vec!["serve", "--bogus"], "unknown flag"),
        (
            vec!["serve", "--workers", "0"],
            "--workers must be at least 1",
        ),
        (
            vec!["serve", "--queue-cap", "0"],
            "--queue-cap must be at least 1",
        ),
        (
            vec!["serve", "--request-timeout", "0"],
            "--request-timeout must be at least 1",
        ),
        (
            vec!["serve", "--addr", "a", "--addr", "b"],
            "duplicate flag '--addr'",
        ),
    ] {
        let out = bin().args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(want), "{args:?}: {err}");
    }
}

/// One-shot HTTP request against a running serve instance: connect, send,
/// read to EOF (the server closes after `Connection: close`).
fn http_request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    use std::io::Read as _;
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap();
    (status, body)
}

#[test]
fn serve_round_trips_over_a_real_socket_and_drains_on_request() {
    use std::io::BufRead as _;
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("predsim-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let (status, body) = http_request(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\":\"ok\""), "{body}");

    let (status, body) = http_request(
        &addr,
        "POST",
        "/v1/predict",
        r#"{"source":"cannon:64,4","machine":"ideal"}"#,
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"total_ps\""), "{body}");

    // An infeasible spec gets the same diagnostics document as
    // `predsim check --json` (PS0501), as a 422.
    let (status, body) = http_request(
        &addr,
        "POST",
        "/v1/predict",
        r#"{"source":"ge:64,16,row,0"}"#,
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("PS0501"), "{body}");
    let check = bin()
        .args(["check", "--json", "ge:64,16,row,0"])
        .output()
        .unwrap();
    assert!(!check.status.success());
    assert!(
        String::from_utf8_lossy(&check.stdout).contains("PS0501"),
        "check --json should report the same code"
    );

    let (status, body) = http_request(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(body.contains("serve_requests_total"), "{body}");
    assert!(body.contains("engine_jobs_total"), "{body}");

    let (status, body) = http_request(&addr, "POST", "/admin/drain", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");

    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "serve should exit 0 after drain");
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    assert!(
        rest.iter().any(|l| l.contains("drained cleanly")),
        "{rest:?}"
    );
}

#[test]
fn emulate_calibrate_closed_loop_through_the_cli() {
    let dir = std::env::temp_dir().join(format!("predsim-cli-calib-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let measured = dir.join("ge.measured.jsonl");
    let presets = dir.join("fitted.json");

    // Measure: emulated runs recorded as strict flat JSONL.
    let out = bin()
        .args([
            "emulate",
            "ge:240,24,diagonal,4",
            "--runs",
            "4",
            "--measure-out",
            measured.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("emulated ge:240,24,diagonal,4"), "{text}");
    let recorded = std::fs::read_to_string(&measured).unwrap();
    let header = recorded.lines().next().unwrap();
    assert!(header.contains("\"kind\":\"predsim-measured\""), "{header}");
    assert_eq!(recorded.lines().count(), 1 + 4, "header + one line per run");

    // Fit: from the recorded file, with a held-out bracket check and a
    // persisted named preset.
    let out = bin()
        .args([
            "calibrate",
            measured.to_str().unwrap(),
            "--holdout",
            "1",
            "--min-hit-rate",
            "0.9",
            "--out",
            presets.to_str().unwrap(),
            "--name",
            "cli-ge",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fitted machine:"), "{text}");
    assert!(text.contains("held out"), "{text}");

    // Predict: the fitted preset is an ordinary machine everywhere.
    let out = bin()
        .args([
            "batch",
            "ge:240,24,diagonal,4",
            "--machine",
            &format!("@{}:cli-ge", presets.display()),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("done"),
        "fitted preset predicts"
    );

    // A recorded file fixes the measurement; re-measuring flags clash.
    let out = bin()
        .args(["calibrate", measured.to_str().unwrap(), "--runs", "6"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--runs"),
        "recorded input rejects --runs"
    );

    // A zero-round budget cannot converge: nonzero exit, named reason.
    let out = bin()
        .args(["calibrate", measured.to_str().unwrap(), "--max-rounds", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("did not converge"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn calibrate_measures_a_live_source_directly() {
    let out = bin()
        .args(["calibrate", "ge:240,24,diagonal,4", "--runs", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fitted machine:"), "{text}");
    assert!(
        text.contains("training"),
        "no holdout: bracket on train runs"
    );
}

#[test]
fn check_bounds_reports_the_static_interval_in_text_and_json() {
    // Text: the rendered interval, spread, and critical path.
    let out = bin()
        .args(["check", "--bounds", "ge:240,24,row,8"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("static bounds: ["), "{text}");
    assert!(text.contains("bracket spread:"), "{text}");
    assert!(text.contains("critical path"), "{text}");

    // JSON: a well-formed bounds object with an ordered interval.
    let out = bin()
        .args(["check", "--bounds", "--json", "ge:240,24,row,8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc =
        predsim::predsim_lint::json::parse(&String::from_utf8_lossy(&out.stdout)).expect("JSON");
    let bounds = doc.get("sources").and_then(|s| s.as_array()).unwrap()[0]
        .get("bounds")
        .expect("bounds object");
    let lo = bounds
        .get("static_lo_ps")
        .and_then(|v| v.as_int())
        .expect("static_lo_ps");
    let hi = bounds
        .get("static_hi_ps")
        .and_then(|v| v.as_int())
        .expect("static_hi_ps");
    assert!(0 < lo && lo <= hi, "interval [{lo}, {hi}] must be ordered");
    let steps = bounds.get("steps").and_then(|v| v.as_array()).unwrap();
    assert!(!steps.is_empty(), "one entry per program step");
    assert!(bounds.get("critical_path").is_some());

    // Fault injection voids the bounds, in both output modes.
    let out = bin()
        .args([
            "check",
            "--bounds",
            "--faults",
            "drop:0.1",
            "--seed",
            "1",
            "ge:240,24,row,8",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("static bounds unavailable: fault injection voids the static bounds"),
        "{text}"
    );
}

#[test]
fn check_explain_has_a_paragraph_for_every_registered_code() {
    use predsim::predsim_lint::Code;
    for code in Code::ALL {
        let out = bin()
            .args(["check", "--explain", code.as_str()])
            .output()
            .unwrap();
        assert!(out.status.success(), "--explain {} failed", code.as_str());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.starts_with(&format!("{}: {}", code.as_str(), code.description())),
            "{text}"
        );
        assert!(
            !code.explain().trim().is_empty(),
            "{} has no explain text",
            code.as_str()
        );
        assert!(
            text.contains(code.explain()),
            "--explain {} did not print the paragraph",
            code.as_str()
        );
    }

    // Lowercase is accepted; unknown codes list what exists.
    let out = bin()
        .args(["check", "--explain", "ps0501"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["check", "--explain", "PS9999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown code 'PS9999'"), "{err}");
    assert!(err.contains("PS0101"), "{err}");
}

#[test]
fn ge_sweep_prefilter_finds_the_same_optimum_as_the_plain_sweep() {
    let sweep = |extra: &[&str]| {
        let mut args = vec![
            "ge-sweep", "--n", "240", "--procs", "8", "--blocks", "24,120",
        ];
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let plain = sweep(&[]);
    let filtered = sweep(&["--prefilter"]);
    let optimum = |text: &str| {
        text.lines()
            .find(|l| l.starts_with("predicted optimum:"))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no optimum line in: {text}"))
    };
    assert_eq!(
        optimum(&plain),
        optimum(&filtered),
        "pruning must never change the winner"
    );
    assert!(filtered.contains("(static prefilter)"), "{filtered}");
    assert!(filtered.contains("prefilter: simulated"), "{filtered}");
}

#[test]
fn ge_sweep_prefilter_refuses_faults_and_checkpoints() {
    let out = bin()
        .args([
            "ge-sweep",
            "--prefilter",
            "--faults",
            "drop:0.1",
            "--seed",
            "1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fault injection voids"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let journal = tmp_file("prefilter.journal", "");
    let out = bin()
        .args([
            "ge-sweep",
            "--prefilter",
            "--checkpoint",
            journal.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("drop --checkpoint/--resume"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_estimate_matches_check_bounds_json_byte_for_byte() {
    use std::io::BufRead as _;
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("predsim-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let (status, body) = http_request(
        &addr,
        "POST",
        "/v1/estimate",
        r#"{"source":"ge:240,24,row,8"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let served = predsim::predsim_lint::json::parse(&body).expect("estimate is strict JSON");
    let served_bounds = served.get("bounds").expect("bounds object");

    let out = bin()
        .args(["check", "--bounds", "--json", "ge:240,24,row,8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let checked =
        predsim::predsim_lint::json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let checked_bounds = checked.get("sources").and_then(|s| s.as_array()).unwrap()[0]
        .get("bounds")
        .expect("bounds object");
    assert_eq!(
        served_bounds.to_compact(),
        checked_bounds.to_compact(),
        "serve and CLI must emit the identical interval"
    );

    let (status, _) = http_request(&addr, "POST", "/admin/drain", "");
    assert_eq!(status, 200);
    assert!(child.wait_with_output().unwrap().status.success());
}

#[test]
fn machine_file_references_distinguish_missing_file_from_missing_name() {
    let trace = tmp_file("regtest.trace", TRACE);

    // Missing file: the error names the unreadable path.
    let out = bin()
        .args([
            "simulate",
            trace.to_str().unwrap(),
            "--machine",
            "@/nonexistent/fit.json:ge-fit",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot read preset file"), "{err}");

    // Present file, absent name: a different, name-specific error.
    let presets = tmp_file(
        "fitted-cli.json",
        r#"{"version": 1, "presets": [
            { "name": "cli-fit", "latency_ps": 9000000, "overhead_ps": 6000000,
              "gap_ps": 16000000, "gap_per_byte_ps": 30000, "procs": 8 }
        ]}"#,
    );
    let reference = |name: &str| format!("@{}:{name}", presets.to_str().unwrap());
    let out = bin()
        .args([
            "simulate",
            trace.to_str().unwrap(),
            "--machine",
            &reference("absent"),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("has no preset named 'absent'"), "{err}");
    assert!(!err.contains("cannot read"), "{err}");

    // The well-formed reference resolves and simulates.
    let out = bin()
        .args([
            "simulate",
            trace.to_str().unwrap(),
            "--machine",
            &reference("cli-fit"),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("total"));
}

#[test]
fn serve_presets_flag_round_trips_fitted_machines() {
    use std::io::BufRead as _;
    let presets = tmp_file(
        "fitted-serve.json",
        r#"{"version": 1, "presets": [
            { "name": "serve-fit", "latency_ps": 9000000, "overhead_ps": 6000000,
              "gap_ps": 16000000, "gap_per_byte_ps": 30000, "procs": 8 }
        ]}"#,
    );
    let mut child = bin()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--presets",
            presets.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = std::io::BufReader::new(child.stdout.take().unwrap()).lines();
    let addr = loop {
        let line = lines.next().unwrap().unwrap();
        if let Some(rest) = line.strip_prefix("predsim-serve listening on http://") {
            break rest.to_string();
        }
    };

    // The fitted name resolves for predictions and for static estimates.
    let body = r#"{"source":"cannon:64,4","machine":"serve-fit"}"#;
    let (status, reply) = http_request(&addr, "POST", "/v1/predict", body);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"total_ps\""), "{reply}");
    let (status, reply) = http_request(&addr, "POST", "/v1/estimate", body);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"static_lo_ps\""), "{reply}");

    // An unregistered name is still rejected.
    let (status, reply) = http_request(
        &addr,
        "POST",
        "/v1/predict",
        r#"{"source":"cannon:64,4","machine":"never-fit"}"#,
    );
    assert_eq!(status, 400, "{reply}");

    let (status, _) = http_request(&addr, "POST", "/admin/drain", "");
    assert_eq!(status, 200);
    assert!(child.wait_with_output().unwrap().status.success());
}

#[test]
fn dag_workflow_generates_checks_runs_and_sweeps() {
    // gen writes the line format.
    let out = bin()
        .args(["dag", "gen", "forkjoin:4,1,100000,1024"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.starts_with("dag name=forkjoin"), "{text}");

    // check round-trips the generated file.
    let path = tmp_file("forkjoin.dag", &text);
    let out = bin()
        .args(["dag", "check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let check = String::from_utf8_lossy(&out.stdout);
    assert!(check.contains("round-trip OK"), "{check}");

    // run schedules, lowers, and simulates.
    let out = bin()
        .args(["dag", "run", path.to_str().unwrap(), "--procs", "4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = String::from_utf8_lossy(&out.stdout);
    assert!(run.contains("heft scheduler"), "{run}");

    // dag-sweep --json emits the strict report document; a gen spec
    // works directly as the operand.
    let out = bin()
        .args([
            "dag-sweep",
            "forkjoin:4,1,100000,1024",
            "--procs",
            "1..4",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"version\":1"), "{json}");
    assert!(json.contains("\"knee_procs\":"), "{json}");

    // A malformed DAG file is refused.
    let bad = tmp_file("bad.dag", "dag name=x ps_per_flop=500\nedge a b 1\n");
    let out = bin()
        .args(["dag", "check", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
