//! Integration tests for the extension features: variable-sized blocks,
//! collectives, the BSP baseline, the APSP application, the text trace
//! format and the L2 cache — everything built beyond the paper's core.

use predsim::apsp;
use predsim::predsim_core::{bsp, collectives, search, textfmt};
use predsim::prelude::*;

/// Variable blocks (§7): a generated GE trace with a graded partition
/// predicts, emulates, and its uniform special case matches the uniform
/// generator's prediction exactly.
#[test]
fn variable_blocks_end_to_end() {
    use predsim::gauss::varblock;
    let procs = 4;
    let n = 120;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));

    let graded = varblock::graded_partition(n, 12, 1.25, 8);
    assert_eq!(graded.iter().sum::<usize>(), n);
    let var = varblock::generate_var(n, &graded, &layout, &cost);
    let pred = simulate_program(&var.program, &SimOptions::new(cfg));
    assert!(pred.total > Time::ZERO);
    let meas = emulate(&var.program, &var.loads, &EmulatorConfig::meiko_like(cfg));
    assert!(meas.prediction.total >= pred.comp_time);

    // Uniform partition == uniform generator.
    let via_var = varblock::generate_var(n, &varblock::uniform_partition(20, 6), &layout, &cost);
    let via_uni = gauss::generate(n, 20, &layout, &cost);
    assert_eq!(
        simulate_program(&via_var.program, &SimOptions::new(cfg)).total,
        simulate_program(&via_uni.program, &SimOptions::new(cfg)).total
    );

    // And the numerics of the variable-block factorization hold.
    let a = Matrix::random_diag_dominant(n, 9);
    let mut var_fact = a.clone();
    predsim::blockops::ops::blocked_lu_in_place_var(&mut var_fact, &graded).unwrap();
    let mut want = a.clone();
    predsim::blockops::lu::lu_in_place(&mut want).unwrap();
    assert!(var_fact.approx_eq(&want, 1e-6));
}

/// Collectives: the program-level binomial broadcast agrees with the
/// closed-form recursion on every machine preset.
#[test]
fn collectives_match_closed_forms() {
    for preset in presets::all(16) {
        if preset.params.gap < preset.params.overhead {
            continue;
        }
        let prog = collectives::binomial_broadcast(16, 512);
        let cfg = SimConfig::new(preset.params);
        let sim = simulate_program(&prog, &SimOptions::new(cfg)).total;
        let formula = commsim::formulas::binomial_broadcast(&preset.params, 16, 512);
        assert_eq!(sim, formula, "{}", preset.name);
    }
}

/// BSP baseline: predicts the same GE trace, differently — and the LogGP
/// simulation is the closer one to the emulated machine.
#[test]
fn bsp_baseline_less_accurate_than_simulation() {
    let procs = 8;
    let layout = Diagonal::new(procs);
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let trace = gauss::generate(240, 24, &layout, &AnalyticCost::paper_default());
    let meas = emulate(
        &trace.program,
        &trace.loads,
        &EmulatorConfig::meiko_like(cfg),
    )
    .prediction
    .total
    .as_secs_f64();
    let sim = simulate_program(&trace.program, &SimOptions::new(cfg))
        .total
        .as_secs_f64();
    let bsp = bsp::predict(&trace.program, &bsp::BspParams::from_loggp(&cfg.params))
        .total
        .as_secs_f64();
    let sim_err = (sim / meas - 1.0).abs();
    let bsp_err = (bsp / meas - 1.0).abs();
    assert!(
        sim_err < bsp_err,
        "simulation error {sim_err:.3} should beat BSP error {bsp_err:.3}"
    );
}

/// APSP: trace → prediction → emulation → threaded execution, all
/// consistent.
#[test]
fn apsp_end_to_end() {
    let procs = 4;
    let (n, b) = (48, 8);
    let layout = Diagonal::new(procs);
    let trace = apsp::generate(n, b, &layout, &AnalyticCost::paper_default());
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
    assert!(pred.total > pred.comp_time);
    let meas = emulate(
        &trace.program,
        &trace.loads,
        &EmulatorConfig::meiko_like(cfg),
    );
    assert!(meas.prediction.total > pred.comp_time);

    // Threaded solve matches classical Floyd-Warshall.
    let g = apsp::random_digraph(n, 0.2, 11);
    let got = apsp::parallel::solve(&g, b, &layout);
    let mut want = g.clone();
    apsp::floyd_warshall_in_place(&mut want);
    for i in 0..n {
        for j in 0..n {
            let (x, y) = (got[(i, j)], want[(i, j)]);
            assert!((x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-9);
        }
    }
}

/// Text format: a *generated* trace (not a toy) survives the round trip
/// with its prediction intact.
#[test]
fn textfmt_roundtrips_generated_traces() {
    let procs = 4;
    let layout = RowCyclic::new(procs);
    let trace = gauss::generate(60, 10, &layout, &AnalyticCost::paper_default());
    let text = textfmt::dump(&trace.program);
    let back = textfmt::parse(&text).unwrap();
    let cfg = SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)));
    assert_eq!(
        simulate_program(&back, &cfg).total,
        simulate_program(&trace.program, &cfg).total
    );
}

/// The search heuristic finds the same optimum as the exhaustive sweep on
/// the paper's workload at reduced scale, in fewer evaluations.
#[test]
fn hill_climb_matches_sweep_on_ge() {
    let procs = 8;
    let n = 240;
    let layout = Diagonal::new(procs);
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let blocks: Vec<usize> = [10, 12, 15, 20, 24, 30, 40, 60]
        .iter()
        .copied()
        .filter(|b| n % b == 0)
        .collect();
    let eval = |b: usize| {
        simulate_program(
            &gauss::generate(n, b, &layout, &AnalyticCost::paper_default()).program,
            &SimOptions::new(cfg),
        )
        .total
    };
    let full = search::sweep(&blocks, eval);
    let hc = search::hill_climb(&blocks, 4, eval);
    assert!(hc.evals() <= full.evals());
    // Local search may stop at a local optimum; on this workload the curve
    // is unimodal over the candidates, so it must match.
    assert_eq!(hc.best, full.best);
}

/// L2 cache extension: adding a large L2 can only reduce the emulated
/// total (same L1, strictly fewer memory fills).
#[test]
fn l2_cache_never_hurts() {
    let procs = 4;
    let layout = Diagonal::new(procs);
    let trace = gauss::generate(120, 10, &layout, &AnalyticCost::paper_default());
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let base = EmulatorConfig::meiko_like(cfg);
    let with_l2 = base
        .clone()
        .with_l2(2 * 1024 * 1024, base.cache.unwrap().miss_penalty);
    let a = emulate(&trace.program, &trace.loads, &base);
    let b = emulate(&trace.program, &trace.loads, &with_l2);
    assert!(b.prediction.total <= a.prediction.total);
    assert!(b.cache_misses <= a.cache_misses);
}
