//! Offline stand-in for the tiny subset of the `rand` crate this workspace
//! uses: `SmallRng::seed_from_u64`, `gen_range` over integer/float ranges,
//! and `gen_bool`.
//!
//! The build environment has no registry access, so the real `rand` cannot
//! be fetched; this vendored crate keeps the call sites source-compatible.
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! deterministic, and stable across platforms. It does **not** promise the
//! same streams as upstream `rand`, only the same API shape.

#![forbid(unsafe_code)]

pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    /// xoshiro256++ with SplitMix64 seeding — the same family upstream
    /// `SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn from_seed_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, as recommended by the
            // xoshiro authors; guards against the all-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_seed_u64(seed)
        }
    }
}

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot
                    // occur here (span fits for all types below u128).
                    unreachable!("range span overflow")
                }
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw in `0..span` via rejection sampling.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // One u64 is enough for every range this workspace samples.
    debug_assert!(span <= u64::MAX as u128 + 1);
    let span64 = span as u64;
    if span64.is_power_of_two() {
        return (rng.next_u64() & (span64 - 1)) as u128;
    }
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
