//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched. This vendored crate keeps the repo's property tests
//! source-compatible: the `proptest!` macro, range/tuple/`Just`/`vec`
//! strategies, `prop_map`, `prop_oneof!`, `any::<T>()`,
//! `prop::sample::Index`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * cases are sampled randomly but **never shrunk** — a failure reports
//!   the offending inputs (via the panic message of the underlying
//!   `assert!`) without minimizing them;
//! * `.proptest-regressions` files are not read or written;
//! * the per-test RNG stream differs from upstream's, but is fully
//!   deterministic for a given test name and case index.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};

/// The RNG handed to strategies while sampling one case.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic stream for (test-name hash, case index).
    pub fn for_case(name_hash: u64, case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            name_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// A source of random values of one type (upstream's `Strategy`, minus
/// shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_strategies!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scaled values; enough for model parameters.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The `any::<T>()` strategy.
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies.
    use super::{Strategy, TestRng};

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            super::Arbitrary::arbitrary(rng)
        }
    }

    /// An arbitrary boolean.
    pub const ANY: Any = Any;
}

pub mod sample {
    //! Sampling helper types.
    use super::{Arbitrary, TestRng};

    /// An index usable with any collection length (`idx.index(len)`),
    /// mirroring `proptest::sample::Index`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Map this abstract index onto a concrete `0..len`.
        ///
        /// # Panics
        /// Panics if `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(super::Arbitrary::arbitrary(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod strategy {
    //! Strategy combinator types (the upstream module path).
    pub use super::{BoxedStrategy, Just, Map, Strategy};

    /// Uniform choice among boxed strategies — what `prop_oneof!` builds.
    pub struct Union<T> {
        options: Vec<super::BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<super::BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut super::TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

pub mod test_runner {
    //! The case-loop machinery behind the `proptest!` macro.

    /// Runner configuration (subset of upstream's).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps unconfigured suites quick
            // while still exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }

    /// What one sampled case did.
    pub enum TestOutcome {
        /// Ran to completion (assertions passed or panicked the test).
        Pass,
        /// `prop_assume!` rejected the inputs; resample.
        Reject,
    }

    /// FNV-1a over the test name: a build-stable seed source
    /// (`std::hash::RandomState` is randomized per process, so it cannot
    /// anchor reproducible streams).
    pub fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Drive one property: sample inputs and run `case` until `cases`
    /// accepted runs, tolerating up to `cases * 16` assume-rejections.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut crate::TestRng) -> TestOutcome,
    {
        let hash = fnv1a(name);
        let cases = config.cases as u64;
        let max_rejects = cases.saturating_mul(16);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut stream = 0u64;
        while accepted < cases {
            let mut rng = crate::TestRng::for_case(hash, stream);
            stream += 1;
            match case(&mut rng) {
                TestOutcome::Pass => accepted += 1,
                TestOutcome::Reject => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "property '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
        }
    }
}

/// Everything a property-test file conventionally imports.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };

    /// Upstream's prelude re-exports the crate root as `prop`
    /// (`prop::sample::Index`, `prop::collection::vec`, ...).
    pub use crate as prop;
}

/// Defines property tests. Each function's arguments are drawn from the
/// given strategies; the body runs once per sampled case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            <$crate::test_runner::ProptestConfig as ::core::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), rng);)*
                let _ = $body;
                $crate::test_runner::TestOutcome::Pass
            });
        }
    )*};
}

/// Assert inside a property body (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property body (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::TestOutcome::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return $crate::test_runner::TestOutcome::Reject;
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..50).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn mapped_strategy_holds(x in small_even(), flip in prop::bool::ANY) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 100 || flip != flip);
        }

        #[test]
        fn tuples_vecs_and_oneof(
            (a, b) in (1usize..10, 0u64..5),
            v in prop::collection::vec(0u32..9, 2..6),
            pick in prop_oneof![Just(1u8), Just(7)],
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((1..10).contains(&a) && b < 5);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 9));
            prop_assert!(pick == 1 || pick == 7);
            prop_assert!(idx.index(a) < a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let s = (0u64..1_000_000, 0usize..9);
        let draw = |case| {
            let mut rng = crate::TestRng::for_case(crate::test_runner::fnv1a("t"), case);
            s.sample(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(1), draw(2));
    }
}
