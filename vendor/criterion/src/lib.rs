//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. This vendored harness keeps `cargo bench` working
//! with the same bench sources: it runs each benchmark for the configured
//! measurement window and prints mean time per iteration (plus derived
//! throughput when one was declared). No statistics, plots, or HTML —
//! regression *shape*, not publication-grade numbers, same as the repo's
//! own benches advertise.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", n)` displays as `algo/n`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the measured closure; `iter` times the hot loop.
pub struct Bencher {
    measurement: Duration,
    warm_up: Duration,
    /// (iterations, elapsed) of the measured window.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `routine` repeatedly for the configured window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Measure in batches sized so clock reads stay negligible.
        let batch = ((0.005 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// The benchmark manager (subset of upstream's API).
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement: Duration::from_millis(300),
            warm_up: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Builder: number of samples (scales the measurement window here).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        // Fewer samples => shorter window, mirroring upstream's intent of
        // keeping `cargo bench` affordable.
        self.measurement = Duration::from_millis((3 * self.sample_size as u64).clamp(30, 3_000));
        self
    }

    /// Builder: measured time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Builder: warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accept (and ignore) CLI arguments, like upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, self.measurement, self.warm_up, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declare the per-iteration throughput of subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Builder: measured time for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Builder: samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(
            &full,
            self.throughput,
            self.criterion.measurement,
            self.criterion.warm_up,
            f,
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (a no-op here; exists for API compatibility).
    pub fn finish(self) {}
}

/// Conversion of the various id forms benches pass.
pub trait IntoBenchId {
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.id
    }
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    measurement: Duration,
    warm_up: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        measurement,
        warm_up,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.2} Melem/s)", n as f64 / per_iter / 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.2} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!("{id:<48} {}{rate}", fmt_time(per_iter));
        }
        None => println!("{id:<48} (no measurement: bencher.iter was never called)"),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>10.1} ns/iter", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>10.2} us/iter", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>10.2} ms/iter", secs * 1e3)
    } else {
        format!("{:>10.3} s/iter", secs)
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!{
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Produce the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_and_inputs() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }
}
