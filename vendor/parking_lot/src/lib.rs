//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with the poison-free locking API.
//!
//! Backed by `std::sync` primitives; a poisoned std lock (a holder
//! panicked) is transparently recovered, matching parking_lot's
//! no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
