//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, bounded, Sender, Receiver}` and `thread::scope`.
//!
//! Channels delegate to `std::sync::mpsc` behind a mutex on the receiving
//! half, so both halves are clonable (multi-producer *and* multi-consumer,
//! like crossbeam's); `thread::scope` delegates to `std::thread::scope`,
//! which has provided the same structured-concurrency guarantee since
//! Rust 1.63.

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Multi-producer sending half (clonable, like crossbeam's).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Multi-consumer receiving half (clonable, like crossbeam's; each
    /// message is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn inner(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.0.lock().unwrap_or_else(|e| e.into_inner())
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner().recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner().try_recv()
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages; ends when all senders are
    /// dropped.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            IntoIter { rx: self }
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// A bounded channel (maps to `mpsc::sync_channel`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // mpsc's bounded flavour has a distinct sender type; the uses in
        // this workspace only need backpressure-free semantics, so an
        // unbounded queue is an acceptable stand-in.
        let _ = cap;
        unbounded()
    }
}

pub mod thread {
    use std::marker::PhantomData;

    /// Mirror of `crossbeam::thread::Scope`, backed by `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope {
                        inner,
                        _marker: PhantomData,
                    };
                    f(&scope)
                }),
            }
        }
    }

    /// Structured-concurrency scope: all spawned threads are joined before
    /// this returns. Unlike crossbeam (which collects panics into the
    /// `Err` variant), panics of unjoined threads propagate on exit, so
    /// the result is always `Ok` — call sites that `.expect()` it keep
    /// their meaning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let r = std::thread::scope(|s| {
            let scope = Scope {
                inner: s,
                _marker: PhantomData,
            };
            f(&scope)
        });
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(5).unwrap();
        let tx2 = tx.clone();
        tx2.send(6).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(rx.recv().unwrap(), 6);
    }

    #[test]
    fn receivers_share_the_queue() {
        let (tx, rx) = super::channel::unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a: Vec<i32> = rx.iter().take(50).collect();
        let b: Vec<i32> = rx2.into_iter().collect();
        assert_eq!(a.len() + b.len(), 100);
        let mut all: Vec<i32> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1, 2, 3];
        let sum = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<i32>());
            let h2 = s.spawn(|inner| {
                // Nested spawn through the scope argument.
                inner.spawn(|_| ()).join().unwrap();
                10
            });
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 16);
    }
}
