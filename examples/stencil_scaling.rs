//! Strong-scaling analysis of the Jacobi stencil with the predictor: how
//! does the predicted time change with the processor count, and where does
//! halo-exchange communication start to dominate?
//!
//! ```text
//! cargo run --release --example stencil_scaling
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::prelude::*;

fn main() {
    let n = 512;
    let iters = 20;
    let ps_per_flop = blockops::cost::DEFAULT_PS_PER_FLOP;

    println!("== Jacobi stencil {n}x{n}, {iters} iterations ==");
    let mut table = Table::new([
        "procs",
        "predicted (ms)",
        "comp (ms)",
        "comm (ms)",
        "efficiency %",
    ]);
    let mut t1 = Time::ZERO;
    for procs in [1usize, 2, 4, 8, 16, 32, 64] {
        let trace = stencil::generate(n, procs, iters, ps_per_flop);
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
        if procs == 1 {
            t1 = pred.total;
        }
        let eff = t1.as_secs_f64() / (procs as f64 * pred.total.as_secs_f64()) * 100.0;
        table.row([
            procs.to_string(),
            ms(pred.total),
            ms(pred.comp_time),
            ms(pred.comm_time),
            format!("{eff:.1}"),
        ]);
    }
    println!("{}", table.render());

    // Numeric validation: banded == reference.
    let grid = Matrix::from_fn(64, 64, |i, _| if i == 0 { 100.0 } else { 0.0 });
    let mut want = grid.clone();
    for _ in 0..10 {
        want = stencil::jacobi_reference(&want);
    }
    let got = stencil::jacobi_banded(&grid, 8, 10);
    println!(
        "numeric check (64x64, 8 bands, 10 iters): max |diff| = {:.2e}",
        got.max_abs_diff(&want)
    );
    assert!(got.approx_eq(&want, 1e-12));
}
