//! Reproduce the paper's headline use-case in miniature: sweep block sizes
//! and layouts for blocked Gaussian elimination, pick the best
//! configuration from the *predictions*, and verify the pick against the
//! emulated machine.
//!
//! ```text
//! cargo run --release --example gauss_sweep
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::predsim_core::search;
use predsim::prelude::*;

fn main() {
    let n = 480;
    let procs = 8;
    let blocks: Vec<usize> =
        gauss::PAPER_BLOCK_SIZES.iter().copied().filter(|b| n % b == 0).collect();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let cost = AnalyticCost::paper_default();

    let layouts: Vec<Box<dyn Layout>> =
        vec![Box::new(Diagonal::new(procs)), Box::new(RowCyclic::new(procs))];

    let mut best: Option<(String, usize, Time)> = None;
    for layout in &layouts {
        println!("== {} layout, n={n}, P={procs} ==", layout.name());
        let mut table = Table::new(["block", "predicted (ms)", "emulated (ms)", "error %"]);
        for &b in &blocks {
            let trace = gauss::generate(n, b, layout.as_ref(), &cost);
            let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
            let meas = emulate(
                &trace.program,
                &trace.loads,
                &EmulatorConfig::meiko_like(cfg),
            );
            table.row([
                b.to_string(),
                ms(pred.total),
                ms(meas.prediction.total),
                format!(
                    "{:+.1}",
                    (pred.total.as_secs_f64() / meas.prediction.total.as_secs_f64() - 1.0) * 100.0
                ),
            ]);
            if best.as_ref().map(|(_, _, t)| pred.total < *t).unwrap_or(true) {
                best = Some((layout.name(), b, pred.total));
            }
        }
        println!("{}", table.render());
    }

    let (lname, lb, lt) = best.expect("non-empty sweep");
    println!("prediction says: use the {lname} layout with B={lb} (predicted {lt})");

    // The paper's future-work search, automated.
    let diag = Diagonal::new(procs);
    let result = search::hill_climb(&blocks, 4, |b| {
        simulate_program(&gauss::generate(n, b, &diag, &cost).program, &SimOptions::new(cfg)).total
    });
    println!(
        "hill-climb over the diagonal layout found B={} in {} evaluations (vs {} exhaustive)",
        result.best,
        result.evals(),
        blocks.len()
    );
}
