//! Reproduce the paper's headline use-case in miniature: sweep block sizes
//! and layouts for blocked Gaussian elimination, pick the best
//! configuration from the *predictions*, and verify the pick against the
//! emulated machine.
//!
//! The predictions run on the batch engine: every (layout, block) cell is
//! an independent job, dealt to one worker per CPU, with repeated
//! communication steps answered from the step-pattern memo cache.
//!
//! ```text
//! cargo run --release --example gauss_sweep
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::predsim_core::search;
use predsim::prelude::*;

fn main() {
    let n = 480;
    let procs = 8;
    let blocks: Vec<usize> = gauss::PAPER_BLOCK_SIZES
        .iter()
        .copied()
        .filter(|b| n % b == 0)
        .collect();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));
    let cost = AnalyticCost::paper_default();

    let layouts = [
        ("diagonal", LayoutSpec::Diagonal(procs)),
        ("row cyclic", LayoutSpec::RowCyclic(procs)),
    ];

    // One engine for the whole example: all layout × block predictions in
    // a single batch, in parallel, sharing the memo cache.
    let engine = Engine::new(EngineConfig::default());
    let specs: Vec<JobSpec> = layouts
        .iter()
        .flat_map(|&(lname, layout)| {
            blocks.iter().map(move |&b| {
                JobSpec::new(
                    format!("{lname} B={b}"),
                    JobSource::Gauss {
                        n,
                        block: b,
                        layout,
                    },
                    SimOptions::new(cfg),
                )
            })
        })
        .collect();
    let results = engine.run(&specs);

    let mut best: Option<(&str, usize, Time)> = None;
    for (l, (lname, layout)) in layouts.iter().enumerate() {
        println!("== {lname} layout, n={n}, P={procs} ==");
        let mut table = Table::new(["block", "predicted (ms)", "emulated (ms)", "error %"]);
        for (i, &b) in blocks.iter().enumerate() {
            let pred = results[l * blocks.len() + i].prediction();
            // The emulator needs the per-step work profiles, so the trace
            // is rebuilt here; the engine only carried the program.
            let trace = gauss::generate(n, b, layout.build().as_ref(), &cost);
            let meas = emulate(
                &trace.program,
                &trace.loads,
                &EmulatorConfig::meiko_like(cfg),
            );
            table.row([
                b.to_string(),
                ms(pred.total),
                ms(meas.prediction.total),
                format!(
                    "{:+.1}",
                    (pred.total.as_secs_f64() / meas.prediction.total.as_secs_f64() - 1.0) * 100.0
                ),
            ]);
            if best.map(|(_, _, t)| pred.total < t).unwrap_or(true) {
                best = Some((lname, b, pred.total));
            }
        }
        println!("{}", table.render());
    }

    let (lname, lb, lt) = best.expect("non-empty sweep");
    println!("prediction says: use the {lname} layout with B={lb} (predicted {lt})");
    let stats = engine.stats();
    println!(
        "engine: {} workers, memo {} hits / {} misses ({:.0}% hit rate)",
        engine.config().effective_jobs(),
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );

    // The paper's future-work search, automated — probes evaluated on the
    // same worker count via the parallel hill-climb.
    let diag = Diagonal::new(procs);
    let result = search::hill_climb_parallel(&blocks, 4, engine.config().effective_jobs(), |b| {
        simulate_program(
            &gauss::generate(n, b, &diag, &cost).program,
            &SimOptions::new(cfg),
        )
        .total
    });
    println!(
        "hill-climb over the diagonal layout found B={} in {} evaluations (vs {} exhaustive)",
        result.best,
        result.evals(),
        blocks.len()
    );
}
