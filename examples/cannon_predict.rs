//! Predict Cannon's matrix multiplication across processor-grid sizes and
//! check the algorithm's numerics against a plain matrix product.
//!
//! Cannon's shifts are *cyclic* communication patterns, so this example
//! also shows the worst-case algorithm's deadlock breaking at work.
//!
//! ```text
//! cargo run --release --example cannon_predict
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::prelude::*;

fn main() {
    let n = 240;
    let cost = AnalyticCost::paper_default();

    println!("== Cannon's algorithm, n={n} ==");
    let mut table = Table::new([
        "grid",
        "procs",
        "block",
        "predicted (ms)",
        "worst-case (ms)",
        "forced sends",
        "speedup vs q=1",
    ]);
    let mut t1 = Time::ZERO;
    for q in [1usize, 2, 3, 4, 6, 8] {
        let trace = cannon::generate(n, q, &cost);
        let cfg = SimConfig::new(presets::meiko_cs2(q * q));
        let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
        let wc = simulate_program(&trace.program, &SimOptions::new(cfg).worst_case());
        if q == 1 {
            t1 = pred.total;
        }
        table.row([
            format!("{q}x{q}"),
            (q * q).to_string(),
            trace.m.to_string(),
            ms(pred.total),
            ms(wc.total),
            wc.forced_sends.to_string(),
            format!("{:.2}", t1.as_secs_f64() / pred.total.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());

    // Numerical validation of the real algorithm.
    let a = Matrix::random(60, 60, 1);
    let b = Matrix::random(60, 60, 2);
    let got = cannon::multiply(&a, &b, 5);
    let want = predsim::blockops::gemm::matmul(&a, &b);
    println!(
        "numeric check vs plain product (n=60, q=5): max |diff| = {:.2e}",
        got.max_abs_diff(&want)
    );
    assert!(got.approx_eq(&want, 1e-9));
}
