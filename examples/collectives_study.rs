//! Study collective algorithms with the predictor: linear vs binomial
//! broadcast, and tree vs recursive-doubling all-reduce, across machine
//! presets and processor counts — the classic LogP-era optimization
//! questions (the paper cites Karp et al.'s optimal-broadcast work),
//! answered here by simulation instead of by formula.
//!
//! ```text
//! cargo run --release --example collectives_study
//! ```

use predsim::predsim_core::report::{us, Table};
use predsim::predsim_core::{collectives, Program};
use predsim::prelude::*;

fn total(prog: &Program, params: loggp::LogGpParams) -> Time {
    simulate_program(prog, &SimOptions::new(SimConfig::new(params))).total
}

fn linear_broadcast_program(p: usize, bytes: usize) -> Program {
    let mut prog = Program::new(p);
    let mut pat = CommPattern::new(p);
    for dst in 1..p {
        pat.add(0, dst, bytes);
    }
    prog.push(predsim::predsim_core::Step::new("flat bcast").with_comm(pat));
    prog
}

fn main() {
    let bytes = 1024;

    println!("== Broadcast of {bytes} B: linear vs binomial tree (us) ==");
    let mut table = Table::new(["machine", "p", "linear", "binomial", "tree wins by"]);
    for preset in presets::all(64) {
        for p in [4usize, 16, 64] {
            let params = preset.params.with_procs(p);
            let lin = total(&linear_broadcast_program(p, bytes), params);
            let tree = total(&collectives::binomial_broadcast(p, bytes), params);
            table.row([
                preset.name.to_string(),
                p.to_string(),
                us(lin),
                us(tree),
                format!("{:.2}x", lin.as_secs_f64() / tree.as_secs_f64().max(1e-30)),
            ]);
        }
    }
    println!("{}", table.render());

    println!("== All-reduce of {bytes} B with 5 us combine: tree vs recursive doubling (us) ==");
    let combine = Time::from_us(5.0);
    let mut table = Table::new(["machine", "p", "reduce+bcast", "recursive doubling"]);
    for preset in presets::all(64) {
        for p in [4usize, 16, 64] {
            let params = preset.params.with_procs(p);
            let tree = total(&collectives::all_reduce(p, bytes, combine), params);
            let cube = total(
                &collectives::all_reduce_hypercube(p, bytes, combine),
                params,
            );
            table.row([preset.name.to_string(), p.to_string(), us(tree), us(cube)]);
        }
    }
    println!("{}", table.render());
    println!(
        "recursive doubling halves the rounds but doubles per-round traffic; which wins\n\
         depends on g vs G — exactly the trade-off the simulation settles per machine."
    );
}
