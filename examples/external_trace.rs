//! Feed the predictor a program written *by hand* (or by an external
//! tool) in the text trace format — no generator required.
//!
//! The trace below is a toy two-processor pipeline: P0 produces, ships to
//! P1, both compute, P1 ships a result back.
//!
//! ```text
//! cargo run --release --example external_trace
//! ```

use predsim::predsim_core::textfmt;
use predsim::prelude::*;

const TRACE: &str = "
# A hand-written oblivious program over 2 processors.
program procs=2

step label=produce
comp 500 0

step label=ship-forward
msg 0 1 32768            # 32 KiB of data

step label=transform
comp 120 900             # P1 does the heavy lifting now

step label=ship-back
msg 1 0 4096

step label=finish
comp 80 0
";

fn main() {
    let prog = textfmt::parse(TRACE).expect("trace parses");
    println!(
        "parsed: {} steps, {} messages, {} network bytes",
        prog.len(),
        prog.total_messages(),
        prog.total_network_bytes()
    );

    for preset in presets::all(2) {
        let cfg = SimConfig::new(preset.params);
        let pred = simulate_program(&prog, &SimOptions::new(cfg));
        println!(
            "{:>18}: total {:>12}  (comp {:>11}, comm {:>11}, critical P{})",
            preset.name,
            format!("{}", pred.total),
            format!("{}", pred.comp_time),
            format!("{}", pred.comm_time),
            pred.critical_proc()
        );
    }

    // Round-trip: dump the parsed program back out.
    let text = textfmt::dump(&prog);
    let again = textfmt::parse(&text).expect("round trip");
    assert_eq!(again.len(), prog.len());
    println!(
        "\nround-tripped through the text format losslessly ({} bytes)",
        text.len()
    );
}
