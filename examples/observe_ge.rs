//! Observe blocked Gaussian elimination: trace the paper's 960×960 /
//! 8-processor configuration and render its virtual-time horizon — the
//! per-step min/mean/max of the processors' simulated-time fronts. A wide
//! band means processors drift apart (load imbalance or communication
//! skew); a narrow band means the step re-synchronizes them.
//!
//! Run with: `cargo run --example observe_ge`

use predsim::predsim_core::simulate_program_traced;
use predsim::prelude::*;

fn main() {
    let n = 960;
    let block = 48;
    let procs = 8;
    let layout = Diagonal::new(procs);
    let trace = gauss::generate(n, block, &layout, &AnalyticCost::paper_default());
    let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)));

    let sink = MemorySink::new();
    let pred = simulate_program_traced(&trace.program, &opts, &sink);
    let events = sink.events();

    println!("blocked GE, n={n}, B={block}, diagonal layout, P={procs}, Meiko CS-2");
    println!("{}", pred.summary());
    println!();

    let profile = HorizonProfile::from_events(&events);
    print!("{}", profile.render(64));
    if let Some(step) = profile.roughest_step() {
        println!(
            "\nroughest step: {step} of {} (front spread {})",
            profile.steps.len(),
            profile.max_spread()
        );
    }

    // The same event stream answers queueing questions too.
    let depths = predsim::predsim_obs::max_queue_depths(&events);
    let (proc, depth) = depths
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .expect("at least one processor");
    println!("deepest receive queue: {depth} message(s) at P{proc}");
}
