//! Observe blocked Gaussian elimination: trace the paper's 960×960 /
//! 8-processor configuration and render its virtual-time horizon — the
//! per-step min/mean/max of the processors' simulated-time fronts. A wide
//! band means processors drift apart (load imbalance or communication
//! skew); a narrow band means the step re-synchronizes them.
//!
//! The second half re-predicts the same program under a seeded 10 %
//! message-loss plan (counting the fault events it emits) and then runs a
//! small engine batch with a step budget, showing how per-job
//! [`JobOutcome`]s report `done` vs `timed_out` rows with their attempt
//! counts instead of losing the whole sweep.
//!
//! Run with: `cargo run --example observe_ge`

use predsim::predsim_core::simulate_program_traced;
use predsim::predsim_engine::JobOutcome;
use predsim::prelude::*;

fn main() {
    let n = 960;
    let block = 48;
    let procs = 8;
    let layout = Diagonal::new(procs);
    let trace = gauss::generate(n, block, &layout, &AnalyticCost::paper_default());
    let opts = SimOptions::new(SimConfig::new(presets::meiko_cs2(procs)));

    let sink = MemorySink::new();
    let pred = simulate_program_traced(&trace.program, &opts, &sink);
    let events = sink.events();

    println!("blocked GE, n={n}, B={block}, diagonal layout, P={procs}, Meiko CS-2");
    println!("{}", pred.summary());
    println!();

    let profile = HorizonProfile::from_events(&events);
    print!("{}", profile.render(64));
    if let Some(step) = profile.roughest_step() {
        println!(
            "\nroughest step: {step} of {} (front spread {})",
            profile.steps.len(),
            profile.max_spread()
        );
    }

    // The same event stream answers queueing questions too.
    let depths = predsim::predsim_obs::max_queue_depths(&events);
    let (proc, depth) = depths
        .iter()
        .enumerate()
        .max_by_key(|&(_, d)| *d)
        .expect("at least one processor");
    println!("deepest receive queue: {depth} message(s) at P{proc}");

    // Re-predict the same program under a seeded 10 % message-loss plan.
    // Fault decisions are a pure hash of (seed, fault site), so this block
    // prints the same numbers on every run and at any worker count.
    let spec = FaultSpec::parse("drop:0.1").expect("valid fault spec");
    let plan = FaultPlan::new(spec, 42);
    let fault_sink = MemorySink::new();
    let faulted = simulate_faulted(&trace.program, &opts, &plan, Some(&fault_sink));
    let fault_events = fault_sink.events();
    let fcount = |k: &str| fault_events.iter().filter(|e| e.kind() == k).count();
    println!("\nunder {} (seed 42):", plan.spec());
    println!(
        "  total {} -> {} (comm {} -> {})",
        pred.total, faulted.total, pred.comm_time, faulted.comm_time
    );
    println!(
        "  fault events: {} drop, {} retransmit",
        fcount("drop"),
        fcount("retransmit")
    );

    // Resilient batch: the longer jobs blow a 40-step budget and come back
    // as `timed_out` rows with their partial predictions, while the short
    // job still finishes — over-budget jobs no longer sink a sweep.
    let jobs = [
        ("ge 240", 240usize, 24usize),
        ("ge 480", 480, 24),
        ("ge 960", 960, 48),
    ]
    .map(|(label, n, block)| {
        JobSpec::new(
            label,
            JobSource::Gauss {
                n,
                block,
                layout: LayoutSpec::Diagonal(procs),
            },
            opts,
        )
        .with_faults(plan.clone())
    });
    let engine = Engine::new(EngineConfig::default().with_step_budget(40).with_retries(1));
    println!("\nbatch under a 40-step budget (1 retry):");
    for r in engine.run(&jobs) {
        match &r.outcome {
            JobOutcome::TimedOut { partial, attempts } => println!(
                "  {:8} {:9} after {} attempt(s); partial covers {} step(s), {} so far",
                r.label,
                r.outcome.kind(),
                attempts,
                partial.steps.len(),
                partial.total
            ),
            outcome => {
                let (total, _, _, _) = outcome.totals().expect("completed job has totals");
                println!(
                    "  {:8} {:9} in {} attempt(s): {}",
                    r.label,
                    outcome.kind(),
                    outcome.attempts(),
                    total
                );
            }
        }
    }
}
