//! Quickstart: simulate one communication step and one whole program.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use predsim::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A single communication step under the LogGP model.
    // ------------------------------------------------------------------
    let pattern = patterns::figure3(); // the paper's sample pattern
    let cfg = SimConfig::new(presets::meiko_cs2(pattern.procs()));

    let std_run = standard::simulate(&pattern, &cfg);
    let wc_run = worstcase::simulate(&pattern, &cfg);
    println!("communication step ({} messages):", pattern.len());
    println!("  standard algorithm:   {}", std_run.finish);
    println!("  worst-case algorithm: {}", wc_run.finish);
    println!("\n{}", commsim::gantt::render(&std_run.timeline, 90));

    // ------------------------------------------------------------------
    // 2. A whole program: blocked Gaussian elimination, predicted.
    // ------------------------------------------------------------------
    let procs = 8;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let trace = gauss::generate(480, 24, &layout, &cost);
    let cfg = SimConfig::new(presets::meiko_cs2(procs));

    let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
    println!(
        "blocked GE, n=480, B=24, {} layout, P={procs}:",
        layout.name()
    );
    println!("  predicted total:        {}", pred.total);
    println!("  predicted computation:  {}", pred.comp_time);
    println!("  predicted communication:{}", pred.comm_time);
    println!("  critical processor:     P{}", pred.critical_proc());

    // ------------------------------------------------------------------
    // 3. The same program "measured" on the emulated testbed.
    // ------------------------------------------------------------------
    let ecfg = EmulatorConfig::meiko_like(cfg);
    let meas = emulate(&trace.program, &trace.loads, &ecfg);
    println!("  emulated (measured):    {}", meas.prediction.total);
    println!(
        "  of which cache misses {} ({}), local copies {}, loop overhead {}",
        meas.cache_misses, meas.cache_penalty_time, meas.self_copy_time, meas.iter_overhead_time
    );
    let err = (pred.total.as_secs_f64() / meas.prediction.total.as_secs_f64() - 1.0) * 100.0;
    println!("  prediction error vs emulated machine: {err:+.1}%");
}
