//! Start the prediction service in-process, drive it over a real TCP
//! socket like any HTTP client would, and drain it gracefully — the
//! whole serve lifecycle in one program.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```

use predsim::predsim_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;

/// Send one request and return `(status, body)`. `Connection: close`
/// keeps the client trivial: read to EOF, split head from body.
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap();
    (status, body)
}

fn main() {
    let handle = Server::start(ServeConfig::default()).expect("start server");
    let addr = handle.addr().to_string();
    println!("serving on http://{addr}\n");

    // Predict blocked GE from the paper's experiments, on two machines.
    for machine in ["meiko", "paragon"] {
        let (status, body) = request(
            &addr,
            "POST",
            "/v1/predict",
            &format!("{{\"source\":\"ge:960,32,diagonal,8\",\"machine\":\"{machine}\"}}"),
        );
        println!("predict @ {machine}: HTTP {status}\n  {body}\n");
    }

    // A batch keeps submission order in its results.
    let (status, body) = request(
        &addr,
        "POST",
        "/v1/batch",
        r#"{"jobs":[{"source":"cannon:192,4"},{"source":"stencil:256,8,10"}]}"#,
    );
    println!("batch: HTTP {status}\n  {body}\n");

    // Invalid jobs are refused with the analyzer's diagnostics (422),
    // the same document `predsim check --json` prints.
    let (status, body) = request(
        &addr,
        "POST",
        "/v1/predict",
        r#"{"source":"ge:64,16,row,0"}"#,
    );
    println!("infeasible spec: HTTP {status}\n  {body}\n");

    // Live metrics: engine counters and serve counters on one registry.
    let (_, metrics) = request(&addr, "GET", "/metrics", "");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("serve_requests_total") || l.starts_with("engine_jobs_total"))
    {
        println!("metric: {line}");
    }

    let report = handle.drain();
    println!("\ndrained; final snapshot has {} metric families", {
        report
            .metrics
            .to_prometheus()
            .lines()
            .filter(|l| l.starts_with("# TYPE"))
            .count()
    });
}
