//! Compare machine presets: predict the same blocked elimination on the
//! Meiko CS-2, Intel Paragon, a Myrinet cluster, an Ethernet cluster and
//! the ideal (free-communication) machine — and watch the optimal block
//! size move with the communication costs.
//!
//! ```text
//! cargo run --release --example machine_comparison
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::prelude::*;

fn main() {
    let n = 480;
    let procs = 8;
    let blocks: Vec<usize> = gauss::PAPER_BLOCK_SIZES
        .iter()
        .copied()
        .filter(|b| n % b == 0)
        .collect();
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();

    println!("== Blocked GE, n={n}, diagonal layout, P={procs}, across machines ==");
    let mut header = vec!["machine".to_string()];
    header.extend(blocks.iter().map(|b| format!("B={b}")));
    header.push("best B".into());
    let mut table = Table::new(header);

    for preset in presets::all(procs) {
        let cfg = SimConfig::new(preset.params);
        let mut row = vec![preset.name.to_string()];
        let mut best = (0usize, Time::MAX);
        for &b in &blocks {
            let trace = gauss::generate(n, b, &layout, &cost);
            let t = simulate_program(&trace.program, &SimOptions::new(cfg)).total;
            if t < best.1 {
                best = (b, t);
            }
            row.push(ms(t));
        }
        row.push(best.0.to_string());
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "costlier communication pushes the optimum toward larger blocks (fewer, bigger\n\
         messages); the ideal machine prefers whatever balances computation best."
    );
}
