//! Strong-scaling study of the blocked elimination with the predictor —
//! the paper's §1 "analyzing the scaling behavior of parallel programs"
//! use-case, plus the Karp–Flatt diagnostic from `predsim_core::scaling`.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::predsim_core::scaling::{amdahl_bound, analyze, ScalePoint};
use predsim::prelude::*;

fn main() {
    let n = 480;
    let b = 24;

    println!("== Blocked GE strong scaling, n={n}, B={b}, diagonal layout, Meiko CS-2 ==");
    // All processor counts predicted as one engine batch — each point is
    // an independent job, so the study parallelizes across CPU cores.
    let proc_counts = [1usize, 2, 4, 8, 16, 32];
    let specs: Vec<JobSpec> = proc_counts
        .iter()
        .map(|&procs| {
            JobSpec::new(
                format!("P={procs}"),
                JobSource::Gauss {
                    n,
                    block: b,
                    layout: LayoutSpec::Diagonal(procs),
                },
                SimOptions::new(SimConfig::new(presets::meiko_cs2(procs))),
            )
        })
        .collect();
    let engine = Engine::new(EngineConfig::default());
    let points: Vec<ScalePoint> = proc_counts
        .iter()
        .zip(engine.run(&specs))
        .map(|(&procs, r)| ScalePoint {
            procs,
            time: r.prediction().total,
        })
        .collect();
    let metrics = analyze(&points);

    let mut table = Table::new([
        "procs",
        "predicted (ms)",
        "speedup",
        "efficiency %",
        "Karp-Flatt serial fraction",
    ]);
    for (pt, m) in points.iter().zip(&metrics) {
        table.row([
            pt.procs.to_string(),
            ms(pt.time),
            format!("{:.2}", m.speedup),
            format!("{:.1}", m.efficiency * 100.0),
            m.serial_fraction
                .map(|f| format!("{f:.4}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());

    // What would Amdahl allow at the largest measured serial fraction?
    if let Some(f) = metrics.last().and_then(|m| m.serial_fraction) {
        println!(
            "with the P=32 serial fraction f={f:.4}, Amdahl caps speedup at {:.1} on 64\n\
             processors and {:.1} on 1024 — the rising Karp-Flatt series shows the wave\n\
             front's communication turning serial as the per-processor work shrinks.",
            amdahl_bound(f, 64),
            amdahl_bound(f, 1024)
        );
    }
}
