//! Strong-scaling study of the blocked elimination with the predictor —
//! the paper's §1 "analyzing the scaling behavior of parallel programs"
//! use-case, plus the Karp–Flatt diagnostic from `predsim_core::scaling`.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use predsim::predsim_core::report::{ms, Table};
use predsim::predsim_core::scaling::{analyze, amdahl_bound, ScalePoint};
use predsim::prelude::*;

fn main() {
    let n = 480;
    let b = 24;
    let cost = AnalyticCost::paper_default();

    println!("== Blocked GE strong scaling, n={n}, B={b}, diagonal layout, Meiko CS-2 ==");
    let mut points = Vec::new();
    for procs in [1usize, 2, 4, 8, 16, 32] {
        let layout = Diagonal::new(procs);
        let trace = gauss::generate(n, b, &layout, &cost);
        let cfg = SimConfig::new(presets::meiko_cs2(procs));
        let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
        points.push(ScalePoint { procs, time: pred.total });
    }
    let metrics = analyze(&points);

    let mut table = Table::new([
        "procs",
        "predicted (ms)",
        "speedup",
        "efficiency %",
        "Karp-Flatt serial fraction",
    ]);
    for (pt, m) in points.iter().zip(&metrics) {
        table.row([
            pt.procs.to_string(),
            ms(pt.time),
            format!("{:.2}", m.speedup),
            format!("{:.1}", m.efficiency * 100.0),
            m.serial_fraction.map(|f| format!("{f:.4}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", table.render());

    // What would Amdahl allow at the largest measured serial fraction?
    if let Some(f) = metrics.last().and_then(|m| m.serial_fraction) {
        println!(
            "with the P=32 serial fraction f={f:.4}, Amdahl caps speedup at {:.1} on 64\n\
             processors and {:.1} on 1024 — the rising Karp-Flatt series shows the wave\n\
             front's communication turning serial as the per-processor work shrinks.",
            amdahl_bound(f, 64),
            amdahl_bound(f, 1024)
        );
    }
}
