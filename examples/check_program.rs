//! Statically analyze a program *before* spending any simulation time on
//! it: well-formedness, deadlock, and LogGP lower-bound diagnostics from
//! `predsim-lint` — the library behind `predsim check`.
//!
//! ```text
//! cargo run --release --example check_program
//! ```

use predsim::blockops::AnalyticCost;
use predsim::commsim::{patterns, standard, SimConfig};
use predsim::loggp::presets;
use predsim::predsim_core::{textfmt, CommAlgo};
use predsim::predsim_lint::{check_program, step_lower_bound, LintOptions, Severity};
use predsim::{cannon, gauss};

const RING: &str = "
# Four processors rotate a block around a ring — a communication cycle.
program procs=4
step label=rotate
comp 10 10 10 10
msg 0 1 1024
msg 1 2 1024
msg 2 3 1024
msg 3 0 1024
";

fn main() {
    let ring = textfmt::parse(RING).expect("trace parses");
    let params = presets::meiko_cs2(ring.procs());

    // The same cycle is a warning when checking for the standard
    // algorithm (it handles cycles eagerly) and an error when checking
    // for the worst-case one (§4.2: receive-all-before-send provably
    // stalls until transmissions are forced).
    for algo in [CommAlgo::Standard, CommAlgo::WorstCase] {
        let opts = LintOptions::default().with_params(params).with_algo(algo);
        let report = check_program(&ring, &opts);
        println!("== ring, checked for {algo:?} ==");
        println!("{}", report.render());
        println!(
            "errors={} -> `predsim check` exit would be {}\n",
            report.count(Severity::Error),
            if report.has_errors() { 1 } else { 0 }
        );
    }

    // The analyzer's serialization floor is a true lower bound on the
    // simulated step time.
    let pattern = patterns::ring(4, 1024);
    let bound = step_lower_bound(&pattern, &params);
    let finish = standard::simulate(&pattern, &SimConfig::new(params)).finish;
    println!("ring step: static lower bound {bound}, simulated finish {finish}");
    assert!(bound <= finish);

    // Shipped generators are error-clean (cycles in Cannon's rotations
    // and the GE wave stay warnings under the default algorithm).
    let cost = AnalyticCost::paper_default();
    let cannon = cannon::generate(64, 4, &cost).program;
    let ge = gauss::generate(
        240,
        24,
        &predsim::predsim_core::layout::Diagonal::new(8),
        &cost,
    )
    .program;
    for (name, prog) in [("cannon 64/4", &cannon), ("ge 240/24 diagonal", &ge)] {
        let params = presets::meiko_cs2(prog.procs());
        let report = check_program(prog, &LintOptions::default().with_params(params));
        assert!(!report.has_errors());
        println!("{name}: {}", report.summary());
    }

    // Machine-readable form: the same schema `predsim check --json`
    // prints, round-trippable via `predsim_lint::json::parse`.
    let opts = LintOptions::default()
        .with_params(params)
        .with_algo(CommAlgo::WorstCase);
    println!("\n{}", check_program(&ring, &opts).to_json());
}
