//! Predict the blocked all-pairs-shortest-paths solver — the "graph
//! algorithms ... fall in this class, too" application (paper §2) —
//! across block sizes, and verify the blocked algorithm's numerics
//! against classical Floyd–Warshall.
//!
//! ```text
//! cargo run --release --example apsp_predict
//! ```

use predsim::apsp;
use predsim::predsim_core::report::{ms, Table};
use predsim::prelude::*;

fn main() {
    let n = 240;
    let procs = 8;
    let layout = Diagonal::new(procs);
    let cost = AnalyticCost::paper_default();
    let cfg = SimConfig::new(presets::meiko_cs2(procs));

    println!("== Blocked Floyd-Warshall APSP, n={n} vertices, P={procs} ==");
    let mut table = Table::new(["block", "predicted (ms)", "worst-case (ms)", "comm share %"]);
    let mut best = (0usize, Time::MAX);
    for b in [10usize, 16, 24, 40, 60, 120] {
        let trace = apsp::generate(n, b, &layout, &cost);
        let pred = simulate_program(&trace.program, &SimOptions::new(cfg));
        let wc = simulate_program(&trace.program, &SimOptions::new(cfg).worst_case());
        if pred.total < best.1 {
            best = (b, pred.total);
        }
        table.row([
            b.to_string(),
            ms(pred.total),
            ms(wc.total),
            format!(
                "{:.1}",
                pred.comm_time.as_secs_f64() / pred.total.as_secs_f64() * 100.0
            ),
        ]);
    }
    println!("{}", table.render());
    println!("predicted optimal block size: B={}", best.0);

    // Numerics: blocked == classical on a random digraph.
    let g = apsp::random_digraph(60, 0.15, 7);
    let mut blocked = g.clone();
    apsp::blocked_fw_in_place(&mut blocked, 12);
    let mut classical = g.clone();
    apsp::floyd_warshall_in_place(&mut classical);
    let max_diff = (0..60)
        .flat_map(|i| (0..60).map(move |j| (i, j)))
        .map(|(i, j)| {
            let (x, y) = (blocked[(i, j)], classical[(i, j)]);
            if x.is_infinite() && y.is_infinite() {
                0.0
            } else {
                (x - y).abs()
            }
        })
        .fold(0.0f64, f64::max);
    println!("numeric check (60 vertices, B=12): max |diff| = {max_diff:.2e}");
    assert!(max_diff < 1e-9);
}
